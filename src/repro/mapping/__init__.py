"""Spatial mappings: assignments, routes, quality criteria and cost models.

A *spatial mapping* (paper section 1.3) assigns every process of a streaming
application to a tile (via a chosen implementation) and every channel to a
path through the NoC.  The paper defines three nested quality criteria —
adequate, adherent, feasible — implemented in
:mod:`repro.mapping.properties`, and evaluates mappings by their energy cost,
implemented in :mod:`repro.mapping.cost`.
"""

from repro.mapping.assignment import ProcessAssignment, ChannelRoute
from repro.mapping.mapping import Mapping
from repro.mapping.properties import (
    adequacy_violations,
    adherence_violations,
    is_adequate,
    is_adherent,
)
from repro.mapping.cost import CostModel, manhattan_cost, mapping_energy_nj
from repro.mapping.result import MappingResult, MappingStatus

__all__ = [
    "ProcessAssignment",
    "ChannelRoute",
    "Mapping",
    "adequacy_violations",
    "adherence_violations",
    "is_adequate",
    "is_adherent",
    "CostModel",
    "manhattan_cost",
    "mapping_energy_nj",
    "MappingResult",
    "MappingStatus",
]
