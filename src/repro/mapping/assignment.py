"""Atomic pieces of a spatial mapping: process assignments and channel routes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.appmodel.implementation import Implementation
from repro.exceptions import MappingError
from repro.platform.noc import Position


@dataclass(frozen=True)
class ProcessAssignment:
    """A process bound to a tile through a chosen implementation.

    For pinned processes (sources/sinks, which have no implementation to
    choose) ``implementation`` is ``None``.
    """

    process: str
    tile: str
    implementation: Implementation | None = None

    def __post_init__(self) -> None:
        if not self.process:
            raise MappingError("assignment must name a process")
        if not self.tile:
            raise MappingError(f"assignment of {self.process!r} must name a tile")
        if self.implementation is not None and self.implementation.process != self.process:
            raise MappingError(
                f"assignment of {self.process!r} uses implementation of "
                f"{self.implementation.process!r}"
            )

    @property
    def tile_type(self) -> str | None:
        """Tile type required by the chosen implementation (``None`` for pinned processes)."""
        return self.implementation.tile_type if self.implementation else None

    @property
    def energy_nj_per_iteration(self) -> float:
        """Computation energy of the chosen implementation per graph iteration."""
        return self.implementation.energy_nj_per_iteration if self.implementation else 0.0

    def moved_to(self, tile: str) -> "ProcessAssignment":
        """The same assignment on a different tile."""
        return ProcessAssignment(self.process, tile, self.implementation)


@dataclass(frozen=True)
class ChannelRoute:
    """A channel bound to a path of routers through the NoC.

    The path includes the routers of the source and the target tile; a path
    of length one means both processes share a tile and the channel stays in
    local memory.
    """

    channel: str
    source_tile: str
    target_tile: str
    path: tuple[Position, ...]
    required_bits_per_s: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.channel:
            raise MappingError("route must name its channel")
        if not self.path:
            raise MappingError(f"route for channel {self.channel!r} has an empty path")
        if self.required_bits_per_s < 0:
            raise MappingError(
                f"route for channel {self.channel!r} has a negative throughput requirement"
            )
        object.__setattr__(self, "path", tuple(tuple(p) for p in self.path))

    @property
    def hops(self) -> int:
        """Number of router-to-router hops (0 when source and target share a tile)."""
        return len(self.path) - 1

    @property
    def router_count(self) -> int:
        """Number of routers traversed (including source and target routers)."""
        return len(self.path)

    @property
    def is_local(self) -> bool:
        """Whether the channel stays on a single tile."""
        return self.hops == 0
