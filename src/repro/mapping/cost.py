"""Cost models for spatial mappings.

The objective of the spatial mapper is to minimise the energy consumption of
the entire application: processing as well as inter-process communication
(paper, section 1.3).  Two cost views are provided:

* :func:`manhattan_cost` — the simple communication metric used by step 2 of
  the algorithm and reported in Table 2: the sum of Manhattan distances of
  all (mapped) data channels of the application.
* :func:`mapping_energy_nj` — the full energy objective: computation energy
  of the chosen implementations plus communication energy proportional to the
  data volume and the number of hops of each channel, plus an activation cost
  for every tile that is switched on for this application.  The relative
  weights live in :class:`CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.routing import manhattan_distance


@dataclass(frozen=True)
class CostModel:
    """Weights of the energy cost model.

    Parameters
    ----------
    energy_per_bit_per_hop_nj:
        Energy to move one bit across one router-to-router hop (links plus
        router traversal).  The default (0.001 nJ = 1 pJ/bit/hop) is in the
        range published for 90-130 nm NoCs, the technology generation of the
        paper's platform.
    tile_activation_energy_nj:
        Energy penalty per iteration for every *additional* tile the
        application occupies.  This models the paper's observation that
        unused parts of the system can be switched off; mapping two processes
        to one tile avoids the second tile's static energy.
    local_channel_energy_per_bit_nj:
        Energy to move one bit between two processes sharing a tile (local
        memory traffic); normally much cheaper than crossing the NoC.
    """

    energy_per_bit_per_hop_nj: float = 0.001
    tile_activation_energy_nj: float = 0.0
    local_channel_energy_per_bit_nj: float = 0.0001

    def __post_init__(self) -> None:
        if self.energy_per_bit_per_hop_nj < 0:
            raise ValueError("energy_per_bit_per_hop_nj must be non-negative")
        if self.tile_activation_energy_nj < 0:
            raise ValueError("tile_activation_energy_nj must be non-negative")
        if self.local_channel_energy_per_bit_nj < 0:
            raise ValueError("local_channel_energy_per_bit_nj must be non-negative")


def _endpoint_tiles(
    mapping: Mapping, als: ApplicationLevelSpec, channel: Channel
) -> tuple[str, str] | None:
    """Tiles of both channel endpoints, or ``None`` when either is still unmapped."""
    tiles: list[str] = []
    for process_name in channel.endpoints():
        process = als.kpn.process(process_name)
        if process.is_pinned and process.pinned_tile is not None:
            tiles.append(process.pinned_tile)
        elif mapping.is_assigned(process_name):
            tiles.append(mapping.tile_of(process_name))
        else:
            return None
    return tiles[0], tiles[1]


def _endpoint_tiles_with_moves(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    channel: Channel,
    moves: dict[str, str],
) -> tuple[str, str] | None:
    """Endpoint tiles as :func:`_endpoint_tiles`, with ``moves`` overriding tiles."""
    tiles: list[str] = []
    for process_name in channel.endpoints():
        override = moves.get(process_name)
        if override is not None:
            tiles.append(override)
            continue
        process = als.kpn.process(process_name)
        if process.is_pinned and process.pinned_tile is not None:
            tiles.append(process.pinned_tile)
        elif mapping.is_assigned(process_name):
            tiles.append(mapping.tile_of(process_name))
        else:
            return None
    return tiles[0], tiles[1]


def incident_channels(als: ApplicationLevelSpec) -> dict[str, tuple[Channel, ...]]:
    """Data channels touching each process, for delta-cost evaluation."""
    incident: dict[str, list[Channel]] = {}
    for channel in als.kpn.data_channels():
        for process_name in set(channel.endpoints()):
            incident.setdefault(process_name, []).append(channel)
    return {name: tuple(channels) for name, channels in incident.items()}


def manhattan_cost_delta(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    moves: dict[str, str],
    incident: dict[str, tuple[Channel, ...]],
    *,
    weighted_by_tokens: bool = False,
) -> float:
    """Change in :func:`manhattan_cost` if ``moves`` (process -> new tile) were applied.

    Only the channels incident to a moved process are re-evaluated, so a
    move/swap is scored in O(degree) instead of O(channels).  With integral
    distances and token weights (the common case) the delta arithmetic is
    exact — ``manhattan_cost(mapping) + delta == manhattan_cost(moved
    mapping)``, pinned by the property-test suite; fractional token weights
    can round in the last ulp, which is why the step-2 search resyncs its
    running cost from a full recompute after every accepted move.
    """
    seen: set[str] = set()
    delta = 0.0
    for process_name in moves:
        for channel in incident.get(process_name, ()):
            if channel.name in seen:
                continue
            seen.add(channel.name)
            before = _endpoint_tiles(mapping, als, channel)
            after = _endpoint_tiles_with_moves(mapping, als, channel, moves)
            weight = channel.tokens_per_iteration if weighted_by_tokens else 1.0
            if before is not None:
                delta -= weight * manhattan_distance(
                    platform.tile(before[0]).position, platform.tile(before[1]).position
                )
            if after is not None:
                delta += weight * manhattan_distance(
                    platform.tile(after[0]).position, platform.tile(after[1]).position
                )
    return delta


def manhattan_cost(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    *,
    weighted_by_tokens: bool = False,
) -> float:
    """Sum of Manhattan distances of all mapped data channels (the Table 2 metric).

    Channels whose endpoints are not both placed yet are skipped, so the
    metric is usable on partial mappings during the search.  With
    ``weighted_by_tokens=True`` each distance is weighted by the channel's
    tokens per iteration, which gives a volume-aware variant used by the
    ablation benchmarks.
    """
    total = 0.0
    for channel in als.kpn.data_channels():
        endpoints = _endpoint_tiles(mapping, als, channel)
        if endpoints is None:
            continue
        source_tile, target_tile = endpoints
        distance = manhattan_distance(
            platform.tile(source_tile).position, platform.tile(target_tile).position
        )
        weight = channel.tokens_per_iteration if weighted_by_tokens else 1.0
        total += distance * weight
    return total


def communication_energy_nj(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    cost_model: CostModel | None = None,
) -> float:
    """Communication energy per iteration of all mapped data channels.

    Routed channels use their actual hop count; unrouted (but placed)
    channels fall back to the Manhattan distance estimate, which is exactly
    the look-ahead step 2 of the algorithm performs before routes exist.
    """
    model = cost_model or CostModel()
    total = 0.0
    for channel in als.kpn.data_channels():
        endpoints = _endpoint_tiles(mapping, als, channel)
        if endpoints is None:
            continue
        source_tile, target_tile = endpoints
        if mapping.is_routed(channel.name):
            hops = mapping.route(channel.name).hops
        else:
            hops = manhattan_distance(
                platform.tile(source_tile).position, platform.tile(target_tile).position
            )
        bits = channel.bits_per_iteration
        if hops == 0:
            total += bits * model.local_channel_energy_per_bit_nj
        else:
            total += bits * hops * model.energy_per_bit_per_hop_nj
    return total


def mapping_energy_nj(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    cost_model: CostModel | None = None,
) -> float:
    """Total energy per iteration of a (possibly partial) mapping.

    Computation energy of all chosen implementations, plus communication
    energy (see :func:`communication_energy_nj`), plus the tile-activation
    penalty for every distinct tile the application occupies.
    """
    model = cost_model or CostModel()
    computation = mapping.computation_energy_nj()
    communication = communication_energy_nj(mapping, als, platform, model)
    activation = model.tile_activation_energy_nj * len(mapping.used_tiles())
    return computation + communication + activation
