"""Quality criteria of spatial mappings: adequate, adherent, feasible.

Paper, section 3:

* A mapping is **adequate** if for all processes there is an implementation
  available for the type of tile to which it is assigned.
* A mapping is **adherent** when it is adequate and no tile is assigned more
  processes than it can serve (and, once channels are routed, no NoC link
  carries more guaranteed throughput than its capacity).
* A mapping is **feasible** if it is adherent and all the application's QoS
  constraints are met — this last check needs the dataflow analysis of step 4
  and therefore lives in :mod:`repro.spatialmapper.step4_feasibility`; here we
  only combine its verdict.
"""

from __future__ import annotations

from collections import defaultdict

from repro.appmodel.library import ImplementationLibrary
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.state import PlatformState


def adequacy_violations(
    mapping: Mapping,
    platform: Platform,
    library: ImplementationLibrary,
) -> list[str]:
    """Human-readable adequacy violations (empty list means adequate).

    A violation is reported when an assigned process either carries no
    implementation at all, carries an implementation for a different tile
    type than the tile it sits on, or sits on a tile type for which the
    library has no implementation of that process.
    """
    violations: list[str] = []
    for assignment in mapping.assignments:
        tile = platform.tile(assignment.tile)
        if assignment.implementation is None:
            # Pinned processes (sources/sinks) carry no implementation; they are
            # adequate by definition as long as they sit on their pinned tile.
            continue
        if assignment.implementation.tile_type != tile.type_name:
            violations.append(
                f"process {assignment.process!r} uses a {assignment.implementation.tile_type} "
                f"implementation but is assigned to tile {tile.name!r} of type {tile.type_name}"
            )
        if not library.has_implementation(assignment.process, tile.type_name):
            violations.append(
                f"process {assignment.process!r} has no implementation for tile type "
                f"{tile.type_name} (tile {tile.name!r})"
            )
    return violations


def adherence_violations(
    mapping: Mapping,
    platform: Platform,
    library: ImplementationLibrary,
    state: PlatformState | None = None,
    als: ApplicationLevelSpec | None = None,
) -> list[str]:
    """Human-readable adherence violations (empty list means adherent).

    Checks, on top of adequacy: per-tile process-slot and memory budgets
    (taking the existing allocations in ``state`` into account) and, for every
    routed channel, link capacities and path connectivity.
    """
    violations = adequacy_violations(mapping, platform, library)

    # --- tile budgets -------------------------------------------------- #
    per_tile: dict[str, list] = defaultdict(list)
    for assignment in mapping.assignments:
        if assignment.implementation is not None:
            per_tile[assignment.tile].append(assignment)
    for tile_name, assignments in per_tile.items():
        tile = platform.tile(tile_name)
        existing_slots = state.used_process_slots(tile_name) if state else 0
        existing_memory = state.used_memory_bytes(tile_name) if state else 0
        slots = existing_slots + len(assignments)
        if slots > tile.resources.max_processes:
            violations.append(
                f"tile {tile_name!r} would host {slots} processes but serves at most "
                f"{tile.resources.max_processes}"
            )
        memory = existing_memory + sum(a.implementation.memory_bytes for a in assignments)
        if memory > tile.resources.memory_bytes:
            violations.append(
                f"tile {tile_name!r} would need {memory} bytes of memory but has "
                f"{tile.resources.memory_bytes}"
            )
        if not tile.is_processing:
            violations.append(f"tile {tile_name!r} is not a processing tile")

    # --- routed channels ------------------------------------------------ #
    link_demand: dict[str, float] = defaultdict(float)
    for route in mapping.routes:
        path = route.path
        for a, b in zip(path, path[1:]):
            if not platform.noc.has_link(a, b):
                violations.append(
                    f"route of channel {route.channel!r} uses missing link {a} -> {b}"
                )
                continue
            link_demand[platform.noc.link(a, b).name] += route.required_bits_per_s
        # The route must start and end at the routers of the mapped endpoint tiles.
        source_position = platform.tile(route.source_tile).position
        target_position = platform.tile(route.target_tile).position
        if path[0] != source_position or path[-1] != target_position:
            violations.append(
                f"route of channel {route.channel!r} does not connect the routers of its "
                f"endpoint tiles ({route.source_tile!r} -> {route.target_tile!r})"
            )
    for link in platform.noc.links:
        demand = link_demand.get(link.name, 0.0)
        existing = state.link_load_bits_per_s(link.name) if state else 0.0
        if demand + existing > link.capacity_bits_per_s + 1e-9:
            violations.append(
                f"link {link.name!r} would carry {demand + existing:.3g} bit/s but offers "
                f"{link.capacity_bits_per_s:.3g} bit/s"
            )

    # --- endpoint consistency between routes and assignments ------------ #
    if als is not None:
        for route in mapping.routes:
            channel = als.kpn.channel(route.channel)
            expectations = (
                (channel.source, route.source_tile),
                (channel.target, route.target_tile),
            )
            for process_name, tile_name in expectations:
                process = als.kpn.process(process_name)
                if process.is_pinned:
                    if process.pinned_tile != tile_name:
                        violations.append(
                            f"route of channel {route.channel!r} attaches pinned process "
                            f"{process_name!r} to tile {tile_name!r} instead of "
                            f"{process.pinned_tile!r}"
                        )
                elif mapping.is_assigned(process_name) and mapping.tile_of(process_name) != tile_name:
                    violations.append(
                        f"route of channel {route.channel!r} assumes process {process_name!r} on "
                        f"tile {tile_name!r} but it is assigned to {mapping.tile_of(process_name)!r}"
                    )
    return violations


def is_adequate(
    mapping: Mapping, platform: Platform, library: ImplementationLibrary
) -> bool:
    """Whether the mapping is adequate (see module docstring)."""
    return not adequacy_violations(mapping, platform, library)


def is_adherent(
    mapping: Mapping,
    platform: Platform,
    library: ImplementationLibrary,
    state: PlatformState | None = None,
    als: ApplicationLevelSpec | None = None,
) -> bool:
    """Whether the mapping is adherent (see module docstring)."""
    return not adherence_violations(mapping, platform, library, state, als)
