"""The Mapping container: process assignments plus channel routes."""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import MappingError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.assignment import ChannelRoute, ProcessAssignment


class Mapping:
    """A (possibly partial) spatial mapping of one application.

    A mapping is built up step by step by the spatial mapper: step 1/2 add
    process assignments, step 3 adds channel routes and step 4 adds buffer
    capacities.  The container is deliberately permissive — partial and even
    inadherent mappings are representable, because intermediate states of the
    heuristic are exactly that; quality is judged by
    :mod:`repro.mapping.properties` and :mod:`repro.mapping.cost`.
    """

    def __init__(self, application: str) -> None:
        if not application:
            raise MappingError("mapping must name its application")
        self.application = application
        self._assignments: dict[str, ProcessAssignment] = {}
        self._routes: dict[str, ChannelRoute] = {}
        self._buffer_capacities: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Assignments
    # ------------------------------------------------------------------ #
    def assign(self, assignment: ProcessAssignment) -> ProcessAssignment:
        """Add or replace the assignment of a process."""
        self._assignments[assignment.process] = assignment
        return assignment

    def assign_all(self, assignments: Iterable[ProcessAssignment]) -> None:
        """Add or replace several assignments."""
        for assignment in assignments:
            self.assign(assignment)

    def unassign(self, process: str) -> None:
        """Remove the assignment of a process (no-op when absent)."""
        self._assignments.pop(process, None)

    @property
    def assignments(self) -> tuple[ProcessAssignment, ...]:
        """All process assignments in insertion order."""
        return tuple(self._assignments.values())

    def assignment(self, process: str) -> ProcessAssignment:
        """Return the assignment of ``process``; raises when unassigned."""
        try:
            return self._assignments[process]
        except KeyError:
            raise MappingError(
                f"process {process!r} is not assigned in mapping of {self.application!r}"
            ) from None

    def is_assigned(self, process: str) -> bool:
        """Whether the process already has an assignment."""
        return process in self._assignments

    def tile_of(self, process: str) -> str:
        """Tile the process is assigned to."""
        return self.assignment(process).tile

    def processes_on(self, tile: str) -> tuple[str, ...]:
        """Processes assigned to the given tile."""
        return tuple(a.process for a in self._assignments.values() if a.tile == tile)

    def assigned_processes(self) -> tuple[str, ...]:
        """Names of all assigned processes."""
        return tuple(self._assignments.keys())

    def used_tiles(self) -> tuple[str, ...]:
        """Tiles hosting at least one process of this mapping."""
        seen: dict[str, None] = {}
        for assignment in self._assignments.values():
            seen.setdefault(assignment.tile)
        return tuple(seen.keys())

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def add_route(self, route: ChannelRoute) -> ChannelRoute:
        """Add or replace the route of a channel."""
        self._routes[route.channel] = route
        return route

    def remove_route(self, channel: str) -> None:
        """Remove a channel's route (no-op when absent)."""
        self._routes.pop(channel, None)

    def clear_routes(self) -> None:
        """Remove all routes (used when step 2 invalidates previously routed channels)."""
        self._routes.clear()

    @property
    def routes(self) -> tuple[ChannelRoute, ...]:
        """All channel routes in insertion order."""
        return tuple(self._routes.values())

    def route(self, channel: str) -> ChannelRoute:
        """Return the route of ``channel``; raises when unrouted."""
        try:
            return self._routes[channel]
        except KeyError:
            raise MappingError(
                f"channel {channel!r} is not routed in mapping of {self.application!r}"
            ) from None

    def is_routed(self, channel: str) -> bool:
        """Whether the channel has a route."""
        return channel in self._routes

    # ------------------------------------------------------------------ #
    # Buffers
    # ------------------------------------------------------------------ #
    def set_buffer_capacity(self, channel: str, capacity_tokens: int) -> None:
        """Record the buffer capacity computed for a channel (step 4)."""
        if capacity_tokens < 1:
            raise MappingError(
                f"buffer capacity for channel {channel!r} must be at least 1 token"
            )
        self._buffer_capacities[channel] = int(capacity_tokens)

    @property
    def buffer_capacities(self) -> dict[str, int]:
        """Per-channel buffer capacities (tokens); empty until step 4 ran."""
        return dict(self._buffer_capacities)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def is_complete(self, als: ApplicationLevelSpec) -> bool:
        """Whether every process and every data channel of the application is mapped."""
        for process in als.kpn.processes:
            if process.is_mappable and not self.is_assigned(process.name):
                return False
        for channel in als.kpn.data_channels():
            if not self.is_routed(channel.name):
                return False
        return True

    def copy(self) -> "Mapping":
        """An independent copy (assignments and routes are immutable and shared)."""
        clone = Mapping(self.application)
        clone._assignments = dict(self._assignments)
        clone._routes = dict(self._routes)
        clone._buffer_capacities = dict(self._buffer_capacities)
        return clone

    def computation_energy_nj(self) -> float:
        """Total computation energy per iteration over all assigned implementations."""
        return sum(a.energy_nj_per_iteration for a in self._assignments.values())

    def __len__(self) -> int:
        return len(self._assignments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mapping(application={self.application!r}, assignments={len(self._assignments)}, "
            f"routes={len(self._routes)})"
        )
