"""Result objects returned by mappers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.csdf.graph import CSDFGraph
from repro.mapping.mapping import Mapping

if TYPE_CHECKING:  # imported lazily: spatialmapper depends on this module
    from repro.spatialmapper.feedback import Feedback


class MappingStatus(enum.Enum):
    """Outcome classification of a mapping attempt, ordered from best to worst."""

    #: Adherent and all QoS constraints verified by the dataflow analysis.
    FEASIBLE = "feasible"
    #: Structurally valid (adequate + resource budgets respected) but the QoS
    #: check failed or was not run.
    ADHERENT = "adherent"
    #: Every process has an implementation for its tile type, but some
    #: resource budget is violated.
    ADEQUATE = "adequate"
    #: Some process is mapped to a tile type it has no implementation for, or
    #: could not be mapped at all.
    FAILED = "failed"

    def at_least(self, other: "MappingStatus") -> bool:
        """Whether this status is at least as good as ``other``."""
        order = [
            MappingStatus.FAILED,
            MappingStatus.ADEQUATE,
            MappingStatus.ADHERENT,
            MappingStatus.FEASIBLE,
        ]
        return order.index(self) >= order.index(other)


@dataclass
class FeasibilityReport:
    """Details of the step-4 dataflow analysis."""

    required_period_ns: float
    achieved_period_ns: float | None = None
    latency_ns: float | None = None
    buffer_capacities: dict[str, int] = field(default_factory=dict)
    satisfied: bool = False
    reason: str = ""


@dataclass
class MappingResult:
    """Everything a mapper returns about one mapping attempt.

    Attributes
    ----------
    mapping:
        The spatial mapping that was produced (possibly partial on failure).
    status:
        Outcome classification.
    energy_nj_per_iteration:
        Value of the full energy objective for this mapping.
    manhattan_cost:
        The step-2 communication metric (sum of Manhattan distances).
    feasibility:
        Step-4 analysis report, when the analysis ran.
    mapped_csdf:
        The mapped CSDF graph (application actors + router actors), when
        constructed — this is the paper's Figure 3 artefact.
    iterations:
        Number of outer feedback iterations the mapper performed.
    runtime_s:
        Wall-clock time spent producing this result.
    diagnostics:
        Free-form log of decisions and violations, for reports and debugging.
    pending_feedback:
        Feedback raised by the failing step of this attempt, which the
        mapper's refinement loop translates into exclusions for the next
        iteration.
    """

    mapping: Mapping
    status: MappingStatus
    energy_nj_per_iteration: float = 0.0
    manhattan_cost: float = 0.0
    feasibility: FeasibilityReport | None = None
    mapped_csdf: CSDFGraph | None = None
    iterations: int = 0
    runtime_s: float = 0.0
    diagnostics: list[str] = field(default_factory=list)
    pending_feedback: list["Feedback"] = field(default_factory=list)

    @property
    def is_feasible(self) -> bool:
        """Whether the produced mapping is feasible."""
        return self.status is MappingStatus.FEASIBLE

    def summary(self) -> str:
        """One-line human-readable summary."""
        feasible = "feasible" if self.is_feasible else self.status.value
        return (
            f"{self.mapping.application}: {feasible}, "
            f"energy={self.energy_nj_per_iteration:.1f} nJ/iter, "
            f"manhattan={self.manhattan_cost:g}, iterations={self.iterations}"
        )
