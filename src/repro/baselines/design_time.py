"""Design-time mapping baseline.

Section 1.3 of the paper argues that a design-time mapping must be computed
under worst-case assumptions because the set of co-running applications is
unknown, whereas a run-time mapping can exploit the actual platform state.
This baseline makes that comparison concrete:

* at *design time* the mapping of an application is computed once, on an
  empty platform, with the same heuristic the run-time mapper uses;
* at *run time* the frozen mapping is only usable when all its tiles and
  routes are still available; otherwise the baseline either rejects the
  application or (optionally) falls back to a conservative worst-case
  mapping restricted to the general-purpose tile type.

The energy/acceptance gap between this baseline and the run-time
:class:`~repro.spatialmapper.mapper.SpatialMapper` over multi-application
scenarios is what the ``ext-runtime`` benchmark measures.
"""

from __future__ import annotations

import time

from repro.appmodel.library import ImplementationLibrary
from repro.baselines.common import complete_and_evaluate
from repro.exceptions import PlatformError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.mapping import Mapping
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState, ProcessAllocation
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper


class DesignTimeMapper:
    """A mapping frozen at design time, replayed at run time.

    Parameters
    ----------
    fallback_tile_type:
        Tile type of the conservative fallback mapping (typically the
        general-purpose processor).  ``None`` disables the fallback: when the
        frozen mapping collides with running applications the request is
        rejected.
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary,
        config: MapperConfig | None = None,
        *,
        fallback_tile_type: str | None = None,
    ) -> None:
        self.platform = platform
        self.library = library
        self.config = config or MapperConfig()
        self.fallback_tile_type = fallback_tile_type
        self._design_time_mappings: dict[str, Mapping] = {}

    # ------------------------------------------------------------------ #
    def precompute(self, als: ApplicationLevelSpec) -> MappingResult:
        """Compute and freeze the design-time mapping of an application (empty platform)."""
        mapper = SpatialMapper(self.platform, self.library, self.config)
        result = mapper.map(als, PlatformState(self.platform))
        if result.status is not MappingStatus.FAILED:
            self._design_time_mappings[als.name] = result.mapping
        return result

    def has_design_time_mapping(self, application: str) -> bool:
        """Whether a frozen mapping exists for the application."""
        return application in self._design_time_mappings

    # ------------------------------------------------------------------ #
    def map(
        self, als: ApplicationLevelSpec, state: PlatformState | None = None
    ) -> MappingResult:
        """Replay the frozen mapping against the current platform state."""
        start = time.perf_counter()
        state = state if state is not None else PlatformState(self.platform)
        if als.name not in self._design_time_mappings:
            self.precompute(als)
        frozen = self._design_time_mappings.get(als.name)
        if frozen is None:
            result = MappingResult(mapping=Mapping(als.name), status=MappingStatus.FAILED)
            result.diagnostics = ["no design-time mapping could be computed"]
            result.runtime_s = time.perf_counter() - start
            return result

        if self._placements_available(frozen, state):
            placement = Mapping(als.name)
            placement.assign_all(frozen.assignments)
            result = complete_and_evaluate(
                placement, als, self.platform, self.library, state=state, config=self.config
            )
            result.runtime_s = time.perf_counter() - start
            return result

        if self.fallback_tile_type is not None:
            result = self._fallback(als, state)
            result.runtime_s = time.perf_counter() - start
            return result

        result = MappingResult(mapping=frozen.copy(), status=MappingStatus.FAILED)
        result.diagnostics = [
            "design-time mapping collides with already-running applications and no fallback "
            "is configured"
        ]
        result.runtime_s = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    def _placements_available(self, frozen: Mapping, state: PlatformState) -> bool:
        """Whether every tile of the frozen mapping still has a free slot and memory.

        The check is a transactional what-if: the frozen placements are
        tentatively allocated into the live state and rolled back, so the
        exact admission rules of :meth:`PlatformState.allocate_process` apply
        without copying the state.
        """
        try:
            with state.transaction() as txn:
                for assignment in frozen.assignments:
                    if assignment.implementation is None:
                        continue
                    state.allocate_process(
                        ProcessAllocation(
                            application=f"__whatif_{frozen.application}",
                            process=assignment.process,
                            tile=assignment.tile,
                            memory_bytes=assignment.implementation.memory_bytes,
                            compute_cycles_per_iteration=(
                                assignment.implementation.total_wcet_cycles
                            ),
                        )
                    )
                txn.rollback()
        except PlatformError:
            return False
        return True

    def _fallback(self, als: ApplicationLevelSpec, state: PlatformState) -> MappingResult:
        """Worst-case fallback: map with implementations of the fallback tile type only."""
        restricted = self.library.restricted_to([self.fallback_tile_type])
        mapper = SpatialMapper(self.platform, restricted, self.config)
        result = mapper.map(als, state)
        result.diagnostics.insert(
            0,
            f"design-time mapping unavailable; fell back to {self.fallback_tile_type}-only "
            "worst-case mapping",
        )
        return result
