"""First-fit baseline: the paper's step 1 without the step-2 refinement.

This baseline isolates the contribution of the local-search refinement: it
runs the desirability-ordered greedy packing (step 1) and then goes straight
to routing and feasibility checking.  Comparing it against the full mapper is
the "does step 2 matter?" ablation of the benchmarks.
"""

from __future__ import annotations

import time

from repro.appmodel.library import ImplementationLibrary
from repro.baselines.common import complete_and_evaluate
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.step1_implementation import select_implementations


class FirstFitMapper:
    """Greedy desirability-ordered first-fit placement (step 1 only)."""

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary,
        config: MapperConfig | None = None,
    ) -> None:
        self.platform = platform
        self.library = library
        self.config = config or MapperConfig()

    def map(
        self, als: ApplicationLevelSpec, state: PlatformState | None = None
    ) -> MappingResult:
        """Place processes greedily and evaluate the resulting mapping."""
        start = time.perf_counter()
        state = state if state is not None else PlatformState(self.platform)
        step1 = select_implementations(
            als, self.platform, self.library, state=state, config=self.config
        )
        if not step1.succeeded:
            result = MappingResult(mapping=step1.mapping, status=MappingStatus.FAILED)
            result.diagnostics = [f.message for f in step1.feedback]
            result.runtime_s = time.perf_counter() - start
            return result
        result = complete_and_evaluate(
            step1.mapping, als, self.platform, self.library, state=state, config=self.config
        )
        result.runtime_s = time.perf_counter() - start
        return result
