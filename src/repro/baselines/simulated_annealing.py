"""Simulated-annealing baseline.

A classic single-level metaheuristic over complete placements: the state is
an adequate assignment of every process to (implementation, tile); neighbours
change one process's tile, swap two same-type processes or switch a process
to a different implementation; the objective is the full energy cost with a
penalty for slot-budget violations.  This is the kind of monolithic search
the paper's hierarchical decomposition competes with: it can find good
solutions but needs far more cost evaluations than the four-step heuristic,
which is exactly what the scalability benchmark measures.
"""

from __future__ import annotations

import math
import random
import time

from repro.appmodel.library import ImplementationLibrary
from repro.baselines.common import complete_and_evaluate
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.assignment import ProcessAssignment
from repro.mapping.cost import mapping_energy_nj
from repro.mapping.mapping import Mapping
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.step1_implementation import select_implementations


class SimulatedAnnealingMapper:
    """Simulated annealing over complete adequate placements.

    Parameters
    ----------
    iterations:
        Number of annealing steps (cost evaluations).
    initial_temperature / cooling:
        Geometric cooling schedule: ``T_k = initial_temperature * cooling**k``.
    slot_penalty_nj:
        Penalty added to the objective per over-subscribed process slot, so
        the search can move through (but is pushed away from) inadherent
        states.
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary,
        config: MapperConfig | None = None,
        *,
        iterations: int = 500,
        initial_temperature: float = 50.0,
        cooling: float = 0.98,
        slot_penalty_nj: float = 500.0,
        seed: int = 0,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        if not (0 < cooling < 1):
            raise ValueError("cooling must be in (0, 1)")
        self.platform = platform
        self.library = library
        self.config = config or MapperConfig()
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.slot_penalty_nj = slot_penalty_nj
        self.seed = seed

    # ------------------------------------------------------------------ #
    def map(
        self, als: ApplicationLevelSpec, state: PlatformState | None = None
    ) -> MappingResult:
        """Anneal a placement and evaluate the best state found."""
        start = time.perf_counter()
        state = state if state is not None else PlatformState(self.platform)
        rng = random.Random(self.seed)

        step1 = select_implementations(
            als, self.platform, self.library, state=state, config=self.config
        )
        if not step1.succeeded:
            result = MappingResult(mapping=step1.mapping, status=MappingStatus.FAILED)
            result.diagnostics = [f.message for f in step1.feedback]
            result.runtime_s = time.perf_counter() - start
            return result

        current = step1.mapping
        current_cost = self._objective(current, als, state)
        best_mapping = current
        best_cost = current_cost
        temperature = self.initial_temperature

        for _ in range(self.iterations):
            neighbour = self._neighbour(current, als, rng)
            if neighbour is None:
                break
            neighbour_cost = self._objective(neighbour, als, state)
            delta = neighbour_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current = neighbour
                current_cost = neighbour_cost
                if current_cost < best_cost:
                    best_mapping = current
                    best_cost = current_cost
            temperature *= self.cooling

        result = complete_and_evaluate(
            best_mapping, als, self.platform, self.library, state=state, config=self.config
        )
        result.runtime_s = time.perf_counter() - start
        result.iterations = self.iterations
        return result

    # ------------------------------------------------------------------ #
    def _objective(
        self, mapping: Mapping, als: ApplicationLevelSpec, state: PlatformState
    ) -> float:
        """Energy objective plus a penalty per over-subscribed process slot."""
        energy = mapping_energy_nj(mapping, als, self.platform, self.config.cost_model)
        penalty = 0.0
        for tile in self.platform.processing_tiles():
            occupancy = state.used_process_slots(tile.name) + len(
                mapping.processes_on(tile.name)
            )
            overflow = occupancy - tile.resources.max_processes
            if overflow > 0:
                penalty += overflow * self.slot_penalty_nj
        return energy + penalty

    def _neighbour(
        self, mapping: Mapping, als: ApplicationLevelSpec, rng: random.Random
    ) -> Mapping | None:
        """A random neighbouring placement (move, swap or implementation change)."""
        processes = [
            p.name
            for p in als.kpn.mappable_processes()
            if mapping.is_assigned(p.name) and mapping.assignment(p.name).implementation
        ]
        if not processes:
            return None
        process_name = rng.choice(processes)
        assignment = mapping.assignment(process_name)
        moves = ["move", "swap", "reimplement"]
        rng.shuffle(moves)
        for move in moves:
            if move == "move":
                tiles = [
                    t.name
                    for t in self.platform.tiles_of_type(assignment.implementation.tile_type)
                    if t.is_processing and t.name != assignment.tile
                ]
                if not tiles:
                    continue
                neighbour = mapping.copy()
                neighbour.assign(assignment.moved_to(rng.choice(tiles)))
                return neighbour
            if move == "swap":
                partners = [
                    other
                    for other in processes
                    if other != process_name
                    and mapping.assignment(other).implementation is not None
                    and mapping.assignment(other).implementation.tile_type
                    == assignment.implementation.tile_type
                    and mapping.assignment(other).tile != assignment.tile
                ]
                if not partners:
                    continue
                partner = rng.choice(partners)
                neighbour = mapping.copy()
                partner_assignment = mapping.assignment(partner)
                neighbour.assign(assignment.moved_to(partner_assignment.tile))
                neighbour.assign(partner_assignment.moved_to(assignment.tile))
                return neighbour
            if move == "reimplement":
                alternatives = [
                    impl
                    for impl in self.library.implementations_for(process_name)
                    if impl.tile_type != assignment.implementation.tile_type
                ]
                if not alternatives:
                    continue
                implementation = rng.choice(alternatives)
                tiles = [
                    t.name
                    for t in self.platform.tiles_of_type(implementation.tile_type)
                    if t.is_processing
                ]
                if not tiles:
                    continue
                neighbour = mapping.copy()
                neighbour.assign(
                    ProcessAssignment(process_name, rng.choice(tiles), implementation)
                )
                return neighbour
        return None
