"""Shared machinery of the baseline mappers."""

from __future__ import annotations

from repro.appmodel.library import ImplementationLibrary
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.cost import manhattan_cost, mapping_energy_nj
from repro.mapping.mapping import Mapping
from repro.mapping.properties import adherence_violations
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.step3_routing import route_channels
from repro.spatialmapper.step4_feasibility import check_feasibility


def complete_and_evaluate(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    library: ImplementationLibrary,
    *,
    state: PlatformState | None = None,
    config: MapperConfig | None = None,
    run_feasibility: bool = True,
) -> MappingResult:
    """Route the channels of a placement, analyse it and wrap it in a result.

    Baselines produce only the process placement; this helper applies the
    same steps 3 and 4 the paper's mapper uses so all strategies are judged
    by identical criteria.
    """
    config = config or MapperConfig()
    step3 = route_channels(mapping, als, platform, state=state, config=config)
    current = step3.mapping
    result = MappingResult(
        mapping=current,
        status=MappingStatus.ADEQUATE,
        energy_nj_per_iteration=mapping_energy_nj(current, als, platform, config.cost_model),
        manhattan_cost=manhattan_cost(current, als, platform),
    )
    if not step3.succeeded:
        result.diagnostics = [f.message for f in step3.feedback]
        return result

    violations = adherence_violations(current, platform, library, state, als)
    if violations:
        result.diagnostics = violations
        return result
    result.status = MappingStatus.ADHERENT

    if not run_feasibility:
        return result
    step4 = check_feasibility(current, als, platform, library, state=state, config=config)
    result.mapping = step4.mapping
    result.feasibility = step4.report
    result.mapped_csdf = step4.mapped_csdf
    result.energy_nj_per_iteration = mapping_energy_nj(
        step4.mapping, als, platform, config.cost_model
    )
    result.manhattan_cost = manhattan_cost(step4.mapping, als, platform)
    if step4.feasible:
        result.status = MappingStatus.FEASIBLE
    else:
        result.diagnostics = [step4.report.reason]
    return result


def better_result(best: MappingResult | None, candidate: MappingResult) -> MappingResult:
    """The better of two results: higher status first, then lower energy."""
    if best is None:
        return candidate
    if candidate.status.at_least(best.status) and candidate.status is not best.status:
        return candidate
    if candidate.status is best.status and (
        candidate.energy_nj_per_iteration < best.energy_nj_per_iteration
    ):
        return candidate
    return best
