"""Exhaustive (optimal) mapper for small problem instances.

Spatial mapping is a Generalised Assignment Problem and therefore
NP-complete; exhaustive search is only viable for small instances such as the
HiperLAN/2 case (4 processes, 4 candidate tiles).  The exhaustive mapper
enumerates every adequate implementation/tile combination, evaluates the full
energy objective and (optionally) the feasibility analysis, and returns the
cheapest feasible mapping.  It provides the optimality reference used by the
scalability benchmark.
"""

from __future__ import annotations

import itertools
import time

from repro.appmodel.library import ImplementationLibrary
from repro.baselines.common import better_result, complete_and_evaluate
from repro.exceptions import MappingError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.assignment import ProcessAssignment
from repro.mapping.cost import mapping_energy_nj
from repro.mapping.mapping import Mapping
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig


class ExhaustiveMapper:
    """Enumerate all adequate placements and keep the best feasible one.

    Parameters
    ----------
    platform / library / config:
        Same meaning as for :class:`~repro.spatialmapper.mapper.SpatialMapper`.
    max_combinations:
        Safety cap on the number of enumerated placements; exceeding it raises
        :class:`~repro.exceptions.MappingError` so callers notice they asked
        for an exhaustive search on an instance that is too large.
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary,
        config: MapperConfig | None = None,
        *,
        max_combinations: int = 200_000,
    ) -> None:
        self.platform = platform
        self.library = library
        self.config = config or MapperConfig()
        self.max_combinations = max_combinations
        #: Number of placements enumerated by the last :meth:`map` call.
        self.evaluated_placements = 0

    def map(
        self, als: ApplicationLevelSpec, state: PlatformState | None = None
    ) -> MappingResult:
        """Return the cheapest feasible mapping (or the best infeasible one found)."""
        start = time.perf_counter()
        state = state if state is not None else PlatformState(self.platform)
        processes = [p.name for p in als.kpn.mappable_processes()]

        per_process_options: list[list[ProcessAssignment]] = []
        for process_name in processes:
            options: list[ProcessAssignment] = []
            for implementation in self.library.implementations_for(process_name):
                for tile in self.platform.tiles_of_type(implementation.tile_type):
                    if not tile.is_processing:
                        continue
                    options.append(ProcessAssignment(process_name, tile.name, implementation))
            if not options:
                result = MappingResult(mapping=Mapping(als.name), status=MappingStatus.FAILED)
                result.diagnostics = [f"process {process_name!r} has no adequate placement"]
                return result
            per_process_options.append(options)

        total = 1
        for options in per_process_options:
            total *= len(options)
        if total > self.max_combinations:
            raise MappingError(
                f"exhaustive search would enumerate {total} placements "
                f"(cap: {self.max_combinations}); use the heuristic mapper instead"
            )

        # Enumerate every slot-respecting placement and rank it by the energy
        # objective (computation energy plus the Manhattan communication
        # estimate).  The expensive routing + dataflow analysis then runs in
        # ascending energy order and stops at the first feasible placement:
        # because feasibility does not depend on the objective, that placement
        # is the minimum-energy feasible one.
        ranked: list[tuple[float, Mapping]] = []
        self.evaluated_placements = 0
        for combination in itertools.product(*per_process_options):
            self.evaluated_placements += 1
            if not self._respects_slots(combination, state):
                continue
            mapping = Mapping(als.name)
            for process in als.kpn.pinned_processes():
                mapping.assign(ProcessAssignment(process.name, process.pinned_tile))
            mapping.assign_all(combination)
            estimate = mapping_energy_nj(mapping, als, self.platform, self.config.cost_model)
            ranked.append((estimate, mapping))
        ranked.sort(key=lambda item: item[0])

        best: MappingResult | None = None
        for _, mapping in ranked:
            candidate = complete_and_evaluate(
                mapping, als, self.platform, self.library, state=state, config=self.config
            )
            best = better_result(best, candidate)
            if candidate.status is MappingStatus.FEASIBLE:
                best = candidate
                break

        if best is None:
            best = MappingResult(mapping=Mapping(als.name), status=MappingStatus.FAILED)
            best.diagnostics = ["no placement respects the tile process-slot budgets"]
        best.runtime_s = time.perf_counter() - start
        best.iterations = self.evaluated_placements
        return best

    def _respects_slots(
        self, combination: tuple[ProcessAssignment, ...], state: PlatformState
    ) -> bool:
        """Cheap pre-filter: per-tile slot and memory budgets."""
        per_tile_count: dict[str, int] = {}
        per_tile_memory: dict[str, int] = {}
        for assignment in combination:
            per_tile_count[assignment.tile] = per_tile_count.get(assignment.tile, 0) + 1
            per_tile_memory[assignment.tile] = (
                per_tile_memory.get(assignment.tile, 0) + assignment.implementation.memory_bytes
            )
        for tile_name, count in per_tile_count.items():
            tile = self.platform.tile(tile_name)
            used = state.used_process_slots(tile_name)
            if used + count > tile.resources.max_processes:
                return False
            used_memory = state.used_memory_bytes(tile_name)
            if used_memory + per_tile_memory[tile_name] > tile.resources.memory_bytes:
                return False
        return True
