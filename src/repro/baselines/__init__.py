"""Baseline mappers used for comparison with the paper's heuristic.

The paper itself compares qualitatively against related work (design-time
assignment, homogeneous bin packing); these baselines make the comparison
quantitative on our models:

* :class:`~repro.baselines.exhaustive.ExhaustiveMapper` — optimal (for small
  instances) by enumerating all implementation/tile combinations;
* :class:`~repro.baselines.random_mapper.RandomMapper` — random adequate
  placements, best of N trials;
* :class:`~repro.baselines.first_fit.FirstFitMapper` — the paper's step 1
  only (greedy desirability + first fit), without the step-2 local search;
* :class:`~repro.baselines.simulated_annealing.SimulatedAnnealingMapper` — a
  classic single-level metaheuristic over placements;
* :class:`~repro.baselines.design_time.DesignTimeMapper` — a mapping frozen
  at design time on an empty platform, which at run time may collide with the
  applications already running (the scenario motivating the paper).

All baselines share the mapper interface (``map(als, state) -> MappingResult``)
and reuse the same routing and feasibility analysis (steps 3-4), so results
differ only in the placement strategy.
"""

from repro.baselines.common import complete_and_evaluate
from repro.baselines.exhaustive import ExhaustiveMapper
from repro.baselines.random_mapper import RandomMapper
from repro.baselines.first_fit import FirstFitMapper
from repro.baselines.simulated_annealing import SimulatedAnnealingMapper
from repro.baselines.design_time import DesignTimeMapper

__all__ = [
    "complete_and_evaluate",
    "ExhaustiveMapper",
    "RandomMapper",
    "FirstFitMapper",
    "SimulatedAnnealingMapper",
    "DesignTimeMapper",
]
