"""Random-placement baseline."""

from __future__ import annotations

import random
import time

from repro.appmodel.library import ImplementationLibrary
from repro.baselines.common import better_result, complete_and_evaluate
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.assignment import ProcessAssignment
from repro.mapping.mapping import Mapping
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig


class RandomMapper:
    """Best of N random adequate placements.

    Each trial assigns every process a uniformly random implementation and a
    uniformly random tile of that implementation's type that still has a free
    slot; the best result over ``trials`` attempts is returned.  This is the
    weakest sensible baseline: it respects adequacy and slot budgets but
    ignores communication entirely.
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary,
        config: MapperConfig | None = None,
        *,
        trials: int = 20,
        seed: int = 0,
    ) -> None:
        if trials < 1:
            raise ValueError("trials must be at least 1")
        self.platform = platform
        self.library = library
        self.config = config or MapperConfig()
        self.trials = trials
        self.seed = seed

    def map(
        self, als: ApplicationLevelSpec, state: PlatformState | None = None
    ) -> MappingResult:
        """Return the best mapping over the configured number of random trials."""
        start = time.perf_counter()
        state = state if state is not None else PlatformState(self.platform)
        rng = random.Random(self.seed)
        best: MappingResult | None = None
        for _ in range(self.trials):
            mapping = self._random_placement(als, state, rng)
            if mapping is None:
                continue
            candidate = complete_and_evaluate(
                mapping, als, self.platform, self.library, state=state, config=self.config
            )
            best = better_result(best, candidate)
        if best is None:
            best = MappingResult(mapping=Mapping(als.name), status=MappingStatus.FAILED)
            best.diagnostics = ["no random trial produced an adequate placement"]
        best.runtime_s = time.perf_counter() - start
        best.iterations = self.trials
        return best

    def _random_placement(
        self, als: ApplicationLevelSpec, state: PlatformState, rng: random.Random
    ) -> Mapping | None:
        """One random adequate placement, or ``None`` when a process cannot be placed."""
        mapping = Mapping(als.name)
        for process in als.kpn.pinned_processes():
            mapping.assign(ProcessAssignment(process.name, process.pinned_tile))
        slots_left = {
            tile.name: tile.resources.max_processes - state.used_process_slots(tile.name)
            for tile in self.platform.processing_tiles()
        }
        for process in als.kpn.mappable_processes():
            implementations = list(self.library.implementations_for(process.name))
            rng.shuffle(implementations)
            placed = False
            for implementation in implementations:
                tiles = [
                    tile
                    for tile in self.platform.tiles_of_type(implementation.tile_type)
                    if tile.is_processing and slots_left.get(tile.name, 0) > 0
                ]
                if not tiles:
                    continue
                tile = rng.choice(tiles)
                mapping.assign(ProcessAssignment(process.name, tile.name, implementation))
                slots_left[tile.name] -= 1
                placed = True
                break
            if not placed:
                return None
        return mapping
