"""The Kahn Process Network graph container."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import KPNError
from repro.kpn.channel import Channel
from repro.kpn.process import Process, ProcessKind


class KPNGraph:
    """A directed graph of processes connected by FIFO channels.

    The graph is the functional decomposition of a streaming application
    (Figure 1 of the paper).  It deliberately carries no timing information;
    timing lives in the per-implementation CSDF descriptions
    (:mod:`repro.appmodel`).

    The container enforces referential integrity: a channel can only be added
    once both its endpoint processes exist, and process/channel names are
    unique.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise KPNError("KPN graph name must be a non-empty string")
        self.name = name
        self._processes: dict[str, Process] = {}
        self._channels: dict[str, Channel] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_process(self, process: Process) -> Process:
        """Add a process to the graph and return it.

        Raises :class:`~repro.exceptions.KPNError` if a process with the same
        name already exists.
        """
        if process.name in self._processes:
            raise KPNError(f"duplicate process name {process.name!r} in KPN {self.name!r}")
        self._processes[process.name] = process
        return process

    def add_channel(self, channel: Channel) -> Channel:
        """Add a channel to the graph and return it.

        Both endpoint processes must already be present.
        """
        if channel.name in self._channels:
            raise KPNError(f"duplicate channel name {channel.name!r} in KPN {self.name!r}")
        for endpoint in channel.endpoints():
            if endpoint not in self._processes:
                raise KPNError(
                    f"channel {channel.name!r} references unknown process {endpoint!r}"
                )
        self._channels[channel.name] = channel
        return channel

    def add_processes(self, processes: Iterable[Process]) -> None:
        """Add several processes at once."""
        for process in processes:
            self.add_process(process)

    def add_channels(self, channels: Iterable[Channel]) -> None:
        """Add several channels at once."""
        for channel in channels:
            self.add_channel(channel)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def processes(self) -> tuple[Process, ...]:
        """All processes in insertion order."""
        return tuple(self._processes.values())

    @property
    def channels(self) -> tuple[Channel, ...]:
        """All channels in insertion order."""
        return tuple(self._channels.values())

    @property
    def process_names(self) -> tuple[str, ...]:
        """Names of all processes in insertion order."""
        return tuple(self._processes.keys())

    def process(self, name: str) -> Process:
        """Return the process called ``name`` or raise :class:`KPNError`."""
        try:
            return self._processes[name]
        except KeyError:
            raise KPNError(f"unknown process {name!r} in KPN {self.name!r}") from None

    def channel(self, name: str) -> Channel:
        """Return the channel called ``name`` or raise :class:`KPNError`."""
        try:
            return self._channels[name]
        except KeyError:
            raise KPNError(f"unknown channel {name!r} in KPN {self.name!r}") from None

    def has_process(self, name: str) -> bool:
        """Whether a process with the given name exists."""
        return name in self._processes

    def has_channel(self, name: str) -> bool:
        """Whether a channel with the given name exists."""
        return name in self._channels

    def __contains__(self, name: str) -> bool:
        return self.has_process(name)

    def __iter__(self) -> Iterator[Process]:
        return iter(self._processes.values())

    def __len__(self) -> int:
        return len(self._processes)

    # ------------------------------------------------------------------ #
    # Queries used by the mapper
    # ------------------------------------------------------------------ #
    def mappable_processes(self) -> tuple[Process, ...]:
        """Processes the spatial mapper must assign (kernels and control processes)."""
        return tuple(p for p in self._processes.values() if p.is_mappable)

    def pinned_processes(self) -> tuple[Process, ...]:
        """Processes pinned to fixed tiles (sources and sinks)."""
        return tuple(p for p in self._processes.values() if p.is_pinned)

    def data_channels(self) -> tuple[Channel, ...]:
        """Channels that belong to the streaming data path (non-control)."""
        return tuple(c for c in self._channels.values() if not c.is_control)

    def channels_of(self, process_name: str) -> tuple[Channel, ...]:
        """All channels incident to the given process (incoming and outgoing)."""
        self.process(process_name)
        return tuple(
            c
            for c in self._channels.values()
            if process_name in c.endpoints()
        )

    def incoming_channels(self, process_name: str) -> tuple[Channel, ...]:
        """Channels whose target is the given process."""
        self.process(process_name)
        return tuple(c for c in self._channels.values() if c.target == process_name)

    def outgoing_channels(self, process_name: str) -> tuple[Channel, ...]:
        """Channels whose source is the given process."""
        self.process(process_name)
        return tuple(c for c in self._channels.values() if c.source == process_name)

    def neighbours(self, process_name: str) -> tuple[str, ...]:
        """Names of all processes connected to the given process by a channel."""
        self.process(process_name)
        seen: dict[str, None] = {}
        for channel in self._channels.values():
            if channel.source == process_name:
                seen.setdefault(channel.target)
            elif channel.target == process_name:
                seen.setdefault(channel.source)
        return tuple(seen.keys())

    def sources(self) -> tuple[Process, ...]:
        """Processes of kind :attr:`~repro.kpn.process.ProcessKind.SOURCE`."""
        return tuple(p for p in self._processes.values() if p.kind is ProcessKind.SOURCE)

    def sinks(self) -> tuple[Process, ...]:
        """Processes of kind :attr:`~repro.kpn.process.ProcessKind.SINK`."""
        return tuple(p for p in self._processes.values() if p.kind is ProcessKind.SINK)

    def topological_order(self) -> tuple[str, ...]:
        """Return process names in a topological order of the data channels.

        Control channels are ignored (they may introduce cycles with the data
        path, e.g. feedback from a demapper to a controller).  Raises
        :class:`KPNError` if the data-path graph is cyclic.
        """
        indegree: dict[str, int] = {name: 0 for name in self._processes}
        successors: dict[str, list[str]] = {name: [] for name in self._processes}
        for channel in self.data_channels():
            indegree[channel.target] += 1
            successors[channel.source].append(channel.target)
        ready = [name for name, degree in indegree.items() if degree == 0]
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for successor in successors[current]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self._processes):
            raise KPNError(f"KPN {self.name!r} has a cycle in its data channels")
        return tuple(order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KPNGraph(name={self.name!r}, processes={len(self._processes)}, "
            f"channels={len(self._channels)})"
        )
