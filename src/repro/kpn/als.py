"""Application Level Specification (ALS).

The paper (section 4.1) defines the ALS as "the graph describing functional
dependencies of the processes and the QoS constraints together".  This module
bundles the two and is the unit of work handed to the spatial mapper and to
the run-time resource manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kpn.graph import KPNGraph
from repro.kpn.qos import QoSConstraints
from repro.kpn.validation import validate_kpn


@dataclass
class ApplicationLevelSpec:
    """A streaming application: its KPN plus its QoS constraints.

    Parameters
    ----------
    kpn:
        Functional decomposition of the application.
    qos:
        Quality-of-Service constraints (iteration period, optional latency).
    name:
        Application name; defaults to the KPN name.
    """

    kpn: KPNGraph
    qos: QoSConstraints
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.kpn.name
        validate_kpn(self.kpn)

    @property
    def period_ns(self) -> float:
        """Required iteration period of the application in nanoseconds."""
        return self.qos.period_ns

    def mappable_process_names(self) -> tuple[str, ...]:
        """Names of processes the mapper must place."""
        return tuple(p.name for p in self.kpn.mappable_processes())

    def pinned_assignments(self) -> dict[str, str]:
        """Mapping from pinned process name to the tile it is bound to."""
        return {p.name: p.pinned_tile for p in self.kpn.pinned_processes() if p.pinned_tile}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApplicationLevelSpec(name={self.name!r}, "
            f"processes={len(self.kpn)}, period_ns={self.qos.period_ns})"
        )
