"""Processes of a Kahn Process Network."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ProcessKind(enum.Enum):
    """Role of a process in the application graph.

    The paper's HiperLAN/2 example distinguishes ordinary computational
    kernels from the fixed source (the A/D converter tile), the fixed sink
    (the tile that consumes the receiver output) and the control process
    which is "not part of the data stream" (section 4.1).  Source and sink
    processes are pinned to specific tiles by the application-level
    specification and are not assigned by the spatial mapper; control
    processes are excluded from the data-path cost model.
    """

    #: A computational kernel that must be assigned to a tile by the mapper.
    KERNEL = "kernel"
    #: A data source pinned to a fixed tile (e.g. an A/D converter).
    SOURCE = "source"
    #: A data sink pinned to a fixed tile.
    SINK = "sink"
    #: A control process outside the data stream; it is neither spatially
    #: mapped nor part of the communication cost model.
    CONTROL = "control"


@dataclass(frozen=True)
class Process:
    """A single process (task) of a streaming application.

    Parameters
    ----------
    name:
        Unique name of the process within its KPN.
    kind:
        Role of the process, see :class:`ProcessKind`.
    pinned_tile:
        For :attr:`ProcessKind.SOURCE` and :attr:`ProcessKind.SINK`
        processes, the name of the tile the process is bound to.  ``None``
        for processes placed by the mapper.
    description:
        Optional human-readable description (only used in reports).
    """

    name: str
    kind: ProcessKind = ProcessKind.KERNEL
    pinned_tile: str | None = None
    description: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("process name must be a non-empty string")
        if self.is_pinned and self.pinned_tile is None:
            raise ValueError(
                f"process {self.name!r} of kind {self.kind.value} must name its pinned tile"
            )
        if not self.is_pinned and self.pinned_tile is not None:
            raise ValueError(
                f"process {self.name!r} of kind {self.kind.value} must not be pinned to a tile"
            )

    @property
    def is_pinned(self) -> bool:
        """Whether the process is bound to a fixed tile (sources and sinks)."""
        return self.kind in (ProcessKind.SOURCE, ProcessKind.SINK)

    @property
    def is_mappable(self) -> bool:
        """Whether the spatial mapper has to choose a tile for this process.

        Control processes are "not part of the data stream" (paper, section
        4.1) and are excluded from the spatial mapping, exactly as the
        worked HiperLAN/2 example omits the CTRL block from Figure 3.
        """
        return self.kind is ProcessKind.KERNEL

    @property
    def is_data_process(self) -> bool:
        """Whether the process is part of the streaming data path."""
        return self.kind is not ProcessKind.CONTROL

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
