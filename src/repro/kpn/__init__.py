"""Kahn Process Network (KPN) application model.

A streaming DSP application is described at the functional level as a Kahn
Process Network: a set of :class:`~repro.kpn.process.Process` nodes connected
by :class:`~repro.kpn.channel.Channel` edges (unbounded FIFO channels in the
KPN semantics; bounded buffers are only introduced once the application is
mapped).  Together with the :class:`~repro.kpn.qos.QoSConstraints` this forms
the Application Level Specification (ALS) of the paper (section 4.1).
"""

from repro.kpn.process import Process, ProcessKind
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.qos import QoSConstraints
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.validation import validate_kpn

__all__ = [
    "Process",
    "ProcessKind",
    "Channel",
    "KPNGraph",
    "QoSConstraints",
    "ApplicationLevelSpec",
    "validate_kpn",
]
