"""Quality-of-Service constraints of a streaming application."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import NS_PER_S


@dataclass(frozen=True)
class QoSConstraints:
    """QoS constraints attached to an application-level specification.

    The paper's spatial mapper checks, in step 4, that the mapped application
    still satisfies its QoS constraints.  For streaming applications the two
    relevant constraints are the *throughput* (the source produces one graph
    iteration — e.g. one OFDM symbol — every ``period_ns`` nanoseconds and the
    pipeline must keep up) and an optional end-to-end *latency* bound.

    Parameters
    ----------
    period_ns:
        Required iteration period in nanoseconds.  The HiperLAN/2 receiver
        must accept one OFDM symbol every 4 us, i.e. ``period_ns = 4000``.
    max_latency_ns:
        Optional upper bound on the source-to-sink latency of one iteration.
        ``None`` means no latency constraint.
    max_energy_nj_per_iteration:
        Optional energy budget per iteration.  This is not a hard QoS
        constraint in the paper (energy is the optimisation objective), but a
        resource manager may use it for admission control.
    """

    period_ns: float
    max_latency_ns: float | None = None
    max_energy_nj_per_iteration: float | None = None

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {self.period_ns!r}")
        if self.max_latency_ns is not None and self.max_latency_ns <= 0:
            raise ValueError(f"max_latency_ns must be positive, got {self.max_latency_ns!r}")
        if (
            self.max_energy_nj_per_iteration is not None
            and self.max_energy_nj_per_iteration <= 0
        ):
            raise ValueError("max_energy_nj_per_iteration must be positive")

    @property
    def throughput_iterations_per_s(self) -> float:
        """Required throughput expressed in graph iterations per second."""
        return NS_PER_S / self.period_ns

    def satisfied_by(self, achieved_period_ns: float, latency_ns: float | None = None) -> bool:
        """Return ``True`` iff an achieved period (and optional latency) meets the constraints.

        A small relative tolerance (1e-9) absorbs floating-point rounding in
        the analysis results.
        """
        tolerance = 1e-9 * self.period_ns
        if achieved_period_ns > self.period_ns + tolerance:
            return False
        if self.max_latency_ns is not None:
            if latency_ns is None:
                return False
            if latency_ns > self.max_latency_ns + 1e-9 * self.max_latency_ns:
                return False
        return True
