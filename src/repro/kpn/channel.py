"""Channels (FIFO edges) of a Kahn Process Network."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Channel:
    """A directed FIFO channel between two processes.

    In the application-level specification the channel is annotated with the
    amount of data transported per application iteration (per OFDM symbol in
    the HiperLAN/2 example of the paper, Figure 1) so that the mapper can
    estimate communication load before the detailed CSDF model is available.

    Parameters
    ----------
    name:
        Unique channel name within the KPN.
    source / target:
        Names of the producing and consuming processes.
    tokens_per_iteration:
        Number of tokens communicated per graph iteration (e.g. 32-bit
        complex samples per OFDM symbol).
    token_size_bits:
        Size of a single token in bits (32 for the HiperLAN/2 samples).
    is_control:
        ``True`` for control channels that are not part of the data stream
        and therefore excluded from the communication cost model (the
        CTRL -> Demapping edge of Figure 1).
    """

    name: str
    source: str
    target: str
    tokens_per_iteration: float = 1.0
    token_size_bits: int = 32
    is_control: bool = False
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("channel name must be a non-empty string")
        if not self.source or not self.target:
            raise ValueError(f"channel {self.name!r} must have a source and a target process")
        if self.source == self.target:
            raise ValueError(f"channel {self.name!r} is a self-loop ({self.source!r})")
        if self.tokens_per_iteration < 0:
            raise ValueError(
                f"channel {self.name!r}: tokens_per_iteration must be non-negative"
            )
        if self.token_size_bits <= 0:
            raise ValueError(f"channel {self.name!r}: token_size_bits must be positive")

    @property
    def bits_per_iteration(self) -> float:
        """Total number of bits transported over this channel per iteration."""
        return self.tokens_per_iteration * self.token_size_bits

    @property
    def bytes_per_iteration(self) -> float:
        """Total number of bytes transported over this channel per iteration."""
        return self.bits_per_iteration / 8.0

    def endpoints(self) -> tuple[str, str]:
        """Return ``(source, target)`` process names."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}: {self.source} -> {self.target}"
