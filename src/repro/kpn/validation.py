"""Structural validation of Kahn Process Networks."""

from __future__ import annotations

from repro.exceptions import KPNError
from repro.kpn.graph import KPNGraph
from repro.kpn.process import ProcessKind


def validate_kpn(kpn: KPNGraph) -> None:
    """Check structural well-formedness of a KPN; raise :class:`KPNError` if broken.

    The checks are the preconditions the spatial mapper relies on:

    * the graph is non-empty;
    * every non-control process is reachable through data channels, i.e. no
      kernel is completely disconnected from the data path;
    * sources have no incoming data channels and sinks no outgoing ones;
    * every pinned process names a tile (already enforced per-process, but
      re-checked here for graphs assembled from raw dictionaries).
    """
    if len(kpn) == 0:
        raise KPNError(f"KPN {kpn.name!r} has no processes")

    data_channels = kpn.data_channels()
    connected: set[str] = set()
    for channel in data_channels:
        connected.add(channel.source)
        connected.add(channel.target)

    for process in kpn.processes:
        if process.kind is ProcessKind.CONTROL:
            continue
        if len(kpn) > 1 and process.name not in connected:
            raise KPNError(
                f"process {process.name!r} in KPN {kpn.name!r} is not connected "
                "to the data path"
            )

    for process in kpn.sources():
        if kpn.incoming_channels(process.name):
            incoming = [c.name for c in kpn.incoming_channels(process.name) if not c.is_control]
            if incoming:
                raise KPNError(
                    f"source process {process.name!r} has incoming data channels {incoming}"
                )
        if process.pinned_tile is None:
            raise KPNError(f"source process {process.name!r} must be pinned to a tile")

    for process in kpn.sinks():
        outgoing = [c.name for c in kpn.outgoing_channels(process.name) if not c.is_control]
        if outgoing:
            raise KPNError(
                f"sink process {process.name!r} has outgoing data channels {outgoing}"
            )
        if process.pinned_tile is None:
            raise KPNError(f"sink process {process.name!r} must be pinned to a tile")

    # A KPN with data channels must have at least one process producing data
    # into the network and one consuming it (otherwise the QoS throughput
    # constraint is meaningless).
    if data_channels:
        has_producer = any(not kpn.incoming_channels(p.name) for p in kpn.processes)
        has_consumer = any(not kpn.outgoing_channels(p.name) for p in kpn.processes)
        if not (has_producer and has_consumer):
            raise KPNError(
                f"KPN {kpn.name!r} data path has no clear producer/consumer structure"
            )
