"""Unit helpers used throughout the library.

The paper mixes several units: worst-case execution times are given in clock
cycles (Table 1), the QoS constraint of the HiperLAN/2 receiver is given in
micro-seconds per OFDM symbol (4 us), and energies are given in nano-Joules
per symbol.  Internally the library uses

* **clock cycles** for WCETs attached to CSDF actors,
* **nanoseconds** for absolute times, periods and latencies,
* **nanojoules** for energies,
* **Hertz** for clock frequencies, and
* **tokens per nanosecond** (or per second where stated) for throughput.

This module centralises the conversions so that quantities never change unit
implicitly.  Every function takes and returns plain ``float``/``int`` values;
the unit is part of the function name.
"""

from __future__ import annotations

#: Number of nanoseconds in a microsecond.
NS_PER_US = 1_000.0
#: Number of nanoseconds in a millisecond.
NS_PER_MS = 1_000_000.0
#: Number of nanoseconds in a second.
NS_PER_S = 1_000_000_000.0

#: Convenience constant: 1 MHz expressed in Hz.
MHZ = 1_000_000.0
#: Convenience constant: 1 GHz expressed in Hz.
GHZ = 1_000_000_000.0


def cycles_to_ns(cycles: float, frequency_hz: float) -> float:
    """Convert a duration in clock cycles into nanoseconds.

    Parameters
    ----------
    cycles:
        Number of clock cycles (may be fractional for average-case figures).
    frequency_hz:
        Clock frequency of the resource executing those cycles, in Hertz.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return cycles * NS_PER_S / frequency_hz


def ns_to_cycles(duration_ns: float, frequency_hz: float) -> float:
    """Convert a duration in nanoseconds into clock cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return duration_ns * frequency_hz / NS_PER_S


def us_to_ns(duration_us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return duration_us * NS_PER_US


def ms_to_ns(duration_ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return duration_ms * NS_PER_MS


def s_to_ns(duration_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return duration_s * NS_PER_S


def ns_to_us(duration_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return duration_ns / NS_PER_US


def ns_to_ms(duration_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return duration_ns / NS_PER_MS


def hz_from_mhz(frequency_mhz: float) -> float:
    """Convert a frequency in MHz to Hz."""
    return frequency_mhz * MHZ


def nj_to_j(energy_nj: float) -> float:
    """Convert nanojoules to joules."""
    return energy_nj / 1e9


def j_to_nj(energy_j: float) -> float:
    """Convert joules to nanojoules."""
    return energy_j * 1e9


def throughput_tokens_per_s(tokens: float, period_ns: float) -> float:
    """Return the throughput, in tokens per second, of producing ``tokens`` every ``period_ns``."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns!r}")
    return tokens * NS_PER_S / period_ns
