"""Routing over the NoC.

The spatial mapper uses three routing-related primitives:

* :func:`manhattan_distance` — the hop-count estimate used by step 2's
  communication-cost model;
* :func:`xy_route` — deterministic dimension-ordered routing, used as a cheap
  deterministic route and as a tie-breaking reference;
* :func:`capacity_aware_shortest_path` — the route search of step 3: a
  shortest path over only those links that still have sufficient residual
  capacity for the channel's throughput requirement.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from repro.exceptions import RoutingError
from repro.platform.noc import NoC, Position


def manhattan_distance(a: Position, b: Position) -> int:
    """Manhattan (L1) distance between two grid positions."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def route_hop_count(path: tuple[Position, ...]) -> int:
    """Number of router-to-router hops on a path (``len(path) - 1``)."""
    if not path:
        return 0
    return len(path) - 1


def xy_route(noc: NoC, source: Position, target: Position) -> tuple[Position, ...]:
    """Dimension-ordered (X first, then Y) route between two routers.

    Only valid for mesh-like topologies where every intermediate link exists;
    raises :class:`~repro.exceptions.RoutingError` otherwise.
    """
    source = tuple(source)
    target = tuple(target)
    noc.router(source)
    noc.router(target)
    path = [source]
    x, y = source
    tx, ty = target
    while x != tx:
        x += 1 if tx > x else -1
        path.append((x, y))
    while y != ty:
        y += 1 if ty > y else -1
        path.append((x, y))
    for a, b in zip(path, path[1:]):
        if not noc.has_link(a, b):
            raise RoutingError(f"XY route {source} -> {target} needs missing link {a} -> {b}")
    return tuple(path)


def capacity_aware_shortest_path(
    noc: NoC,
    source: Position,
    target: Position,
    required_bits_per_s: float = 0.0,
    link_loads_bits_per_s: Mapping[str, float] | None = None,
    allowed_positions: frozenset[Position] | None = None,
) -> tuple[Position, ...]:
    """Shortest router path whose links all have enough residual capacity.

    Parameters
    ----------
    noc:
        The network.
    source / target:
        Router positions of the producing and consuming tiles.
    required_bits_per_s:
        Throughput demand of the channel being routed.
    link_loads_bits_per_s:
        Current allocation per link (keyed by :attr:`Link.name`), typically
        taken from :class:`~repro.platform.state.PlatformState`.  Links whose
        residual capacity is below the requirement are excluded from the
        search, exactly as described for step 3 of the algorithm.
    allowed_positions:
        When given, the search is confined to these router positions — used
        by region-scoped mapping so routes never leave the selected region.
        Both endpoints must be allowed.

    Returns
    -------
    tuple of positions
        The router positions along the path, including source and target.
        When ``source == target`` the path is the single position.

    Raises
    ------
    RoutingError
        When no path with sufficient residual capacity exists.
    """
    source = tuple(source)
    target = tuple(target)
    noc.router(source)
    noc.router(target)
    if required_bits_per_s < 0:
        raise RoutingError("required throughput must be non-negative")
    loads = link_loads_bits_per_s or {}
    if allowed_positions is not None:
        for endpoint in (source, target):
            if endpoint not in allowed_positions:
                raise RoutingError(
                    f"endpoint {endpoint} lies outside the allowed region positions"
                )

    if source == target:
        return (source,)

    # Dijkstra over hop count with deterministic tie-breaking on position so
    # that equal-length routes are chosen reproducibly.
    distances: dict[Position, int] = {source: 0}
    previous: dict[Position, Position] = {}
    queue: list[tuple[int, Position]] = [(0, source)]
    visited: set[Position] = set()
    while queue:
        distance, position = heapq.heappop(queue)
        if position in visited:
            continue
        visited.add(position)
        if position == target:
            break
        for neighbour in sorted(noc.neighbours(position)):
            if allowed_positions is not None and neighbour not in allowed_positions:
                continue
            link = noc.link(position, neighbour)
            residual = link.capacity_bits_per_s - loads.get(link.name, 0.0)
            if residual + 1e-9 < required_bits_per_s:
                continue
            candidate = distance + 1
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                previous[neighbour] = position
                heapq.heappush(queue, (candidate, neighbour))

    if target not in distances:
        raise RoutingError(
            f"no path from {source} to {target} with {required_bits_per_s:.3g} bit/s "
            "residual capacity on every link"
        )
    path = [target]
    while path[-1] != source:
        path.append(previous[path[-1]])
    path.reverse()
    return tuple(path)
