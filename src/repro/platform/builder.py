"""Convenience builder for platforms."""

from __future__ import annotations

from repro.exceptions import PlatformError
from repro.platform.noc import NoC
from repro.platform.platform import Platform
from repro.platform.resources import ResourceBudget
from repro.platform.tile import Tile
from repro.platform.tile_type import TileType
from repro.platform.topology import build_mesh_noc


class PlatformBuilder:
    """Fluent builder for :class:`~repro.platform.platform.Platform` instances.

    Example
    -------
    >>> platform = (
    ...     PlatformBuilder("demo")
    ...     .mesh(2, 2)
    ...     .tile_type("ARM", frequency_mhz=100)
    ...     .tile("arm0", "ARM", (0, 0))
    ...     .tile("arm1", "ARM", (1, 0))
    ...     .build()
    ... )
    >>> len(platform)
    2
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._noc: NoC | None = None
        self._types: dict[str, TileType] = {}
        self._tiles: list[Tile] = []
        self._allow_shared_routers = False

    def mesh(
        self,
        width: int,
        height: int,
        *,
        link_capacity_bits_per_s: float = 1e9,
        router_latency_cycles: int = 4,
        router_frequency_mhz: float = 100.0,
    ) -> "PlatformBuilder":
        """Use a ``width`` x ``height`` mesh NoC."""
        self._noc = build_mesh_noc(
            width,
            height,
            link_capacity_bits_per_s=link_capacity_bits_per_s,
            router_latency_cycles=router_latency_cycles,
            router_frequency_hz=router_frequency_mhz * 1e6,
            name=f"{self._name}_noc",
        )
        return self

    def noc(self, noc: NoC) -> "PlatformBuilder":
        """Use an explicitly constructed NoC."""
        self._noc = noc
        return self

    def allow_shared_routers(self, allow: bool = True) -> "PlatformBuilder":
        """Allow several tiles to share one router."""
        self._allow_shared_routers = allow
        return self

    def tile_type(
        self,
        name: str,
        *,
        frequency_mhz: float = 100.0,
        is_processing: bool = True,
        idle_power_mw: float = 0.0,
        description: str = "",
    ) -> "PlatformBuilder":
        """Declare (or overwrite) a tile type."""
        self._types[name] = TileType(
            name=name,
            frequency_hz=frequency_mhz * 1e6,
            is_processing=is_processing,
            idle_power_mw=idle_power_mw,
            description=description,
        )
        return self

    def tile(
        self,
        name: str,
        type_name: str,
        position: tuple[int, int],
        *,
        max_processes: int = 1,
        memory_bytes: int = 1 << 20,
        ni_capacity_bits_per_s: float | None = None,
    ) -> "PlatformBuilder":
        """Add a tile of a previously declared type at a router position."""
        if type_name not in self._types:
            raise PlatformError(
                f"tile {name!r} uses undeclared tile type {type_name!r}; "
                "declare it with .tile_type() first"
            )
        self._tiles.append(
            Tile(
                name=name,
                tile_type=self._types[type_name],
                position=tuple(position),
                resources=ResourceBudget(
                    max_processes=max_processes, memory_bytes=memory_bytes
                ),
                ni_capacity_bits_per_s=ni_capacity_bits_per_s,
            )
        )
        return self

    def build(self) -> Platform:
        """Assemble and return the platform."""
        if self._noc is None:
            raise PlatformError("no NoC configured; call .mesh() or .noc() first")
        platform = Platform(self._name, self._noc, allow_shared_routers=self._allow_shared_routers)
        platform.add_tiles(self._tiles)
        return platform
