"""Resource budgets of tiles and resource requirements of implementations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PlatformError


@dataclass(frozen=True)
class ResourceBudget:
    """The resources a tile offers to mapped processes.

    Parameters
    ----------
    max_processes:
        Maximum number of processes the tile can serve concurrently.  A
        coarse-grained reconfigurable tile such as the Montium hosts a single
        kernel; a general-purpose ARM tile may time-share a small number of
        light kernels.
    memory_bytes:
        Local data memory available for process state and stream buffers.
    compute_cycles_per_period:
        Processing budget expressed as available clock cycles per application
        period (used by adherence checks when several processes share a
        tile).  ``None`` means "not constrained at this level" (the detailed
        check happens in the CSDF analysis of step 4).
    """

    max_processes: int = 1
    memory_bytes: int = 1 << 20
    compute_cycles_per_period: float | None = None

    def __post_init__(self) -> None:
        if self.max_processes < 0:
            raise PlatformError("max_processes must be non-negative")
        if self.memory_bytes < 0:
            raise PlatformError("memory_bytes must be non-negative")
        if self.compute_cycles_per_period is not None and self.compute_cycles_per_period < 0:
            raise PlatformError("compute_cycles_per_period must be non-negative")


@dataclass(frozen=True)
class ResourceRequirement:
    """The resources a process implementation needs from its hosting tile.

    Parameters
    ----------
    memory_bytes:
        Data memory required (code, state, local buffers).
    compute_cycles_per_iteration:
        Worst-case cycles consumed per graph iteration (one OFDM symbol for
        the HiperLAN/2 case).  Used for tile-level utilisation checks.
    """

    memory_bytes: int = 0
    compute_cycles_per_iteration: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_bytes < 0:
            raise PlatformError("memory_bytes must be non-negative")
        if self.compute_cycles_per_iteration < 0:
            raise PlatformError("compute_cycles_per_iteration must be non-negative")

    def fits_within(self, budget: ResourceBudget, period_cycles: float | None = None) -> bool:
        """Whether this requirement alone fits in the given budget.

        ``period_cycles`` expresses the application period in tile clock
        cycles; when both it and the budget's compute limit are known, the
        cycle demand is also checked.
        """
        if budget.max_processes < 1:
            return False
        if self.memory_bytes > budget.memory_bytes:
            return False
        limit = budget.compute_cycles_per_period
        if limit is None and period_cycles is not None:
            limit = period_cycles
        if limit is not None and self.compute_cycles_per_iteration > limit:
            return False
        return True
