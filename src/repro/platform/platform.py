"""The platform: tiles plus the NoC that interconnects them."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import PlatformError
from repro.platform.noc import NoC, Position
from repro.platform.tile import Tile
from repro.platform.tile_type import TileType


class Platform:
    """A heterogeneous tiled MPSoC: named tiles attached to NoC routers.

    Every tile is attached to exactly one router (identified by the tile's
    position); several tiles may share a router only if the NoC was built
    that way on purpose — by default the builder enforces one tile per
    router, matching the paper's architecture template.
    """

    def __init__(self, name: str, noc: NoC, allow_shared_routers: bool = False) -> None:
        if not name:
            raise PlatformError("platform name must be a non-empty string")
        self.name = name
        self.noc = noc
        self._allow_shared_routers = allow_shared_routers
        self._tiles: dict[str, Tile] = {}
        self._tiles_by_position: dict[Position, list[str]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_tile(self, tile: Tile) -> Tile:
        """Attach a tile to the platform; its position must name an existing router."""
        if tile.name in self._tiles:
            raise PlatformError(f"duplicate tile name {tile.name!r}")
        if not self.noc.has_router(tile.position):
            raise PlatformError(
                f"tile {tile.name!r} is placed at {tile.position} but the NoC has no router there"
            )
        occupants = self._tiles_by_position.setdefault(tile.position, [])
        if occupants and not self._allow_shared_routers:
            raise PlatformError(
                f"router at {tile.position} already has tile {occupants[0]!r}; "
                "pass allow_shared_routers=True to allow several tiles per router"
            )
        self._tiles[tile.name] = tile
        occupants.append(tile.name)
        return tile

    def add_tiles(self, tiles: Iterable[Tile]) -> None:
        """Attach several tiles at once."""
        for tile in tiles:
            self.add_tile(tile)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def tiles(self) -> tuple[Tile, ...]:
        """All tiles in insertion order."""
        return tuple(self._tiles.values())

    @property
    def tile_names(self) -> tuple[str, ...]:
        """All tile names in insertion order."""
        return tuple(self._tiles.keys())

    def tile(self, name: str) -> Tile:
        """Return the tile called ``name``."""
        try:
            return self._tiles[name]
        except KeyError:
            raise PlatformError(f"unknown tile {name!r} in platform {self.name!r}") from None

    def has_tile(self, name: str) -> bool:
        """Whether a tile with the given name exists."""
        return name in self._tiles

    def __contains__(self, name: str) -> bool:
        return self.has_tile(name)

    def __iter__(self) -> Iterator[Tile]:
        return iter(self._tiles.values())

    def __len__(self) -> int:
        return len(self._tiles)

    def tiles_of_type(self, type_name: str | TileType) -> tuple[Tile, ...]:
        """All tiles whose type matches ``type_name`` (insertion order)."""
        if isinstance(type_name, TileType):
            type_name = type_name.name
        return tuple(t for t in self._tiles.values() if t.type_name == type_name)

    def processing_tiles(self) -> tuple[Tile, ...]:
        """Tiles that can host mapped processes."""
        return tuple(t for t in self._tiles.values() if t.is_processing)

    def tile_types(self) -> tuple[TileType, ...]:
        """The distinct tile types present, in first-appearance order."""
        seen: dict[str, TileType] = {}
        for tile in self._tiles.values():
            seen.setdefault(tile.type_name, tile.tile_type)
        return tuple(seen.values())

    def tiles_at(self, position: Position) -> tuple[Tile, ...]:
        """Tiles attached to the router at ``position``."""
        return tuple(self._tiles[name] for name in self._tiles_by_position.get(tuple(position), []))

    def router_of(self, tile_name: str) -> Position:
        """Router position of the given tile."""
        return self.tile(tile_name).position

    def distance(self, tile_a: str, tile_b: str) -> int:
        """Manhattan distance between the routers of two tiles."""
        a = self.tile(tile_a).position
        b = self.tile(tile_b).position
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Platform(name={self.name!r}, tiles={len(self._tiles)}, "
            f"routers={len(self.noc)})"
        )
