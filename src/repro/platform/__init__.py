"""Heterogeneous tiled MPSoC platform model.

A platform (paper section 1.1 and 4.3) is a set of *tiles* — a processing
element plus its network interface — interconnected by a Network-on-Chip with
predictable (guaranteed-throughput) routers.  The model separates the static
platform description (:class:`~repro.platform.platform.Platform`) from the
run-time allocation state (:class:`~repro.platform.state.PlatformState`), so
that mappers and the resource manager never mutate the hardware description.
"""

from repro.platform.tile_type import TileType
from repro.platform.resources import ResourceBudget, ResourceRequirement
from repro.platform.tile import Tile
from repro.platform.noc import Router, Link, NoC
from repro.platform.topology import build_mesh_noc
from repro.platform.routing import (
    manhattan_distance,
    xy_route,
    capacity_aware_shortest_path,
    route_hop_count,
)
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.platform.regions import Region, RegionPartition, RegionView
from repro.platform.builder import PlatformBuilder

__all__ = [
    "TileType",
    "ResourceBudget",
    "ResourceRequirement",
    "Tile",
    "Router",
    "Link",
    "NoC",
    "build_mesh_noc",
    "manhattan_distance",
    "xy_route",
    "capacity_aware_shortest_path",
    "route_hop_count",
    "Platform",
    "PlatformState",
    "Region",
    "RegionPartition",
    "RegionView",
    "PlatformBuilder",
]
