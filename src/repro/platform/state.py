"""Run-time allocation state of a platform.

The platform description (:class:`~repro.platform.platform.Platform`) is
immutable; everything that changes while applications start and stop lives in
a :class:`PlatformState`:

* which processes occupy which tile (and how much tile memory they use),
* how much guaranteed throughput is allocated on every NoC link.

The spatial mapper receives the *current* state when an application is
started (this is exactly the run-time information the paper argues a
design-time mapping cannot exploit) and returns the allocations of the new
application; the run-time resource manager then commits or rolls back those
allocations.

Two properties make the state cheap enough for run-time admission control:

* **O(1) aggregates** — used process slots, used memory and used compute
  cycles per tile, and the reserved throughput per link, are maintained
  incrementally on every allocate/release instead of being re-summed from the
  allocation lists on every query.  Admission cost therefore does not grow
  with the number (or allocation-list length) of already-running
  applications.
* **transactions** — :meth:`PlatformState.transaction` opens a journaled
  scope: every mutation records an undo snapshot, and a rollback restores the
  state bit-identically.  What-if exploration (tentative commits, batch
  admission, step-3 routing) uses transactions instead of copying the whole
  state.

Transactions can be *region-scoped*: passing a scope object (anything with
``covers_tile(name)`` / ``covers_link(name)``, e.g. a
:class:`~repro.platform.regions.Region`) restricts which keys the journal
protects.  A mutation is journaled into the innermost open transaction whose
scope covers the touched tile/link, so admissions into disjoint regions can
keep independent journals on the same state and commit or roll back without
touching each other.  Mutating a key no open transaction covers raises — a
cross-region allocation must be made under a scope that explicitly includes
it (or under an unscoped, global transaction).

Transaction stacks are *per thread*: nesting, journaling and the
innermost-first closing discipline all apply within one thread's stack, so
worker threads draining disjoint regions (the engine's parallel drain) each
keep their own journal chain and commit independently.  The state performs
no locking itself — it is the caller's job to ensure concurrent threads
mutate disjoint key sets (per-region locks; see
:class:`~repro.platform.regions.RegionLocks`).  An optional *ownership
guard* (:attr:`PlatformState.ownership_guard`) turns that discipline into a
hard assertion: when armed, every mutation checks that the mutating thread
actually owns the touched tile/link.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping

from repro.exceptions import PlatformError
from repro.platform.noc import Position
from repro.platform.platform import Platform


@dataclass(frozen=True)
class ProcessAllocation:
    """A process occupying a slot on a tile."""

    application: str
    process: str
    tile: str
    memory_bytes: int = 0
    compute_cycles_per_iteration: float = 0.0


@dataclass(frozen=True)
class LinkAllocation:
    """Guaranteed throughput reserved on a NoC link for one channel."""

    application: str
    channel: str
    link: str
    bits_per_s: float


@dataclass(frozen=True)
class RegionSnapshot:
    """Picklable region-local extract of a :class:`PlatformState`.

    This is what crosses the process boundary in the engine's
    snapshot-out / delta-in drain protocol: the scope's allocation lists
    (in their exact engine-side order) plus the scope fingerprint they were
    taken under.  Preserving list order matters — the cached aggregates are
    float sums over those lists, so a reordered snapshot could rebuild to a
    state whose fingerprint differs in the last bit.  A snapshot taken from
    a state and rebuilt with :meth:`build_state` therefore reproduces the
    scope's :meth:`PlatformState.fingerprint` bit-identically (the property
    tests pin exactly this).
    """

    scope_name: str
    tile_names: tuple[str, ...]
    link_names: tuple[str, ...]
    fingerprint: tuple
    tile_occupants: tuple[tuple[str, tuple[ProcessAllocation, ...]], ...]
    link_allocations: tuple[tuple[str, tuple[LinkAllocation, ...]], ...]

    def build_state(self, platform: Platform) -> "PlatformState":
        """A fresh state holding exactly this snapshot's allocations.

        Aggregates are recomputed from the (order-preserved) allocation
        lists, so the rebuilt state's scope fingerprint equals
        :attr:`fingerprint` exactly.  Tiles and links outside the scope are
        empty — a worker deciding strictly inside the scope never reads
        them.
        """
        return PlatformState(
            platform,
            {name: list(allocations) for name, allocations in self.tile_occupants},
            {name: list(allocations) for name, allocations in self.link_allocations},
        )


@dataclass(frozen=True)
class AllocationDelta:
    """The commit records of one admitted application, as transportable data.

    Exactly what :meth:`PlatformState.apply_delta` folds back into the
    engine-side state: the process and link allocations a worker's
    region-scoped commit produced, in commit order.
    """

    application: str
    processes: tuple[ProcessAllocation, ...]
    links: tuple[LinkAllocation, ...]

    def __len__(self) -> int:
        return len(self.processes) + len(self.links)


def fingerprint_digest(fingerprint: tuple) -> bytes:
    """A compact (20-byte) exact digest of a state fingerprint tuple.

    Fingerprint tuples contain only primitives (names, counts, exact float
    aggregates), so their ``repr`` is a canonical serialisation — equal
    tuples digest equally in any process, regardless of object identity.
    The delta-dispatch wire protocol chains these digests instead of the
    raw tuples: a fingerprint grows with region occupancy, while its
    digest keeps every journaled op O(its own change).
    """
    return hashlib.sha1(repr(fingerprint).encode("utf-8")).digest()


@dataclass(frozen=True)
class RegionDeltaOp:
    """One journaled mutation of a region, as replayable transport data.

    Ops form a chain: op ``seq`` transforms the region state whose
    fingerprint digests to the previous op's :attr:`target_fingerprint`
    (or the journal base) into the state digesting to this op's
    ``target_fingerprint`` (both via :func:`fingerprint_digest`).  A
    ``commit`` op carries the :class:`AllocationDelta` to fold; a
    ``release`` op carries only the application name — release re-sums
    aggregates from the survivors, so replaying the *logical* operation (and
    not a net diff) is what keeps the float fingerprints bit-identical
    between engine and worker.
    """

    seq: int
    kind: str  # "commit" | "release"
    application: str
    delta: AllocationDelta | None
    target_fingerprint: bytes


class RegionJournal:
    """Bounded, ordered log of the delta ops committed on one region.

    The engine's stateful drain protocol keys delta dispatches off this:
    a worker acknowledges (seq, fingerprint-digest) watermarks, and
    :meth:`ops_since` returns the chain of ops that carries the worker from
    its watermark to the journal tip — or ``None`` when the watermark fell
    off the bounded window (evicted) or its digest no longer matches
    the chain, in which case the engine must fall back to a full snapshot.
    All fingerprints handled here are :func:`fingerprint_digest` bytes.
    """

    __slots__ = (
        "scope_name",
        "tile_names",
        "link_names",
        "_tile_set",
        "_link_set",
        "capacity",
        "_ops",
        "base_seq",
        "base_fingerprint",
        "evictions",
        "resets",
    )

    def __init__(self, scope, base_fingerprint: bytes, capacity: int = 512) -> None:
        if capacity < 1:
            raise PlatformError("region journal capacity must be >= 1")
        self.scope_name: str = scope.name
        self.tile_names: tuple[str, ...] = tuple(scope.tile_names)
        self.link_names: tuple[str, ...] = tuple(scope.link_names)
        self._tile_set = frozenset(self.tile_names)
        self._link_set = frozenset(self.link_names)
        self.capacity = capacity
        self._ops: deque[RegionDeltaOp] = deque()
        self.base_seq = 0
        self.base_fingerprint = base_fingerprint
        self.evictions = 0
        self.resets = 0

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def tip_seq(self) -> int:
        """Sequence number of the newest journaled op (= base when empty)."""
        return self.base_seq + len(self._ops)

    @property
    def tip_fingerprint(self) -> bytes:
        """Digest of the region fingerprint after the newest journaled op."""
        return self._ops[-1].target_fingerprint if self._ops else self.base_fingerprint

    def covers_delta(self, processes, links) -> bool:
        """Whether any of the given records touch this journal's region."""
        return any(p.tile in self._tile_set for p in processes) or any(
            link.link in self._link_set for link in links
        )

    def filter_delta(self, application: str, processes, links) -> AllocationDelta:
        """The region-local part of a commit, record order preserved."""
        return AllocationDelta(
            application=application,
            processes=tuple(p for p in processes if p.tile in self._tile_set),
            links=tuple(link for link in links if link.link in self._link_set),
        )

    def append(self, kind: str, application: str, delta: AllocationDelta | None,
               target_fingerprint: bytes) -> RegionDeltaOp:
        """Journal one op at the tip; evicts the oldest op past capacity."""
        op = RegionDeltaOp(
            seq=self.tip_seq + 1,
            kind=kind,
            application=application,
            delta=delta,
            target_fingerprint=target_fingerprint,
        )
        self._ops.append(op)
        if len(self._ops) > self.capacity:
            evicted = self._ops.popleft()
            self.base_seq = evicted.seq
            self.base_fingerprint = evicted.target_fingerprint
            self.evictions += 1
        return op

    def ops_since(self, seq: int, fingerprint: bytes) -> tuple[RegionDeltaOp, ...] | None:
        """The op chain from watermark (seq, fingerprint) to the tip.

        ``None`` means the watermark cannot be bridged: the seq fell off the
        bounded window, runs ahead of the tip, or the fingerprint recorded
        at that seq does not match — all three force a snapshot fallback.
        """
        if seq < self.base_seq or seq > self.tip_seq:
            return None
        if seq == self.base_seq:
            expected = self.base_fingerprint
        else:
            expected = self._ops[seq - self.base_seq - 1].target_fingerprint
        if fingerprint != expected:
            return None
        if seq == self.tip_seq:
            return ()
        start = seq - self.base_seq
        return tuple(self._ops[i] for i in range(start, len(self._ops)))

    def reset(self, fingerprint: bytes) -> None:
        """Drop the op window, rebasing at the given fingerprint.

        Called when the engine detects an un-journaled mutation (journal tip
        no longer matches the live region fingerprint).  Sequence numbers
        stay monotonic across resets so stale worker watermarks can never
        alias a rebased chain.
        """
        self.base_seq = self.tip_seq
        self._ops.clear()
        self.base_fingerprint = fingerprint
        self.resets += 1


class StateTransaction:
    """Undo journal of one :meth:`PlatformState.transaction` scope.

    Every mutation inside the scope appends a snapshot of the touched
    tile/link entry (allocation list plus cached aggregates) *before* the
    mutation.  :meth:`rollback` replays the snapshots in reverse, restoring
    the state bit-identically; :meth:`commit` keeps the mutations.  When
    transactions nest, a committed inner journal is folded into the enclosing
    transaction so an outer rollback undoes inner commits as well.
    """

    __slots__ = (
        "_state",
        "_undo",
        "_seen_tiles",
        "_seen_links",
        "scope",
        "closed",
        "rolled_back",
    )

    def __init__(self, state: "PlatformState", scope=None) -> None:
        self._state = state
        # Entries: ("tile"|"link", name, allocations|None, *aggregates|None).
        # Only the first mutation of a key inside the transaction needs a
        # snapshot (rollback replays in reverse and ends at the oldest), so
        # the seen-sets keep the journal O(touched keys) instead of
        # O(mutations x list length).
        self._undo: list[tuple] = []
        self._seen_tiles: set[str] = set()
        self._seen_links: set[str] = set()
        #: Optional region scope; ``None`` means the transaction covers every
        #: tile and link of the platform.
        self.scope = scope
        self.closed = False
        self.rolled_back = False

    def covers_tile(self, tile_name: str) -> bool:
        """Whether this transaction's scope protects the given tile."""
        return self.scope is None or self.scope.covers_tile(tile_name)

    def covers_link(self, link_name: str) -> bool:
        """Whether this transaction's scope protects the given link."""
        return self.scope is None or self.scope.covers_link(link_name)

    def _check_innermost(self) -> None:
        """Closing out of nesting order would corrupt the undo chains."""
        stack = self._state._txn_stack()
        if self in stack:
            for txn in stack[stack.index(self) + 1 :]:
                if not txn.closed:
                    raise PlatformError(
                        "cannot close a transaction while a nested transaction is open"
                    )

    def commit(self) -> None:
        """Keep every mutation performed inside the transaction.

        The journal folds into the *enclosing* open transaction now, so an
        outer rollback undoes these mutations even if the scope later exits
        through an exception, and snapshots stay in mutation order relative
        to anything journaled into the parent afterwards.
        """
        if self.closed:
            if self.rolled_back:
                raise PlatformError("transaction was already rolled back")
            return
        self._check_innermost()
        self.closed = True
        stack = self._state._txn_stack()
        enclosing = stack[: stack.index(self)] if self in stack else stack
        open_enclosing = [txn for txn in enclosing if not txn.closed]
        # Each snapshot folds into the innermost enclosing open transaction
        # whose scope covers its key (entries outside every enclosing scope
        # are committed for good — that is what region isolation means).  A
        # folded snapshot is at least as old as anything the target would
        # capture for the same key, so when the target has already seen the
        # key its own (older or equal) snapshot suffices and the entry is
        # dropped; otherwise marking it seen keeps the journal
        # first-touch-only.
        for entry in self._undo:
            kind, name = entry[0], entry[1]
            for txn in reversed(open_enclosing):
                if kind == "tile":
                    if txn.covers_tile(name):
                        if name not in txn._seen_tiles:
                            txn._seen_tiles.add(name)
                            txn._undo.append(entry)
                        break
                elif txn.covers_link(name):
                    if name not in txn._seen_links:
                        txn._seen_links.add(name)
                        txn._undo.append(entry)
                    break
        self._undo = []

    def rollback(self) -> None:
        """Undo every mutation performed inside the transaction."""
        if self.closed:
            if self.rolled_back:
                return
            raise PlatformError("transaction was already committed")
        self._check_innermost()
        state = self._state
        for entry in reversed(self._undo):
            if entry[0] == "tile":
                _, name, occupants, slots, memory, cycles = entry
                _restore(state._tile_occupants, name, occupants)
                _restore(state._used_slots, name, slots)
                _restore(state._used_memory, name, memory)
                _restore(state._used_cycles, name, cycles)
            else:
                _, name, allocations, load = entry
                _restore(state._link_allocations, name, allocations)
                _restore(state._link_load, name, load)
        self._undo.clear()
        self.closed = True
        self.rolled_back = True


def _restore(target: dict, key: str, value) -> None:
    """Put a snapshot value back (``None`` means the key did not exist)."""
    if value is None:
        target.pop(key, None)
    else:
        target[key] = value


@dataclass
class PlatformState:
    """Mutable allocation bookkeeping on top of an immutable platform."""

    platform: Platform
    _tile_occupants: dict[str, list[ProcessAllocation]] = field(default_factory=dict)
    _link_allocations: dict[str, list[LinkAllocation]] = field(default_factory=dict)
    # Cached aggregates, kept in sync incrementally by every mutation.
    _used_slots: dict[str, int] = field(default_factory=dict, init=False, repr=False)
    _used_memory: dict[str, int] = field(default_factory=dict, init=False, repr=False)
    _used_cycles: dict[str, float] = field(default_factory=dict, init=False, repr=False)
    _link_load: dict[str, float] = field(default_factory=dict, init=False, repr=False)
    # Per-thread transaction stacks (keyed by thread ident): each thread's
    # scopes nest among themselves; threads never journal into each other.
    _transactions: dict[int, list[StateTransaction]] = field(
        default_factory=dict, init=False, repr=False
    )
    #: Optional ownership assertion hook: an object with
    #: ``check_tile(name)`` / ``check_link(name)`` (e.g. a
    #: :class:`~repro.platform.regions.RegionOwnershipGuard`) consulted on
    #: every mutation while armed.  ``None`` (the default) costs nothing.
    ownership_guard: object | None = field(default=None, init=False, repr=False)
    #: Per-region delta journals (:class:`RegionJournal`), keyed by region
    #: name.  Empty until a stateful process executor registers regions via
    #: :meth:`region_journal`, so serial/threaded runs pay nothing.
    region_journals: dict[str, RegionJournal] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        self._rebuild_aggregates()

    def _rebuild_aggregates(self) -> None:
        """Recompute every cached aggregate from the allocation lists."""
        self._used_slots = {
            name: len(allocations) for name, allocations in self._tile_occupants.items()
        }
        self._used_memory = {
            name: sum(a.memory_bytes for a in allocations)
            for name, allocations in self._tile_occupants.items()
        }
        self._used_cycles = {
            name: sum(a.compute_cycles_per_iteration for a in allocations)
            for name, allocations in self._tile_occupants.items()
        }
        self._link_load = {
            name: sum(a.bits_per_s for a in allocations)
            for name, allocations in self._link_allocations.items()
        }

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    @contextmanager
    def transaction(self, scope=None) -> Iterator[StateTransaction]:
        """Open a journaled scope for tentative mutations.

        On normal exit the transaction commits (unless :meth:`~StateTransaction.rollback`
        was called inside the block); on an exception it rolls back and
        re-raises.  Scopes nest: committing an inner transaction folds its
        journal into the enclosing one.

        ``scope`` optionally restricts the transaction to a region: any
        object with ``covers_tile(name)`` / ``covers_link(name)`` (e.g. a
        :class:`~repro.platform.regions.Region`).  Mutations of keys the
        scope does not cover are journaled into an enclosing transaction
        that does cover them, or rejected when none does.

        Stacks are per thread: a transaction opened on a worker thread
        nests inside (and folds into) that thread's enclosing scopes only.
        """
        txn = StateTransaction(self, scope)
        stack = self._txn_stack()
        stack.append(txn)
        try:
            yield txn
        except BaseException:
            if not txn.closed:
                txn.rollback()
            raise
        else:
            if not txn.closed:
                txn.commit()
        finally:
            stack.remove(txn)
            if not stack:
                self._transactions.pop(threading.get_ident(), None)

    def _txn_stack(self) -> list[StateTransaction]:
        """The current thread's transaction stack (created on first use)."""
        return self._transactions.setdefault(threading.get_ident(), [])

    @property
    def in_transaction(self) -> bool:
        """Whether the current thread has at least one open transaction scope."""
        return any(not txn.closed for txn in self._transactions.get(threading.get_ident(), ()))

    def _journal_tile(self, tile_name: str) -> None:
        """Snapshot a tile's entry into the innermost open transaction covering it."""
        if self.ownership_guard is not None:
            self.ownership_guard.check_tile(tile_name)
        any_open = False
        for txn in reversed(self._transactions.get(threading.get_ident(), ())):
            if txn.closed:
                continue
            any_open = True
            if not txn.covers_tile(tile_name):
                continue
            if tile_name in txn._seen_tiles:
                return
            txn._seen_tiles.add(tile_name)
            occupants = self._tile_occupants.get(tile_name)
            txn._undo.append(
                (
                    "tile",
                    tile_name,
                    None if occupants is None else list(occupants),
                    self._used_slots.get(tile_name),
                    self._used_memory.get(tile_name),
                    self._used_cycles.get(tile_name),
                )
            )
            return
        if any_open:
            raise PlatformError(
                f"tile {tile_name!r} is outside the scope of every open transaction; "
                "cross-region allocations need an enclosing transaction that covers them"
            )

    def _journal_link(self, link_name: str) -> None:
        """Snapshot a link's entry into the innermost open transaction covering it."""
        if self.ownership_guard is not None:
            self.ownership_guard.check_link(link_name)
        any_open = False
        for txn in reversed(self._transactions.get(threading.get_ident(), ())):
            if txn.closed:
                continue
            any_open = True
            if not txn.covers_link(link_name):
                continue
            if link_name in txn._seen_links:
                return
            txn._seen_links.add(link_name)
            allocations = self._link_allocations.get(link_name)
            txn._undo.append(
                (
                    "link",
                    link_name,
                    None if allocations is None else list(allocations),
                    self._link_load.get(link_name),
                )
            )
            return
        if any_open:
            raise PlatformError(
                f"link {link_name!r} is outside the scope of every open transaction; "
                "cross-region allocations need an enclosing transaction that covers them"
            )

    # ------------------------------------------------------------------ #
    # Tiles
    # ------------------------------------------------------------------ #
    def occupants(self, tile_name: str) -> tuple[ProcessAllocation, ...]:
        """Processes currently allocated on the tile."""
        self.platform.tile(tile_name)
        return tuple(self._tile_occupants.get(tile_name, ()))

    def used_process_slots(self, tile_name: str) -> int:
        """Number of occupied process slots on the tile (O(1))."""
        self.platform.tile(tile_name)
        return self._used_slots.get(tile_name, 0)

    def free_process_slots(self, tile_name: str) -> int:
        """Number of free process slots on the tile (O(1))."""
        tile = self.platform.tile(tile_name)
        return tile.resources.max_processes - self._used_slots.get(tile_name, 0)

    def used_memory_bytes(self, tile_name: str) -> int:
        """Memory already allocated on the tile (O(1))."""
        self.platform.tile(tile_name)
        return self._used_memory.get(tile_name, 0)

    def free_memory_bytes(self, tile_name: str) -> int:
        """Memory still available on the tile (O(1))."""
        tile = self.platform.tile(tile_name)
        return tile.resources.memory_bytes - self._used_memory.get(tile_name, 0)

    def used_compute_cycles_per_iteration(self, tile_name: str) -> float:
        """Compute cycles per iteration already claimed on the tile (O(1))."""
        self.platform.tile(tile_name)
        return self._used_cycles.get(tile_name, 0.0)

    def can_host(
        self,
        tile_name: str,
        memory_bytes: int = 0,
        compute_cycles_per_iteration: float = 0.0,
        period_cycles: float | None = None,
    ) -> bool:
        """Whether the tile can accept one more process with the given needs."""
        tile = self.platform.tile(tile_name)
        if not tile.is_processing:
            return False
        if tile.resources.max_processes - self._used_slots.get(tile_name, 0) < 1:
            return False
        if memory_bytes > tile.resources.memory_bytes - self._used_memory.get(tile_name, 0):
            return False
        budget = tile.resources.compute_cycles_per_period
        if budget is None:
            budget = period_cycles
        if budget is not None:
            used = self._used_cycles.get(tile_name, 0.0)
            if used + compute_cycles_per_iteration > budget + 1e-9:
                return False
        return True

    def allocate_process(self, allocation: ProcessAllocation) -> None:
        """Commit a process allocation; raises if the tile cannot host it."""
        if not self.can_host(
            allocation.tile,
            allocation.memory_bytes,
            allocation.compute_cycles_per_iteration,
        ):
            raise PlatformError(
                f"tile {allocation.tile!r} cannot host process {allocation.process!r} "
                f"of application {allocation.application!r}"
            )
        tile = allocation.tile
        self._journal_tile(tile)
        self._tile_occupants.setdefault(tile, []).append(allocation)
        self._used_slots[tile] = self._used_slots.get(tile, 0) + 1
        self._used_memory[tile] = self._used_memory.get(tile, 0) + allocation.memory_bytes
        self._used_cycles[tile] = (
            self._used_cycles.get(tile, 0.0) + allocation.compute_cycles_per_iteration
        )

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #
    def link_load_bits_per_s(self, link_name: str) -> float:
        """Throughput currently reserved on the link (O(1))."""
        return self._link_load.get(link_name, 0.0)

    def link_loads(self) -> dict[str, float]:
        """Current reservation per link name (only links with allocations)."""
        return {
            name: self._link_load.get(name, 0.0)
            for name, allocations in self._link_allocations.items()
            if allocations
        }

    def link_loads_view(self) -> Mapping[str, float]:
        """Read-only live view of the per-link reservations.

        Unlike :meth:`link_loads` this does not copy; the view tracks
        subsequent allocations, which is what step-3 routing wants while it
        reserves channels one by one inside a transaction.
        """
        return MappingProxyType(self._link_load)

    def residual_capacity_bits_per_s(self, source: Position, target: Position) -> float:
        """Residual capacity of the directed link ``source -> target``."""
        link = self.platform.noc.link(source, target)
        return link.capacity_bits_per_s - self._link_load.get(link.name, 0.0)

    def allocate_link(self, allocation: LinkAllocation) -> None:
        """Reserve throughput on a link; raises if the capacity would be exceeded."""
        link = self.platform.noc.link_by_name(allocation.link)
        residual = link.capacity_bits_per_s - self._link_load.get(link.name, 0.0)
        if allocation.bits_per_s > residual + 1e-9:
            raise PlatformError(
                f"link {link.name!r} has only {residual:.3g} bit/s left; "
                f"cannot reserve {allocation.bits_per_s:.3g} bit/s"
            )
        self._journal_link(link.name)
        self._link_allocations.setdefault(link.name, []).append(allocation)
        self._link_load[link.name] = self._link_load.get(link.name, 0.0) + allocation.bits_per_s

    # ------------------------------------------------------------------ #
    # Application-level operations
    # ------------------------------------------------------------------ #
    def applications(self) -> tuple[str, ...]:
        """Names of applications with at least one live allocation."""
        names: dict[str, None] = {}
        for allocations in self._tile_occupants.values():
            for allocation in allocations:
                names.setdefault(allocation.application)
        for allocations in self._link_allocations.values():
            for allocation in allocations:
                names.setdefault(allocation.application)
        return tuple(names.keys())

    def release_application(self, application: str) -> int:
        """Release every allocation of the application; returns how many were removed.

        The cached aggregates of every touched tile/link are re-summed from
        the surviving allocations, so incremental totals never drift from the
        ground truth even across long start/stop histories.
        """
        removed = 0
        for tile_name, allocations in list(self._tile_occupants.items()):
            kept = [a for a in allocations if a.application != application]
            if len(kept) == len(allocations):
                continue
            self._journal_tile(tile_name)
            removed += len(allocations) - len(kept)
            self._tile_occupants[tile_name] = kept
            self._used_slots[tile_name] = len(kept)
            self._used_memory[tile_name] = sum(a.memory_bytes for a in kept)
            self._used_cycles[tile_name] = sum(a.compute_cycles_per_iteration for a in kept)
        for link_name, allocations in list(self._link_allocations.items()):
            kept = [a for a in allocations if a.application != application]
            if len(kept) == len(allocations):
                continue
            self._journal_link(link_name)
            removed += len(allocations) - len(kept)
            self._link_allocations[link_name] = kept
            self._link_load[link_name] = sum(a.bits_per_s for a in kept)
        return removed

    def snapshot_scope(self, scope) -> RegionSnapshot:
        """Extract a picklable :class:`RegionSnapshot` of one scope.

        ``scope`` is anything with ``name``, ``tile_names`` and
        ``link_names`` (in practice a
        :class:`~repro.platform.regions.Region`).  Allocation lists are
        copied in their live order, so rebuilding the snapshot reproduces
        the scope fingerprint bit-identically (float aggregate sums depend
        on summation order).
        """
        tile_names = tuple(scope.tile_names)
        link_names = tuple(scope.link_names)
        return RegionSnapshot(
            scope_name=scope.name,
            tile_names=tile_names,
            link_names=link_names,
            fingerprint=self.fingerprint(tile_names, link_names),
            tile_occupants=tuple(
                (name, tuple(self._tile_occupants[name]))
                for name in tile_names
                if self._tile_occupants.get(name)
            ),
            link_allocations=tuple(
                (name, tuple(self._link_allocations[name]))
                for name in link_names
                if self._link_allocations.get(name)
            ),
        )

    # ------------------------------------------------------------------ #
    # Region delta journals (stateful drain protocol)
    # ------------------------------------------------------------------ #
    def region_journal(self, scope, capacity: int = 512) -> RegionJournal:
        """Get or create the delta journal of one region scope.

        Created lazily by the stateful process executor; the journal bases
        itself on the region's *current* fingerprint, so ops appended from
        here on form an unbroken chain from that base.
        """
        journal = self.region_journals.get(scope.name)
        if journal is None:
            tile_names = tuple(scope.tile_names)
            link_names = tuple(scope.link_names)
            journal = RegionJournal(
                scope,
                base_fingerprint=fingerprint_digest(
                    self.fingerprint(tile_names, link_names)
                ),
                capacity=capacity,
            )
            self.region_journals[scope.name] = journal
        return journal

    def journal_mapping_commit(self, application: str, processes, links) -> None:
        """Journal one committed mapping into every journal it touches.

        Called *after* the records were applied to this state; the target
        fingerprint is read from the live aggregates, so it is exactly what
        a worker replaying the op must arrive at.  Regions the mapping does
        not touch get no op (their chains stay short).
        """
        if not self.region_journals:
            return
        for journal in self.region_journals.values():
            if not journal.covers_delta(processes, links):
                continue
            journal.append(
                "commit",
                application,
                journal.filter_delta(application, processes, links),
                fingerprint_digest(
                    self.fingerprint(journal.tile_names, journal.link_names)
                ),
            )

    def journal_release(self, application: str, region_names=None) -> None:
        """Journal an application release into the named regions' journals.

        ``None`` broadcasts to every journal — the safe default when the
        caller does not know which regions hold the application's records
        (replaying a release of an absent application is a no-op that keeps
        the fingerprint chain valid).  Called *after* the release mutated
        this state.
        """
        if not self.region_journals:
            return
        if region_names is None:
            journals = self.region_journals.values()
        else:
            journals = [
                journal
                for name in region_names
                if (journal := self.region_journals.get(name)) is not None
            ]
        for journal in journals:
            journal.append(
                "release",
                application,
                None,
                fingerprint_digest(
                    self.fingerprint(journal.tile_names, journal.link_names)
                ),
            )

    def replay_region_ops(
        self,
        ops,
        tile_names: tuple[str, ...],
        link_names: tuple[str, ...],
        expected_seq: int | None = None,
    ) -> int:
        """Replay a chain of :class:`RegionDeltaOp` onto this (worker-side) state.

        Validates the chain as it goes: sequence numbers must be strictly
        consecutive (a gap or reordering raises before anything is half
        applied *at that op*), and after every op the region fingerprint's
        digest must equal the op's recorded target — any divergence raises
        :class:`~repro.exceptions.PlatformError` so the worker can demand a
        snapshot resync instead of deciding on silently wrong state.
        Returns the seq of the last applied op (``expected_seq - 1``
        when the chain is empty).
        """
        last_seq = (expected_seq - 1) if expected_seq is not None else None
        for op in ops:
            if last_seq is not None and op.seq != last_seq + 1:
                raise PlatformError(
                    f"delta chain broken: expected seq {last_seq + 1}, got "
                    f"{op.seq} (gap or out-of-order op)"
                )
            if op.kind == "commit":
                self.apply_delta(op.delta)
            elif op.kind == "release":
                self.release_application(op.application)
            else:
                raise PlatformError(f"unknown region delta op kind {op.kind!r}")
            achieved = fingerprint_digest(self.fingerprint(tile_names, link_names))
            if achieved != op.target_fingerprint:
                raise PlatformError(
                    f"delta replay diverged at seq {op.seq}: fingerprint mismatch "
                    f"after {op.kind} of {op.application!r}"
                )
            last_seq = op.seq
        return last_seq if last_seq is not None else -1

    def apply_delta(self, delta: AllocationDelta) -> None:
        """Fold one allocation delta into the state, allocation by allocation.

        Runs through the ordinary :meth:`allocate_process` /
        :meth:`allocate_link` path, so every record is re-validated against
        the *current* state and journaled into whatever transaction scope
        the caller holds open — the engine folds worker deltas under a
        region-scoped transaction, which makes a stale or conflicting delta
        roll back cleanly instead of half-applying.
        """
        for allocation in delta.processes:
            self.allocate_process(allocation)
        for allocation in delta.links:
            self.allocate_link(allocation)

    def copy(self) -> "PlatformState":
        """A deep-enough copy for what-if exploration by mappers.

        Prefer :meth:`transaction` for what-if exploration on the live state;
        ``copy`` remains for callers that genuinely need an independent
        snapshot (e.g. replaying a scenario from a checkpoint).
        """
        return PlatformState(
            self.platform,
            {name: list(a) for name, a in self._tile_occupants.items()},
            {name: list(a) for name, a in self._link_allocations.items()},
        )

    # ------------------------------------------------------------------ #
    # Fingerprints
    # ------------------------------------------------------------------ #
    def fingerprint(
        self,
        tile_names: tuple[str, ...] | None = None,
        link_names: tuple[str, ...] | None = None,
    ) -> tuple:
        """A cheap, exact digest of the allocation state of a set of keys.

        Built purely from the O(1) cached aggregates: the per-tile
        (slots, memory, cycles) triples and per-link loads of every key with
        a non-zero aggregate, in the given (deterministic) key order.  Two
        states with equal fingerprints are indistinguishable to the mapper
        over those keys, which is what makes the fingerprint a sound
        memoisation key for :class:`~repro.spatialmapper.cache.MapperCache`.
        Cost is O(occupied keys), independent of allocation-list lengths.

        ``None`` for either argument means all tiles / all links of the
        platform (the global fingerprint); a
        :class:`~repro.platform.regions.Region` supplies its own key subsets
        for per-region fingerprints.
        """
        slots = self._used_slots
        memory = self._used_memory
        cycles = self._used_cycles
        load = self._link_load
        parts: list[tuple] = []
        if tile_names is None:
            tile_names = self.platform.tile_names
        for name in tile_names:
            used = slots.get(name, 0)
            if used:
                parts.append((name, used, memory.get(name, 0), cycles.get(name, 0.0)))
        if link_names is None:
            for link in self.platform.noc.links:
                reserved = load.get(link.name, 0.0)
                if reserved:
                    parts.append((link.name, reserved))
        else:
            for name in link_names:
                reserved = load.get(name, 0.0)
                if reserved:
                    parts.append((name, reserved))
        return tuple(parts)

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def tile_utilisation(self) -> dict[str, float]:
        """Fraction of process slots used per processing tile."""
        utilisation: dict[str, float] = {}
        for tile in self.platform.processing_tiles():
            capacity = tile.resources.max_processes
            utilisation[tile.name] = (
                self._used_slots.get(tile.name, 0) / capacity if capacity else 0.0
            )
        return utilisation

    def occupied_tiles(self) -> tuple[str, ...]:
        """Names of tiles with at least one allocated process."""
        return tuple(
            name for name, allocations in self._tile_occupants.items() if allocations
        )
