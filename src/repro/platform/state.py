"""Run-time allocation state of a platform.

The platform description (:class:`~repro.platform.platform.Platform`) is
immutable; everything that changes while applications start and stop lives in
a :class:`PlatformState`:

* which processes occupy which tile (and how much tile memory they use),
* how much guaranteed throughput is allocated on every NoC link.

The spatial mapper receives the *current* state when an application is
started (this is exactly the run-time information the paper argues a
design-time mapping cannot exploit) and returns the allocations of the new
application; the run-time resource manager then commits or rolls back those
allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PlatformError
from repro.platform.noc import Position
from repro.platform.platform import Platform


@dataclass(frozen=True)
class ProcessAllocation:
    """A process occupying a slot on a tile."""

    application: str
    process: str
    tile: str
    memory_bytes: int = 0
    compute_cycles_per_iteration: float = 0.0


@dataclass(frozen=True)
class LinkAllocation:
    """Guaranteed throughput reserved on a NoC link for one channel."""

    application: str
    channel: str
    link: str
    bits_per_s: float


@dataclass
class PlatformState:
    """Mutable allocation bookkeeping on top of an immutable platform."""

    platform: Platform
    _tile_occupants: dict[str, list[ProcessAllocation]] = field(default_factory=dict)
    _link_allocations: dict[str, list[LinkAllocation]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Tiles
    # ------------------------------------------------------------------ #
    def occupants(self, tile_name: str) -> tuple[ProcessAllocation, ...]:
        """Processes currently allocated on the tile."""
        self.platform.tile(tile_name)
        return tuple(self._tile_occupants.get(tile_name, ()))

    def used_process_slots(self, tile_name: str) -> int:
        """Number of occupied process slots on the tile."""
        return len(self.occupants(tile_name))

    def free_process_slots(self, tile_name: str) -> int:
        """Number of free process slots on the tile."""
        tile = self.platform.tile(tile_name)
        return tile.resources.max_processes - self.used_process_slots(tile_name)

    def used_memory_bytes(self, tile_name: str) -> int:
        """Memory already allocated on the tile."""
        return sum(a.memory_bytes for a in self.occupants(tile_name))

    def free_memory_bytes(self, tile_name: str) -> int:
        """Memory still available on the tile."""
        tile = self.platform.tile(tile_name)
        return tile.resources.memory_bytes - self.used_memory_bytes(tile_name)

    def can_host(
        self,
        tile_name: str,
        memory_bytes: int = 0,
        compute_cycles_per_iteration: float = 0.0,
        period_cycles: float | None = None,
    ) -> bool:
        """Whether the tile can accept one more process with the given needs."""
        tile = self.platform.tile(tile_name)
        if not tile.is_processing:
            return False
        if self.free_process_slots(tile_name) < 1:
            return False
        if memory_bytes > self.free_memory_bytes(tile_name):
            return False
        budget = tile.resources.compute_cycles_per_period
        if budget is None:
            budget = period_cycles
        if budget is not None:
            used = sum(a.compute_cycles_per_iteration for a in self.occupants(tile_name))
            if used + compute_cycles_per_iteration > budget + 1e-9:
                return False
        return True

    def allocate_process(self, allocation: ProcessAllocation) -> None:
        """Commit a process allocation; raises if the tile cannot host it."""
        if not self.can_host(
            allocation.tile,
            allocation.memory_bytes,
            allocation.compute_cycles_per_iteration,
        ):
            raise PlatformError(
                f"tile {allocation.tile!r} cannot host process {allocation.process!r} "
                f"of application {allocation.application!r}"
            )
        self._tile_occupants.setdefault(allocation.tile, []).append(allocation)

    # ------------------------------------------------------------------ #
    # Links
    # ------------------------------------------------------------------ #
    def link_load_bits_per_s(self, link_name: str) -> float:
        """Throughput currently reserved on the link."""
        return sum(a.bits_per_s for a in self._link_allocations.get(link_name, ()))

    def link_loads(self) -> dict[str, float]:
        """Current reservation per link name (only links with a non-zero load)."""
        return {
            name: sum(a.bits_per_s for a in allocations)
            for name, allocations in self._link_allocations.items()
            if allocations
        }

    def residual_capacity_bits_per_s(self, source: Position, target: Position) -> float:
        """Residual capacity of the directed link ``source -> target``."""
        link = self.platform.noc.link(source, target)
        return link.capacity_bits_per_s - self.link_load_bits_per_s(link.name)

    def allocate_link(self, allocation: LinkAllocation) -> None:
        """Reserve throughput on a link; raises if the capacity would be exceeded."""
        link = next(
            (l for l in self.platform.noc.links if l.name == allocation.link), None
        )
        if link is None:
            raise PlatformError(f"unknown link {allocation.link!r}")
        residual = link.capacity_bits_per_s - self.link_load_bits_per_s(link.name)
        if allocation.bits_per_s > residual + 1e-9:
            raise PlatformError(
                f"link {link.name!r} has only {residual:.3g} bit/s left; "
                f"cannot reserve {allocation.bits_per_s:.3g} bit/s"
            )
        self._link_allocations.setdefault(link.name, []).append(allocation)

    # ------------------------------------------------------------------ #
    # Application-level operations
    # ------------------------------------------------------------------ #
    def applications(self) -> tuple[str, ...]:
        """Names of applications with at least one live allocation."""
        names: dict[str, None] = {}
        for allocations in self._tile_occupants.values():
            for allocation in allocations:
                names.setdefault(allocation.application)
        for allocations in self._link_allocations.values():
            for allocation in allocations:
                names.setdefault(allocation.application)
        return tuple(names.keys())

    def release_application(self, application: str) -> int:
        """Release every allocation of the application; returns how many were removed."""
        removed = 0
        for tile_name, allocations in list(self._tile_occupants.items()):
            kept = [a for a in allocations if a.application != application]
            removed += len(allocations) - len(kept)
            self._tile_occupants[tile_name] = kept
        for link_name, allocations in list(self._link_allocations.items()):
            kept = [a for a in allocations if a.application != application]
            removed += len(allocations) - len(kept)
            self._link_allocations[link_name] = kept
        return removed

    def copy(self) -> "PlatformState":
        """A deep-enough copy for what-if exploration by mappers."""
        clone = PlatformState(self.platform)
        clone._tile_occupants = {name: list(a) for name, a in self._tile_occupants.items()}
        clone._link_allocations = {name: list(a) for name, a in self._link_allocations.items()}
        return clone

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def tile_utilisation(self) -> dict[str, float]:
        """Fraction of process slots used per processing tile."""
        utilisation: dict[str, float] = {}
        for tile in self.platform.processing_tiles():
            capacity = tile.resources.max_processes
            utilisation[tile.name] = (
                self.used_process_slots(tile.name) / capacity if capacity else 0.0
            )
        return utilisation

    def occupied_tiles(self) -> tuple[str, ...]:
        """Names of tiles with at least one allocated process."""
        return tuple(
            name for name, allocations in self._tile_occupants.items() if allocations
        )
