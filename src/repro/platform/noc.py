"""Network-on-Chip model: routers and guaranteed-throughput links.

The paper assumes a NoC that is predictable with respect to throughput and
latency: routers have buffered inputs, round-robin arbitration on the outputs
and impose a maximum latency of 4 clock cycles per hop (section 4.3).  Links
offer a guaranteed-throughput capacity; the routing step of the mapper only
considers paths whose links all still have enough residual capacity for the
channel being routed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PlatformError
from repro.units import hz_from_mhz

Position = tuple[int, int]


@dataclass(frozen=True)
class Router:
    """A NoC router at a grid position.

    Parameters
    ----------
    position:
        ``(x, y)`` grid coordinates.
    latency_cycles:
        Maximum latency a flit experiences traversing the router (4 clock
        cycles in the paper's NoC).
    frequency_hz:
        Clock frequency of the router, used to convert the hop latency into
        time when router actors are added to the mapped CSDF graph.
    """

    position: Position
    latency_cycles: int = 4
    frequency_hz: float = hz_from_mhz(100)
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if len(self.position) != 2:
            raise PlatformError("router position must be an (x, y) pair")
        if self.latency_cycles < 0:
            raise PlatformError("router latency must be non-negative")
        if self.frequency_hz <= 0:
            raise PlatformError("router frequency must be positive")

    @property
    def name(self) -> str:
        """Canonical router name derived from its position."""
        return f"R{self.position[0]}_{self.position[1]}"

    @property
    def latency_ns(self) -> float:
        """Hop latency in nanoseconds."""
        return self.latency_cycles * 1e9 / self.frequency_hz


@dataclass(frozen=True)
class Link:
    """A directed guaranteed-throughput link between two adjacent routers."""

    source: Position
    target: Position
    capacity_bits_per_s: float

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise PlatformError(f"link {self.source} -> {self.target} is a self-loop")
        if self.capacity_bits_per_s <= 0:
            raise PlatformError("link capacity must be positive")
        sx, sy = self.source
        tx, ty = self.target
        # Precomputed: the capacity-aware route search reads link names in
        # its inner loop, and f-string formatting there showed up in profiles.
        object.__setattr__(self, "_name", f"L{sx}_{sy}__{tx}_{ty}")

    @property
    def name(self) -> str:
        """Canonical link name."""
        return self._name


class NoC:
    """A Network-on-Chip: a set of routers connected by directed links."""

    def __init__(self, name: str = "noc") -> None:
        if not name:
            raise PlatformError("NoC name must be a non-empty string")
        self.name = name
        self._routers: dict[Position, Router] = {}
        self._links: dict[tuple[Position, Position], Link] = {}
        self._links_by_name: dict[str, Link] = {}
        # Outgoing-neighbour adjacency, maintained by add_link: the route
        # searches ask for neighbours in their inner loop, and scanning the
        # whole link table there made every Dijkstra O(links) per visit.
        self._neighbours: dict[Position, list[Position]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_router(self, router: Router) -> Router:
        """Add a router; positions must be unique."""
        if router.position in self._routers:
            raise PlatformError(f"duplicate router at position {router.position}")
        self._routers[router.position] = router
        return router

    def add_link(self, link: Link) -> Link:
        """Add a directed link; both endpoints must exist."""
        for endpoint in (link.source, link.target):
            if endpoint not in self._routers:
                raise PlatformError(f"link endpoint {endpoint} has no router")
        key = (link.source, link.target)
        if key in self._links:
            raise PlatformError(f"duplicate link {link.source} -> {link.target}")
        self._links[key] = link
        self._links_by_name[link.name] = link
        self._neighbours.setdefault(key[0], []).append(key[1])
        return link

    def add_bidirectional_link(self, a: Position, b: Position, capacity_bits_per_s: float) -> None:
        """Add the two directed links between adjacent routers ``a`` and ``b``."""
        self.add_link(Link(a, b, capacity_bits_per_s))
        self.add_link(Link(b, a, capacity_bits_per_s))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def routers(self) -> tuple[Router, ...]:
        """All routers."""
        return tuple(self._routers.values())

    @property
    def links(self) -> tuple[Link, ...]:
        """All directed links."""
        return tuple(self._links.values())

    @property
    def positions(self) -> tuple[Position, ...]:
        """All router positions."""
        return tuple(self._routers.keys())

    def router(self, position: Position) -> Router:
        """Return the router at ``position``."""
        try:
            return self._routers[tuple(position)]
        except KeyError:
            raise PlatformError(f"no router at position {position}") from None

    def has_router(self, position: Position) -> bool:
        """Whether a router exists at ``position``."""
        return tuple(position) in self._routers

    def link(self, source: Position, target: Position) -> Link:
        """Return the directed link from ``source`` to ``target``."""
        try:
            return self._links[(tuple(source), tuple(target))]
        except KeyError:
            raise PlatformError(f"no link from {source} to {target}") from None

    def has_link(self, source: Position, target: Position) -> bool:
        """Whether the directed link exists."""
        return (tuple(source), tuple(target)) in self._links

    def link_by_name(self, name: str) -> Link:
        """Return the link with the given canonical name."""
        try:
            return self._links_by_name[name]
        except KeyError:
            raise PlatformError(f"unknown link {name!r}") from None

    def has_link_named(self, name: str) -> bool:
        """Whether a link with the given canonical name exists."""
        return name in self._links_by_name

    def neighbours(self, position: Position) -> tuple[Position, ...]:
        """Positions reachable from ``position`` over one outgoing link (O(degree))."""
        self.router(position)
        return tuple(self._neighbours.get(tuple(position), ()))

    def links_on_path(self, path: tuple[Position, ...]) -> tuple[Link, ...]:
        """The directed links traversed by a router path."""
        return tuple(self.link(a, b) for a, b in zip(path, path[1:]))

    def __len__(self) -> int:
        return len(self._routers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NoC(name={self.name!r}, routers={len(self._routers)}, links={len(self._links)})"
