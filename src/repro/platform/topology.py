"""NoC topology builders."""

from __future__ import annotations

from repro.exceptions import PlatformError
from repro.platform.noc import NoC, Router
from repro.units import hz_from_mhz


def build_mesh_noc(
    width: int,
    height: int,
    *,
    link_capacity_bits_per_s: float = 1e9,
    router_latency_cycles: int = 4,
    router_frequency_hz: float = hz_from_mhz(100),
    name: str = "mesh",
) -> NoC:
    """Build a 2-D mesh NoC of ``width`` x ``height`` routers.

    Each router is connected to its 4-neighbourhood by a pair of directed
    guaranteed-throughput links of ``link_capacity_bits_per_s`` each.  The
    hypothetical MPSoC of the paper's case study (Figure 2) uses a 3x3 mesh.
    """
    if width < 1 or height < 1:
        raise PlatformError(f"mesh dimensions must be positive, got {width}x{height}")
    noc = NoC(name)
    for y in range(height):
        for x in range(width):
            noc.add_router(
                Router(
                    position=(x, y),
                    latency_cycles=router_latency_cycles,
                    frequency_hz=router_frequency_hz,
                )
            )
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                noc.add_bidirectional_link((x, y), (x + 1, y), link_capacity_bits_per_s)
            if y + 1 < height:
                noc.add_bidirectional_link((x, y), (x, y + 1), link_capacity_bits_per_s)
    return noc


def build_torus_noc(
    width: int,
    height: int,
    *,
    link_capacity_bits_per_s: float = 1e9,
    router_latency_cycles: int = 4,
    router_frequency_hz: float = hz_from_mhz(100),
    name: str = "torus",
) -> NoC:
    """Build a 2-D torus NoC (mesh plus wrap-around links)."""
    if width < 3 or height < 3:
        raise PlatformError("a torus needs at least 3 routers per dimension")
    noc = build_mesh_noc(
        width,
        height,
        link_capacity_bits_per_s=link_capacity_bits_per_s,
        router_latency_cycles=router_latency_cycles,
        router_frequency_hz=router_frequency_hz,
        name=name,
    )
    for y in range(height):
        noc.add_bidirectional_link((width - 1, y), (0, y), link_capacity_bits_per_s)
    for x in range(width):
        noc.add_bidirectional_link((x, height - 1), (x, 0), link_capacity_bits_per_s)
    return noc
