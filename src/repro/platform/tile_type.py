"""Tile types of a heterogeneous platform."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PlatformError
from repro.units import hz_from_mhz


@dataclass(frozen=True)
class TileType:
    """A class of processing element (e.g. ARM, Montium, A/D front-end).

    Implementations of processes are written *per tile type*: the
    implementation library of Table 1 has one ARM and one Montium entry per
    process.  The spatial mapper's step 1 therefore chooses a tile type for
    every process by picking one of its implementations.

    Parameters
    ----------
    name:
        Unique type name (``"ARM"``, ``"MONTIUM"``, ...).
    frequency_hz:
        Clock frequency of tiles of this type, used to convert the WCETs of
        Table 1 (clock cycles) into time.
    is_processing:
        Whether tiles of this type can host mapped processes.  I/O tiles
        (A/D converters, sinks) and unused filler tiles are not processing
        tiles; they can only hold pinned source/sink processes.
    idle_power_mw:
        Static power drawn by a powered-on tile of this type, in milliwatts.
        Used by the extended energy model to reward switching off unused
        tiles (section 3, step 2: "being able to turn off parts of the
        system that are not being used").
    """

    name: str
    frequency_hz: float = hz_from_mhz(100)
    is_processing: bool = True
    idle_power_mw: float = 0.0
    description: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("tile type name must be a non-empty string")
        if self.frequency_hz <= 0:
            raise PlatformError(f"tile type {self.name!r}: frequency must be positive")
        if self.idle_power_mw < 0:
            raise PlatformError(f"tile type {self.name!r}: idle power must be non-negative")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
