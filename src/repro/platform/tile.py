"""Tiles: processing elements plus their network interface."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PlatformError
from repro.platform.resources import ResourceBudget
from repro.platform.tile_type import TileType


@dataclass(frozen=True)
class Tile:
    """A tile of the MPSoC: a processing element attached to a NoC router.

    Parameters
    ----------
    name:
        Unique tile name (``"arm1"``, ``"montium2"``, ``"adc"``...).
    tile_type:
        The tile's type (determines which implementations can run on it).
    position:
        ``(x, y)`` coordinates of the router the tile is attached to.  The
        Manhattan distance between tile positions is the communication-cost
        estimate of mapping step 2.
    resources:
        The tile's resource budget for hosted processes.
    ni_capacity_bits_per_s:
        Injection/ejection capacity of the tile's network interface.  ``None``
        means unconstrained.
    """

    name: str
    tile_type: TileType
    position: tuple[int, int]
    resources: ResourceBudget = field(default_factory=ResourceBudget)
    ni_capacity_bits_per_s: float | None = None
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("tile name must be a non-empty string")
        if len(self.position) != 2:
            raise PlatformError(f"tile {self.name!r}: position must be an (x, y) pair")
        if any(not isinstance(c, int) or c < 0 for c in self.position):
            raise PlatformError(
                f"tile {self.name!r}: position coordinates must be non-negative integers"
            )
        if self.ni_capacity_bits_per_s is not None and self.ni_capacity_bits_per_s <= 0:
            raise PlatformError(f"tile {self.name!r}: NI capacity must be positive")

    @property
    def type_name(self) -> str:
        """Name of the tile's type."""
        return self.tile_type.name

    @property
    def is_processing(self) -> bool:
        """Whether the tile can host mapped processes."""
        return self.tile_type.is_processing and self.resources.max_processes > 0

    @property
    def frequency_hz(self) -> float:
        """Clock frequency of the tile."""
        return self.tile_type.frequency_hz

    @property
    def x(self) -> int:
        """X (column) coordinate of the attached router."""
        return self.position[0]

    @property
    def y(self) -> int:
        """Y (row) coordinate of the attached router."""
        return self.position[1]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}({self.type_name}@{self.position})"
