"""Region sharding of a platform.

Run-time admission only stays cheap on large platforms if independent
admissions do not contend on one global structure.  A
:class:`RegionPartition` splits the mesh into :class:`Region` shards — each a
set of router positions with the tiles attached to them and the NoC links
internal to the region.  Regions give the admission pipeline three things:

* a **transaction scope** — a region implements ``covers_tile`` /
  ``covers_link``, so :meth:`~repro.platform.state.PlatformState.transaction`
  journals only that region's keys and independent admissions commit without
  touching each other's journals;
* a **fingerprint domain** — the per-region aggregate digest
  (:meth:`Region.fingerprint`) keys the mapper result cache, so an admission
  into one region does not invalidate cached mappings for the others;
* **fill metrics** — :class:`RegionView` summarises a region's occupancy for
  the region-selection stage (least-filled-first placement).

Links whose endpoints lie in different regions are *cross-region links*.
They belong to no region's scope: a mapping that needs one must be committed
under a global (unscoped) transaction, which keeps cross-region traffic an
explicit, deliberate exception rather than a silent journal leak.

For *parallel* draining (one worker thread per region), the module adds:

* :class:`RegionLocks` — one lock per region plus two lanes on top: a
  **subset lane** that acquires only the sorted subset of named regions'
  locks (the inter-region admission discipline: a two-region admission
  excludes exactly those two regions' workers) and the **global lane**,
  which is simply the subset lane over every region.  Both acquire in one
  deterministic (sorted-name) global order, so any mix of lanes is
  deadlock-free;
* :class:`RegionOwnershipGuard` — an assertion hook for
  :attr:`~repro.platform.state.PlatformState.ownership_guard`: while armed,
  any mutation of a tile/link whose owning region's lock is *not* held by
  the mutating thread raises, turning the locking discipline from a
  convention into an invariant.  A cross-region link is owned by its two
  endpoint regions together: mutating it requires holding *both* their
  locks (which the subset and global lanes provide).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.exceptions import PlatformError
from repro.platform.noc import Position
from repro.platform.platform import Platform
from repro.platform.state import PlatformState, RegionSnapshot


def current_worker_name() -> str:
    """``process/thread`` label of the caller, for ownership diagnostics.

    Executor workers carry meaningful names (``region-worker-<lane>``
    threads, ``region-drain-<n>`` processes), so a guard violation can name
    the executor lane that raced instead of a raw thread ident.
    """
    return f"{multiprocessing.current_process().name}/{threading.current_thread().name}"


class Region:
    """One shard of a platform: a set of router positions and what sits on them.

    Tiles are listed in platform declaration order and internal links in NoC
    declaration order, so per-region iteration (and therefore region-scoped
    mapping) is deterministic.
    """

    def __init__(self, name: str, platform: Platform, positions: Iterable[Position]) -> None:
        if not name:
            raise PlatformError("region name must be a non-empty string")
        self.name = name
        self.platform = platform
        self.positions = frozenset(tuple(p) for p in positions)
        for position in self.positions:
            if not platform.noc.has_router(position):
                raise PlatformError(
                    f"region {name!r} names position {position} but the NoC has no router there"
                )
        self.tile_names: tuple[str, ...] = tuple(
            tile.name for tile in platform.tiles if tile.position in self.positions
        )
        self._tile_set = frozenset(self.tile_names)
        self.link_names: tuple[str, ...] = tuple(
            link.name
            for link in platform.noc.links
            if link.source in self.positions and link.target in self.positions
        )
        self._link_set = frozenset(self.link_names)

    # -- transaction-scope protocol ------------------------------------- #
    def covers_tile(self, tile_name: str) -> bool:
        """Whether the tile belongs to this region."""
        return tile_name in self._tile_set

    def covers_link(self, link_name: str) -> bool:
        """Whether the link is internal to this region."""
        return link_name in self._link_set

    # -- derived views --------------------------------------------------- #
    def processing_tile_names(self) -> tuple[str, ...]:
        """Names of the region's tiles that can host mapped processes."""
        return tuple(
            name for name in self.tile_names if self.platform.tile(name).is_processing
        )

    def fingerprint(self, state: PlatformState) -> tuple:
        """Digest of the region's allocation state (see :meth:`PlatformState.fingerprint`)."""
        return state.fingerprint(self.tile_names, self.link_names)

    def snapshot(self, state: PlatformState) -> RegionSnapshot:
        """Picklable extract of this region's allocations (and fingerprint).

        The snapshot-out half of the process drain protocol; see
        :meth:`PlatformState.snapshot_scope`.
        """
        return state.snapshot_scope(self)

    def view(self, state: PlatformState) -> "RegionView":
        """Aggregate fill metrics of this region over the given state."""
        return RegionView(state, self)

    def __contains__(self, tile_name: str) -> bool:
        return tile_name in self._tile_set

    def __len__(self) -> int:
        return len(self.tile_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Region(name={self.name!r}, tiles={len(self.tile_names)}, "
            f"links={len(self.link_names)})"
        )


class RegionView:
    """Per-region ``PlatformState`` aggregate view: fill metrics for one region.

    All queries run over the state's O(1) cached aggregates, so a view is
    cheap enough to build per admission (region selection builds one per
    candidate region).
    """

    def __init__(self, state: PlatformState, region: Region) -> None:
        self.state = state
        self.region = region

    def used_process_slots(self) -> int:
        """Occupied process slots across the region's processing tiles."""
        return sum(
            self.state.used_process_slots(name)
            for name in self.region.processing_tile_names()
        )

    def capacity_process_slots(self) -> int:
        """Total process slots of the region's processing tiles."""
        return sum(
            self.region.platform.tile(name).resources.max_processes
            for name in self.region.processing_tile_names()
        )

    def free_process_slots(self) -> int:
        """Free process slots across the region's processing tiles."""
        return self.capacity_process_slots() - self.used_process_slots()

    def used_memory_bytes(self) -> int:
        """Memory allocated across the region's processing tiles."""
        return sum(
            self.state.used_memory_bytes(name)
            for name in self.region.processing_tile_names()
        )

    def capacity_memory_bytes(self) -> int:
        """Total memory of the region's processing tiles."""
        return sum(
            self.region.platform.tile(name).resources.memory_bytes
            for name in self.region.processing_tile_names()
        )

    def link_load_fraction(self) -> float:
        """Mean utilised fraction of the region's internal link capacity."""
        total_capacity = 0.0
        total_load = 0.0
        for name in self.region.link_names:
            link = self.region.platform.noc.link_by_name(name)
            total_capacity += link.capacity_bits_per_s
            total_load += self.state.link_load_bits_per_s(name)
        return total_load / total_capacity if total_capacity else 0.0

    def fill_level(self) -> float:
        """Dominant fill fraction of the region (slots, memory or links).

        The maximum of the three utilisation fractions: the binding resource
        is what decides whether another application still fits.
        """
        slot_capacity = self.capacity_process_slots()
        slot_fill = self.used_process_slots() / slot_capacity if slot_capacity else 1.0
        memory_capacity = self.capacity_memory_bytes()
        memory_fill = (
            self.used_memory_bytes() / memory_capacity if memory_capacity else 0.0
        )
        return max(slot_fill, memory_fill, self.link_load_fraction())

    def fingerprint(self) -> tuple:
        """Digest of the region's allocation state."""
        return self.region.fingerprint(self.state)


class RegionPartition:
    """A disjoint decomposition of a platform's router positions into regions.

    Every tile belongs to exactly one region.  Router positions may be left
    unassigned only when no tile sits on them (their links then count as
    cross-region links).
    """

    def __init__(self, platform: Platform, regions: Iterable[Region]) -> None:
        self.platform = platform
        self.regions: tuple[Region, ...] = tuple(regions)
        if not self.regions:
            raise PlatformError("a region partition needs at least one region")
        self._by_name: dict[str, Region] = {}
        self._region_of_position: dict[Position, Region] = {}
        for region in self.regions:
            if region.name in self._by_name:
                raise PlatformError(f"duplicate region name {region.name!r}")
            self._by_name[region.name] = region
            for position in region.positions:
                if position in self._region_of_position:
                    raise PlatformError(
                        f"position {position} belongs to regions "
                        f"{self._region_of_position[position].name!r} and {region.name!r}"
                    )
                self._region_of_position[position] = region
        self._region_of_tile: dict[str, Region] = {}
        for tile in platform.tiles:
            region = self._region_of_position.get(tile.position)
            if region is None:
                raise PlatformError(
                    f"tile {tile.name!r} at {tile.position} belongs to no region"
                )
            self._region_of_tile[tile.name] = region

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def single(cls, platform: Platform, name: str = "all") -> "RegionPartition":
        """The trivial partition: one region spanning the whole platform."""
        positions = platform.noc.positions
        return cls(platform, [Region(name, platform, positions)])

    @classmethod
    def grid(cls, platform: Platform, columns: int, rows: int) -> "RegionPartition":
        """Partition the mesh into a ``columns`` x ``rows`` grid of rectangles.

        The bounding box of the router positions is split into equal bands
        per axis; every router position lands in exactly one rectangle.
        Regions are named ``r{column}_{row}``.
        """
        if columns < 1 or rows < 1:
            raise PlatformError("grid partition needs at least 1 column and 1 row")
        positions = platform.noc.positions
        if not positions:
            raise PlatformError("cannot partition a platform with no routers")
        min_x = min(p[0] for p in positions)
        max_x = max(p[0] for p in positions)
        min_y = min(p[1] for p in positions)
        max_y = max(p[1] for p in positions)
        width = max_x - min_x + 1
        height = max_y - min_y + 1
        if columns > width or rows > height:
            raise PlatformError(
                f"cannot split a {width}x{height} position grid into {columns}x{rows} regions"
            )
        buckets: dict[tuple[int, int], list[Position]] = {}
        for position in positions:
            column = (position[0] - min_x) * columns // width
            row = (position[1] - min_y) * rows // height
            buckets.setdefault((column, row), []).append(position)
        regions = [
            Region(f"r{column}_{row}", platform, bucket)
            for (column, row), bucket in sorted(buckets.items())
        ]
        return cls(platform, regions)

    # -- access ----------------------------------------------------------- #
    def region(self, name: str) -> Region:
        """The region with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise PlatformError(f"unknown region {name!r}") from None

    def region_of_tile(self, tile_name: str) -> Region:
        """The region the named tile belongs to."""
        self.platform.tile(tile_name)
        return self._region_of_tile[tile_name]

    def region_of_position(self, position: Position) -> Region | None:
        """The region owning a router position, or ``None`` when unassigned."""
        return self._region_of_position.get(tuple(position))

    def cross_link_names(self) -> tuple[str, ...]:
        """Names of the links whose endpoints lie in different regions."""
        return tuple(
            link.name
            for link in self.platform.noc.links
            if self._region_of_position.get(link.source)
            is not self._region_of_position.get(link.target)
            or self._region_of_position.get(link.source) is None
        )

    def views(self, state: PlatformState) -> dict[str, RegionView]:
        """Fill-metric views of every region over the given state."""
        return {region.name: region.view(state) for region in self.regions}

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegionPartition(platform={self.platform.name!r}, "
            f"regions={[r.name for r in self.regions]})"
        )


#: Lane name of the serialized global lane (cross-region / unpinned work).
GLOBAL_LANE = "__global__"


class RegionLocks:
    """Per-region locks plus subset and global lanes over one partition.

    Workers draining independent regions each hold their region's lock.
    Work that touches a known *set* of regions (an inter-region admission
    with its corridor) runs in a **subset lane**, which acquires exactly
    those regions' locks in deterministic (sorted-name) order — excluding
    only the touched regions' workers.  Work that may touch anything
    (unrestricted fallback mappings) runs in the **global lane**, the
    subset lane over every region.  Because every lane acquires along the
    same fixed global order, any mix of concurrent lanes is deadlock-free.

    Lock holders are tracked by thread ident so the
    :class:`RegionOwnershipGuard` can *assert* ownership, not just rely on
    it.  Locks are reentrant within a thread.  Per-region wait and hold
    times are accumulated (cheaply, under a dedicated stats lock) for the
    engine's telemetry.
    """

    def __init__(self, partition: RegionPartition) -> None:
        self.partition = partition
        self._region_names: tuple[str, ...] = tuple(
            sorted(region.name for region in partition)
        )
        self._locks: dict[str, threading.RLock] = {
            name: threading.RLock() for name in self._region_names
        }
        self._holders: dict[str, list[int]] = {name: [] for name in self._region_names}
        #: Parallel to ``_holders``: the human-readable ``process/thread``
        #: label of each holder, for ownership-violation diagnostics.
        self._holder_names: dict[str, list[str]] = {name: [] for name in self._region_names}
        self._stats_lock = threading.Lock()
        self._wait_s: dict[str, float] = {name: 0.0 for name in self._region_names}
        self._hold_s: dict[str, float] = {name: 0.0 for name in self._region_names}
        self._acquisitions: dict[str, int] = {name: 0 for name in self._region_names}

    @contextmanager
    def region_lane(self, region_name: str) -> Iterator[None]:
        """Hold one region's lock (the per-region worker discipline)."""
        with self.subset_lane((region_name,)):
            yield

    @contextmanager
    def subset_lane(self, region_names: Iterable[str]) -> Iterator[None]:
        """Hold exactly the named regions' locks (inter-region work).

        Acquisition follows the partition-wide sorted-name order regardless
        of the order the caller names the regions in, so concurrent subset
        lanes (and the global lane, which is one) can never deadlock.
        """
        ordered = tuple(sorted(set(region_names)))
        if not ordered:
            raise PlatformError("a lock subset needs at least one region")
        for name in ordered:
            if name not in self._locks:
                raise PlatformError(f"unknown region {name!r}")
        ident = threading.get_ident()
        label = current_worker_name()
        acquired: list[str] = []
        held_from = time.perf_counter()
        try:
            for name in ordered:
                # Each acquire is timed on its own so contention is charged
                # to the lock that actually blocked, not the whole subset.
                started = time.perf_counter()
                self._locks[name].acquire()
                waited = time.perf_counter() - started
                self._holders[name].append(ident)
                self._holder_names[name].append(label)
                acquired.append(name)
                self._note_wait((name,), waited)
            held_from = time.perf_counter()
            yield
        finally:
            if len(acquired) == len(ordered):
                self._note_hold(ordered, time.perf_counter() - held_from)
            for name in reversed(acquired):
                self._holders[name].pop()
                self._holder_names[name].pop()
                self._locks[name].release()

    @contextmanager
    def global_lane(self) -> Iterator[None]:
        """Hold *every* region lock (serialized whole-platform work)."""
        with self.subset_lane(self._region_names):
            yield

    def _note_wait(self, names: tuple[str, ...], seconds: float) -> None:
        """Accumulate time-to-acquire (one acquisition per named region)."""
        with self._stats_lock:
            for name in names:
                self._wait_s[name] += seconds
                self._acquisitions[name] += 1

    def _note_hold(self, names: tuple[str, ...], seconds: float) -> None:
        """Accumulate time the lane held the named regions' locks."""
        with self._stats_lock:
            for name in names:
                self._hold_s[name] += seconds

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-region acquisition counts and cumulative wait/hold seconds."""
        with self._stats_lock:
            return {
                name: {
                    "acquisitions": self._acquisitions[name],
                    "wait_s": self._wait_s[name],
                    "hold_s": self._hold_s[name],
                }
                for name in self._region_names
            }

    def publish_metrics(
        self, registry, stats: dict[str, dict[str, float]] | None = None
    ) -> None:
        """Publish per-region lock timings (default: lifetime totals) as counters.

        Callers that account per-run deltas (the workload engine) pass the
        delta dict in :meth:`stats` shape.
        """
        for region, values in (stats if stats is not None else self.stats()).items():
            registry.count(f"locks.wait_s[region={region}]", float(values["wait_s"]))
            registry.count(f"locks.hold_s[region={region}]", float(values["hold_s"]))
            registry.count(
                f"locks.acquisitions[region={region}]", float(values["acquisitions"])
            )

    def holds(self, region_name: str) -> bool:
        """Whether the current thread holds the named region's lock."""
        return threading.get_ident() in self._holders.get(region_name, ())

    def holder_names(self, region_name: str) -> tuple[str, ...]:
        """``process/thread`` labels currently holding the region's lock."""
        return tuple(self._holder_names.get(region_name, ()))

    def holds_all(self) -> bool:
        """Whether the current thread holds the global lane (every lock)."""
        ident = threading.get_ident()
        return all(ident in holders for holders in self._holders.values())


class RegionOwnershipGuard:
    """Mutation-time assertion that region locks are actually held.

    Installed as :attr:`~repro.platform.state.PlatformState.ownership_guard`
    while a parallel drain is in flight: every ``allocate_*`` / release on
    the state first resolves the touched tile/link to its owning region(s)
    and checks the mutating thread holds the matching lock(s).  A
    cross-region link is owned by its two endpoint regions *together*:
    mutating it requires holding both their locks — which a subset lane
    over the touched regions (or the global lane) provides.  Links with an
    endpoint on an unassigned router position belong to no region pair and
    still require the global lane.  A violation raises
    :class:`~repro.exceptions.PlatformError` — racing writers fail loudly
    instead of corrupting journals.
    """

    def __init__(self, partition: RegionPartition, locks: RegionLocks) -> None:
        self.partition = partition
        self.locks = locks
        #: Link name -> owning region names (one for internal links, the
        #: endpoint pair for cross-region links), or ``None`` when an
        #: endpoint position belongs to no region (global lane required).
        self._link_owners: dict[str, tuple[str, ...] | None] = {}
        for region in partition:
            for link_name in region.link_names:
                self._link_owners[link_name] = (region.name,)
        for link_name in partition.cross_link_names():
            link = partition.platform.noc.link_by_name(link_name)
            source = partition.region_of_position(link.source)
            target = partition.region_of_position(link.target)
            if source is None or target is None:
                self._link_owners[link_name] = None
            else:
                self._link_owners[link_name] = (source.name, target.name)

    def _held_by(self, region_name: str) -> str:
        """Who currently holds a region's lock, for violation messages."""
        holders = self.locks.holder_names(region_name)
        return f"held by {', '.join(holders)}" if holders else "currently unheld"

    def check_tile(self, tile_name: str) -> None:
        """Raise unless the current thread owns the tile's region."""
        region = self.partition.region_of_tile(tile_name)
        if not self.locks.holds(region.name):
            raise PlatformError(
                f"tile {tile_name!r} belongs to region {region.name!r} but the "
                f"mutating worker {current_worker_name()!r} does not hold its "
                f"lock ({self._held_by(region.name)})"
            )

    def check_link(self, link_name: str) -> None:
        """Raise unless the current thread owns the link's region(s)."""
        owners = self._link_owners.get(link_name)
        if owners is None:
            if not self.locks.holds_all():
                raise PlatformError(
                    f"link {link_name!r} touches an unassigned router position; "
                    f"mutating it (from worker {current_worker_name()!r}) "
                    "requires the global lane (all region locks)"
                )
            return
        for owner in owners:
            if not self.locks.holds(owner):
                raise PlatformError(
                    f"link {link_name!r} is owned by region(s) {owners!r} but the "
                    f"mutating worker {current_worker_name()!r} does not hold its "
                    f"lock ({owner!r} {self._held_by(owner)})"
                )
