"""Plain-text rendering of models (platforms, KPNs, mappings, CSDF graphs)."""

from __future__ import annotations

from repro.csdf.graph import CSDFGraph
from repro.kpn.graph import KPNGraph
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform


def render_platform(platform: Platform) -> str:
    """Render the tile grid of a platform (one cell per router position)."""
    positions = platform.noc.positions
    width = max(x for x, _ in positions) + 1
    height = max(y for _, y in positions) + 1
    cells: dict[tuple[int, int], str] = {}
    for tile in platform.tiles:
        label = f"{tile.name}[{tile.type_name}]"
        cells[tile.position] = label
    column_width = max([len(c) for c in cells.values()] + [4]) + 2
    lines = [f"Platform {platform.name!r} ({width}x{height} mesh, {len(platform)} tiles)"]
    for y in range(height):
        row = []
        for x in range(width):
            row.append(cells.get((x, y), "(router)").center(column_width))
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_kpn(kpn: KPNGraph) -> str:
    """Render a KPN as a list of processes and channels."""
    lines = [f"KPN {kpn.name!r}: {len(kpn)} processes, {len(kpn.channels)} channels"]
    for process in kpn.processes:
        pinned = f" (pinned to {process.pinned_tile})" if process.is_pinned else ""
        lines.append(f"  process {process.name} [{process.kind.value}]{pinned}")
    for channel in kpn.channels:
        control = " [control]" if channel.is_control else ""
        lines.append(
            f"  channel {channel.name}: {channel.source} -> {channel.target} "
            f"({channel.tokens_per_iteration:g} tokens/iter){control}"
        )
    return "\n".join(lines)


def render_mapping(mapping: Mapping, platform: Platform | None = None) -> str:
    """Render a mapping: per-process tile (and implementation) plus per-channel route."""
    lines = [f"Mapping of application {mapping.application!r}"]
    for assignment in mapping.assignments:
        implementation = (
            assignment.implementation.qualified_name if assignment.implementation else "(pinned)"
        )
        lines.append(f"  {assignment.process} -> {assignment.tile}  [{implementation}]")
    for route in mapping.routes:
        hops = " -> ".join(str(p) for p in route.path)
        lines.append(
            f"  channel {route.channel}: {route.source_tile} => {route.target_tile} "
            f"({route.hops} hops: {hops})"
        )
    if mapping.buffer_capacities:
        for channel, capacity in mapping.buffer_capacities.items():
            lines.append(f"  buffer B[{channel}] = {capacity} tokens")
    return "\n".join(lines)


def render_csdf(graph: CSDFGraph, *, show_rates: bool = False) -> str:
    """Render a CSDF graph actor-by-actor (Figure 3 style, in text)."""
    lines = [f"CSDF graph {graph.name!r}: {len(graph)} actors, {len(graph.edges)} edges"]
    for actor in graph.actors:
        wcet = actor.wcet_cycles.compact_str() if actor.wcet_cycles else "-"
        tile = f" on {actor.tile}" if actor.tile else ""
        lines.append(f"  actor {actor.name} [{actor.role}]{tile} wcet={wcet}")
    for edge in graph.edges:
        capacity = f", capacity={edge.capacity}" if edge.capacity is not None else ""
        rates = ""
        if show_rates:
            rates = (
                f" prod={edge.production_rates.compact_str()}"
                f" cons={edge.consumption_rates.compact_str()}"
            )
        lines.append(f"  edge {edge.name}: {edge.source} -> {edge.target}{rates}{capacity}")
    return "\n".join(lines)
