"""Energy breakdown of a mapping.

The mapper's objective is a single scalar (nJ per graph iteration); for
reports and for tuning the cost model it is useful to see where that energy
goes: per process (computation), per channel (NoC traffic or local memory
traffic) and per tile (which tiles must stay powered).  The breakdown uses
exactly the same cost model as the mapper, so the totals match
:func:`repro.mapping.cost.mapping_energy_nj` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.cost import CostModel, _endpoint_tiles
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.routing import manhattan_distance
from repro.reporting.tables import format_table


@dataclass
class EnergyBreakdown:
    """Per-process, per-channel and per-tile energy of one mapping."""

    application: str
    computation_nj: dict[str, float] = field(default_factory=dict)
    communication_nj: dict[str, float] = field(default_factory=dict)
    activation_nj: dict[str, float] = field(default_factory=dict)

    @property
    def total_computation_nj(self) -> float:
        """Total computation energy per iteration."""
        return sum(self.computation_nj.values())

    @property
    def total_communication_nj(self) -> float:
        """Total communication energy per iteration."""
        return sum(self.communication_nj.values())

    @property
    def total_activation_nj(self) -> float:
        """Total tile-activation energy per iteration."""
        return sum(self.activation_nj.values())

    @property
    def total_nj(self) -> float:
        """Grand total, equal to :func:`repro.mapping.cost.mapping_energy_nj`."""
        return (
            self.total_computation_nj
            + self.total_communication_nj
            + self.total_activation_nj
        )

    def as_table(self) -> str:
        """Render the breakdown as an ASCII table."""
        rows: list[tuple] = []
        for process, energy in sorted(self.computation_nj.items()):
            rows.append(("computation", process, f"{energy:.2f}"))
        for channel, energy in sorted(self.communication_nj.items()):
            rows.append(("communication", channel, f"{energy:.2f}"))
        for tile, energy in sorted(self.activation_nj.items()):
            rows.append(("activation", tile, f"{energy:.2f}"))
        rows.append(("total", "", f"{self.total_nj:.2f}"))
        return format_table(
            ["Contribution", "Entity", "Energy [nJ/iteration]"],
            rows,
            title=f"Energy breakdown of {self.application!r}",
            align_right=(2,),
        )


def energy_breakdown(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    cost_model: CostModel | None = None,
) -> EnergyBreakdown:
    """Compute the per-entity energy breakdown of a (possibly partial) mapping."""
    model = cost_model or CostModel()
    breakdown = EnergyBreakdown(application=mapping.application)

    for assignment in mapping.assignments:
        if assignment.implementation is None:
            continue
        breakdown.computation_nj[assignment.process] = assignment.energy_nj_per_iteration

    for channel in als.kpn.data_channels():
        endpoints = _endpoint_tiles(mapping, als, channel)
        if endpoints is None:
            continue
        source_tile, target_tile = endpoints
        if mapping.is_routed(channel.name):
            hops = mapping.route(channel.name).hops
        else:
            hops = manhattan_distance(
                platform.tile(source_tile).position, platform.tile(target_tile).position
            )
        bits = channel.bits_per_iteration
        if hops == 0:
            energy = bits * model.local_channel_energy_per_bit_nj
        else:
            energy = bits * hops * model.energy_per_bit_per_hop_nj
        breakdown.communication_nj[channel.name] = energy

    for tile_name in mapping.used_tiles():
        breakdown.activation_nj[tile_name] = model.tile_activation_energy_nj

    return breakdown
