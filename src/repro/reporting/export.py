"""Export of models and results to plain dictionaries, JSON and Graphviz DOT.

A run-time resource manager is rarely the last consumer of a mapping: traces
are logged, visualised and compared across runs.  This module provides
loss-conscious exports of the main artefacts:

* :func:`mapping_to_dict` / :func:`result_to_dict` — a JSON-serialisable view
  of a spatial mapping and of a full :class:`~repro.mapping.result.MappingResult`;
* :func:`platform_to_dict` — the platform description (tiles, NoC);
* :func:`kpn_to_dot` / :func:`csdf_to_dot` / :func:`mapping_to_dot` — Graphviz
  DOT documents for the application graph, the mapped CSDF graph (Figure 3
  style) and the platform with the mapping overlaid;
* :func:`save_json` — write any of the dictionary exports to a file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.csdf.graph import CSDFGraph
from repro.kpn.graph import KPNGraph
from repro.mapping.mapping import Mapping
from repro.mapping.result import MappingResult
from repro.platform.platform import Platform


# --------------------------------------------------------------------------- #
# Dictionary exports
# --------------------------------------------------------------------------- #
def mapping_to_dict(mapping: Mapping) -> dict:
    """A JSON-serialisable view of a spatial mapping."""
    return {
        "application": mapping.application,
        "assignments": [
            {
                "process": assignment.process,
                "tile": assignment.tile,
                "implementation": (
                    assignment.implementation.qualified_name
                    if assignment.implementation
                    else None
                ),
                "energy_nj_per_iteration": assignment.energy_nj_per_iteration,
            }
            for assignment in mapping.assignments
        ],
        "routes": [
            {
                "channel": route.channel,
                "source_tile": route.source_tile,
                "target_tile": route.target_tile,
                "path": [list(position) for position in route.path],
                "hops": route.hops,
                "required_bits_per_s": route.required_bits_per_s,
            }
            for route in mapping.routes
        ],
        "buffer_capacities": mapping.buffer_capacities,
    }


def result_to_dict(result: MappingResult) -> dict:
    """A JSON-serialisable view of a full mapping result."""
    data = {
        "status": result.status.value,
        "energy_nj_per_iteration": result.energy_nj_per_iteration,
        "manhattan_cost": result.manhattan_cost,
        "iterations": result.iterations,
        "runtime_s": result.runtime_s,
        "diagnostics": list(result.diagnostics),
        "mapping": mapping_to_dict(result.mapping),
    }
    if result.feasibility is not None:
        data["feasibility"] = {
            "required_period_ns": result.feasibility.required_period_ns,
            "achieved_period_ns": result.feasibility.achieved_period_ns,
            "latency_ns": result.feasibility.latency_ns,
            "satisfied": result.feasibility.satisfied,
            "reason": result.feasibility.reason,
            "buffer_capacities": dict(result.feasibility.buffer_capacities),
        }
    return data


def platform_to_dict(platform: Platform) -> dict:
    """A JSON-serialisable view of a platform description."""
    return {
        "name": platform.name,
        "tiles": [
            {
                "name": tile.name,
                "type": tile.type_name,
                "position": list(tile.position),
                "frequency_hz": tile.frequency_hz,
                "is_processing": tile.is_processing,
                "max_processes": tile.resources.max_processes,
                "memory_bytes": tile.resources.memory_bytes,
            }
            for tile in platform.tiles
        ],
        "noc": {
            "routers": [
                {
                    "position": list(router.position),
                    "latency_cycles": router.latency_cycles,
                    "frequency_hz": router.frequency_hz,
                }
                for router in platform.noc.routers
            ],
            "links": [
                {
                    "source": list(link.source),
                    "target": list(link.target),
                    "capacity_bits_per_s": link.capacity_bits_per_s,
                }
                for link in platform.noc.links
            ],
        },
    }


def save_json(data: dict, path: str | Path, *, indent: int = 2) -> Path:
    """Write a dictionary export to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(data, indent=indent, sort_keys=True))
    return path


# --------------------------------------------------------------------------- #
# Graphviz DOT exports
# --------------------------------------------------------------------------- #
def _dot_escape(label: str) -> str:
    return label.replace('"', r"\"")


def kpn_to_dot(kpn: KPNGraph) -> str:
    """A Graphviz DOT document of an application's KPN (Figure 1 style)."""
    lines = [f'digraph "{_dot_escape(kpn.name)}" {{', "  rankdir=LR;"]
    for process in kpn.processes:
        shape = {"source": "invhouse", "sink": "house", "control": "diamond"}.get(
            process.kind.value, "box"
        )
        lines.append(f'  "{_dot_escape(process.name)}" [shape={shape}];')
    for channel in kpn.channels:
        style = " style=dashed" if channel.is_control else ""
        label = f"{channel.tokens_per_iteration:g}"
        lines.append(
            f'  "{_dot_escape(channel.source)}" -> "{_dot_escape(channel.target)}" '
            f'[label="{label}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def csdf_to_dot(graph: CSDFGraph) -> str:
    """A Graphviz DOT document of a CSDF graph (Figure 3 style)."""
    lines = [f'digraph "{_dot_escape(graph.name)}" {{', "  rankdir=LR;"]
    for actor in graph.actors:
        wcet = actor.wcet_cycles.compact_str() if actor.wcet_cycles else ""
        label = _dot_escape(f"{actor.name}\n{wcet}")
        shape = "circle" if actor.role == "router" else "box"
        lines.append(f'  "{_dot_escape(actor.name)}" [shape={shape} label="{label}"];')
    for edge in graph.edges:
        capacity = f" B={edge.capacity}" if edge.capacity is not None else ""
        lines.append(
            f'  "{_dot_escape(edge.source)}" -> "{_dot_escape(edge.target)}" '
            f'[label="{_dot_escape(capacity.strip())}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def mapping_to_dot(mapping: Mapping, platform: Platform) -> str:
    """A Graphviz DOT document of the platform with the mapping overlaid.

    Tiles become cluster-style nodes labelled with the processes mapped onto
    them; routed channels become edges between the tiles they connect,
    labelled with their hop count.
    """
    lines = [f'digraph "{_dot_escape(mapping.application)}_on_{_dot_escape(platform.name)}" {{']
    lines.append("  node [shape=record];")
    for tile in platform.tiles:
        processes = mapping.processes_on(tile.name)
        payload = "|".join(processes) if processes else "(idle)"
        label = _dot_escape(f"{tile.name} [{tile.type_name}]|{payload}")
        lines.append(f'  "{_dot_escape(tile.name)}" [label="{label}"];')
    for route in mapping.routes:
        lines.append(
            f'  "{_dot_escape(route.source_tile)}" -> "{_dot_escape(route.target_tile)}" '
            f'[label="{route.channel} ({route.hops} hops)"];'
        )
    lines.append("}")
    return "\n".join(lines)
