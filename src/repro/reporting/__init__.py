"""Reporting helpers: ASCII tables, graph rendering and experiment drivers.

The experiment drivers in :mod:`repro.reporting.experiments` regenerate each
table and figure of the paper from the library; the benchmarks and the
examples both call into them, so the numbers printed by
``pytest benchmarks/`` and by ``examples/hiperlan2_case_study.py`` come from
one place.
"""

from repro.reporting.tables import format_table
from repro.reporting.render import render_platform, render_kpn, render_mapping, render_csdf
from repro.reporting.breakdown import EnergyBreakdown, energy_breakdown
from repro.reporting.export import (
    csdf_to_dot,
    kpn_to_dot,
    mapping_to_dict,
    mapping_to_dot,
    platform_to_dict,
    result_to_dict,
    save_json,
)
from repro.reporting import experiments

__all__ = [
    "format_table",
    "render_platform",
    "render_kpn",
    "render_mapping",
    "render_csdf",
    "EnergyBreakdown",
    "energy_breakdown",
    "mapping_to_dict",
    "result_to_dict",
    "platform_to_dict",
    "save_json",
    "kpn_to_dot",
    "csdf_to_dot",
    "mapping_to_dot",
    "experiments",
]
