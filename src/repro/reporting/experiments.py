"""Experiment drivers: regenerate each table and figure of the paper.

Each ``experiment_*`` function reproduces one artefact of the paper's
evaluation (section 4) from the library and returns both the raw data and a
formatted text block.  The benchmarks in ``benchmarks/`` and the examples in
``examples/`` call these functions, so every number reported anywhere in this
repository comes from a single code path.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

from repro.mapping.result import MappingResult
from repro.reporting.render import render_csdf, render_kpn, render_platform
from repro.reporting.tables import format_table
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from repro.spatialmapper.step1_implementation import select_implementations
from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment
from repro.spatialmapper.trace import Step2Trace
from repro.workloads import hiperlan2


@dataclass
class ExperimentReport:
    """Raw data plus a formatted text block for one experiment."""

    experiment: str
    text: str
    data: dict = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# Figure 1 — the HiperLAN/2 receiver KPN
# --------------------------------------------------------------------------- #
def experiment_figure1(mode: str = hiperlan2.DEFAULT_MODE) -> ExperimentReport:
    """Reproduce Figure 1: the receiver's decomposition into communicating processes."""
    kpn = hiperlan2.build_receiver_kpn(mode)
    tokens = {c.name: c.tokens_per_iteration for c in kpn.channels}
    text = render_kpn(kpn)
    return ExperimentReport(
        experiment="fig1",
        text=text,
        data={
            "processes": list(kpn.process_names),
            "channel_tokens": tokens,
            "mode": mode,
            "output_tokens": hiperlan2.output_tokens_for_mode(mode),
        },
    )


# --------------------------------------------------------------------------- #
# Table 1 — available implementations
# --------------------------------------------------------------------------- #
def experiment_table1(mode: str = hiperlan2.DEFAULT_MODE) -> ExperimentReport:
    """Reproduce Table 1: the implementation library with energies and phase signatures."""
    library = hiperlan2.build_implementation_library(mode)
    paper_rows = hiperlan2.paper_table1()
    rows = []
    energies = {}
    for row in paper_rows:
        process_key = {
            "Prefix removal": "prefix_removal",
            "Freq. off. correction": "freq_offset_correction",
            "Inverse OFDM": "inverse_ofdm",
            "Remainder": "remainder",
        }[row["process"]]
        implementation = library.implementation_for(process_key, str(row["pe_type"]))
        energies[(process_key, row["pe_type"])] = implementation.energy_nj_per_iteration
        rows.append(
            (
                row["process"],
                row["pe_type"],
                row["input"],
                row["output"],
                row["wcet"],
                f"{implementation.energy_nj_per_iteration:g}",
                implementation.phases,
                f"{implementation.total_wcet_cycles:g}",
            )
        )
    text = format_table(
        ["Process", "PE type", "Input [token]", "Output [token]", "WCET [cc]",
         "Energy [nJ/symbol]", "Phases", "Total WCET [cc]"],
        rows,
        title="Table 1 — available implementations",
        align_right=(5, 6, 7),
    )
    return ExperimentReport(
        experiment="tab1",
        text=text,
        data={"rows": rows, "energies": energies, "library_size": len(library)},
    )


# --------------------------------------------------------------------------- #
# Figure 2 — the MPSoC layout
# --------------------------------------------------------------------------- #
def experiment_figure2() -> ExperimentReport:
    """Reproduce Figure 2: the hypothetical 3x3-mesh MPSoC."""
    platform = hiperlan2.build_mpsoc()
    counts: dict[str, int] = {}
    for tile in platform.tiles:
        counts[tile.type_name] = counts.get(tile.type_name, 0) + 1
    text = render_platform(platform)
    return ExperimentReport(
        experiment="fig2",
        text=text,
        data={
            "tile_type_counts": counts,
            "routers": len(platform.noc),
            "positions": {t.name: t.position for t in platform.tiles},
        },
    )


# --------------------------------------------------------------------------- #
# Table 2 — processor-assignment iterations of step 2
# --------------------------------------------------------------------------- #
def _tile_row(assignment: dict[str, str]) -> dict[str, str]:
    """Invert a process->tile snapshot into the Table-2 column layout."""
    short = {
        "prefix_removal": "Pfx.rem.",
        "freq_offset_correction": "Frq.off.",
        "inverse_ofdm": "Inv.OFDM",
        "remainder": "Rem.",
    }
    by_tile = {tile: short.get(process, process) for process, tile in assignment.items()}
    return {
        "arm1": by_tile.get("arm1", "-"),
        "arm2": by_tile.get("arm2", "-"),
        "montium1": by_tile.get("montium1", "-"),
        "montium2": by_tile.get("montium2", "-"),
    }


def experiment_table2(mode: str = hiperlan2.DEFAULT_MODE) -> ExperimentReport:
    """Reproduce Table 2: the step-2 local-search iterations on the case study."""
    als, platform, library = hiperlan2.build_case_study(mode)
    config = MapperConfig()
    step1 = select_implementations(als, platform, library, config=config)
    step2 = refine_tile_assignment(step1.mapping, als, platform, config=config)
    trace: Step2Trace = step2.trace

    rows = []
    initial = _tile_row(trace.initial_assignment)
    rows.append(("-", initial["arm1"], initial["arm2"], initial["montium1"],
                 initial["montium2"], f"{trace.initial_cost:g}", "Initial (greedy) assignment"))
    for iteration in trace.improving_prefix():
        tiles = _tile_row(iteration.assignment)
        rows.append(
            (
                iteration.iteration,
                tiles["arm1"],
                tiles["arm2"],
                tiles["montium1"],
                tiles["montium2"],
                f"{iteration.cost:g}",
                iteration.remark,
            )
        )
    rows.append(("", "", "", "", "", "", "No further choices"))
    text = format_table(
        ["Iter.", "ARM 1", "ARM 2", "MONTIUM 1", "MONTIUM 2", "Cost", "Remark"],
        rows,
        title="Table 2 — processor assignment iterations in step 2",
        align_right=(5,),
    )
    cost_trajectory = [trace.initial_cost] + [i.cost for i in trace.improving_prefix()]
    return ExperimentReport(
        experiment="tab2",
        text=text,
        data={
            "initial_cost": trace.initial_cost,
            "final_cost": trace.final_cost,
            "cost_trajectory": cost_trajectory,
            "rows": rows,
            "iterations_evaluated": len(trace.iterations),
        },
    )


# --------------------------------------------------------------------------- #
# Figure 3 — the final mapped CSDF graph
# --------------------------------------------------------------------------- #
def experiment_figure3(mode: str = hiperlan2.DEFAULT_MODE) -> ExperimentReport:
    """Reproduce Figure 3: the mapped CSDF graph with router actors and buffers."""
    als, platform, library = hiperlan2.build_case_study(mode)
    mapper = SpatialMapper(platform, library)
    result = mapper.map(als)
    graph = result.mapped_csdf
    router_actors = [a for a in graph.actors if a.role == "router"] if graph else []
    per_channel_hops = {route.channel: route.hops for route in result.mapping.routes}
    text_lines = [render_csdf(graph)] if graph else ["(no mapped CSDF graph produced)"]
    text_lines.append("")
    text_lines.append(
        format_table(
            ["Channel", "Route hops", "Buffer B_i [tokens]"],
            [
                (channel, per_channel_hops.get(channel, "-"), capacity)
                for channel, capacity in result.mapping.buffer_capacities.items()
            ],
            title="Buffer capacities computed in step 4",
            align_right=(1, 2),
        )
    )
    return ExperimentReport(
        experiment="fig3",
        text="\n".join(text_lines),
        data={
            "feasible": result.is_feasible,
            "router_actor_count": len(router_actors),
            "per_channel_hops": per_channel_hops,
            "buffer_capacities": result.mapping.buffer_capacities,
            "assignment": {a.process: a.tile for a in result.mapping.assignments},
            "achieved_period_ns": (
                result.feasibility.achieved_period_ns if result.feasibility else None
            ),
            "required_period_ns": als.period_ns,
        },
    )


# --------------------------------------------------------------------------- #
# Section 4.5 — implementation measurements
# --------------------------------------------------------------------------- #
def experiment_section45(
    mode: str = hiperlan2.DEFAULT_MODE, repetitions: int = 5
) -> ExperimentReport:
    """Reproduce the section-4.5 measurements: mapper runtime and memory footprint."""
    als, platform, library = hiperlan2.build_case_study(mode)
    mapper = SpatialMapper(platform, library)

    runtimes = []
    result: MappingResult | None = None
    for _ in range(repetitions):
        begin = time.perf_counter()
        result = mapper.map(als)
        runtimes.append(time.perf_counter() - begin)

    tracemalloc.start()
    mapper.map(als)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert result is not None
    best_ms = min(runtimes) * 1e3
    text = format_table(
        ["Quantity", "Paper (ARM926 @ 100 MHz, C)", "This reproduction (Python)"],
        [
            ("Mapping runtime", "< 4 ms", f"{best_ms:.2f} ms"),
            ("Peak data memory", "110 kB", f"{peak_bytes / 1024:.0f} kB"),
            ("Result", "feasible mapping", result.status.value),
        ],
        title="Section 4.5 — running the HiperLAN/2 example through the mapper",
    )
    return ExperimentReport(
        experiment="sec45",
        text=text,
        data={
            "runtime_ms_best": best_ms,
            "runtime_ms_all": [r * 1e3 for r in runtimes],
            "peak_memory_kb": peak_bytes / 1024,
            "feasible": result.is_feasible,
        },
    )


def all_experiments(mode: str = hiperlan2.DEFAULT_MODE) -> list[ExperimentReport]:
    """Run every paper experiment and return the reports in paper order."""
    return [
        experiment_figure1(mode),
        experiment_table1(mode),
        experiment_figure2(),
        experiment_table2(mode),
        experiment_figure3(mode),
        experiment_section45(mode),
    ]
