"""Plain-text table rendering."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    align_right: Sequence[int] = (),
) -> str:
    """Render a list of rows as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row data; cells are converted with ``str``.
    title:
        Optional title printed above the table.
    align_right:
        Indices of columns to right-align (numeric columns).
    """
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    right = set(align_right)

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index in right:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    for row in string_rows:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)
