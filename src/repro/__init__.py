"""repro — run-time spatial mapping of streaming applications to heterogeneous MPSoCs.

A complete, self-contained Python reproduction of

    P.K.F. Hölzenspies, J.L. Hurink, J. Kuper, G.J.M. Smit,
    "Run-time Spatial Mapping of Streaming Applications to a Heterogeneous
    Multi-Processor System-on-Chip (MPSOC)", DATE 2008.

The public API re-exports the most commonly used classes; see README.md for a
quickstart and DESIGN.md for the full system inventory.

Typical use::

    from repro import SpatialMapper
    from repro.workloads import hiperlan2

    als, platform, library = hiperlan2.build_case_study()
    result = SpatialMapper(platform, library).map(als)
    print(result.summary())
"""

from repro.kpn import (
    ApplicationLevelSpec,
    Channel,
    KPNGraph,
    Process,
    ProcessKind,
    QoSConstraints,
)
from repro.csdf import CSDFActor, CSDFBuilder, CSDFEdge, CSDFGraph, PhaseVector
from repro.platform import (
    NoC,
    Platform,
    PlatformBuilder,
    PlatformState,
    Tile,
    TileType,
    build_mesh_noc,
)
from repro.appmodel import Implementation, ImplementationLibrary
from repro.obs import MetricsRegistry, ObsConfig, Tracer
from repro.mapping import (
    ChannelRoute,
    CostModel,
    Mapping,
    MappingResult,
    MappingStatus,
    ProcessAssignment,
)
from repro.spatialmapper import MapperConfig, SpatialMapper, Step2Strategy
from repro.runtime import (
    ProcessRegionExecutor,
    RuntimeResourceManager,
    Scenario,
    StartEvent,
    StopEvent,
    ThreadedRegionExecutor,
    WorkloadEngine,
    run_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # application model
    "Process",
    "ProcessKind",
    "Channel",
    "KPNGraph",
    "QoSConstraints",
    "ApplicationLevelSpec",
    # CSDF
    "PhaseVector",
    "CSDFActor",
    "CSDFEdge",
    "CSDFGraph",
    "CSDFBuilder",
    # platform
    "TileType",
    "Tile",
    "NoC",
    "build_mesh_noc",
    "Platform",
    "PlatformBuilder",
    "PlatformState",
    # implementations
    "Implementation",
    "ImplementationLibrary",
    # mapping
    "ProcessAssignment",
    "ChannelRoute",
    "Mapping",
    "MappingResult",
    "MappingStatus",
    "CostModel",
    # mapper
    "SpatialMapper",
    "MapperConfig",
    "Step2Strategy",
    # observability
    "MetricsRegistry",
    "ObsConfig",
    "Tracer",
    # runtime
    "RuntimeResourceManager",
    "Scenario",
    "StartEvent",
    "StopEvent",
    "WorkloadEngine",
    "ThreadedRegionExecutor",
    "ProcessRegionExecutor",
    "run_scenario",
]
