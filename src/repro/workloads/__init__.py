"""Workloads: the HiperLAN/2 case study, extra receivers and synthetic generators.

:mod:`repro.workloads.hiperlan2` encodes the paper's worked example exactly
(Figure 1 KPN, Table 1 implementation library, Figure 2 MPSoC, the 4 us QoS
constraint).  :mod:`repro.workloads.receivers` adds further realistic
streaming pipelines (a DRM-like digital-radio receiver and a simple
image-processing pipeline) used by the multi-application examples, and
:mod:`repro.workloads.synthetic` generates random applications and platforms
for the scalability and ablation benchmarks the paper calls for in its
conclusions.
"""

from repro.workloads import hiperlan2, receivers, synthetic

__all__ = ["hiperlan2", "receivers", "synthetic"]
