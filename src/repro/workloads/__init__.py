"""Workloads: the HiperLAN/2 case study, extra receivers and synthetic generators.

:mod:`repro.workloads.hiperlan2` encodes the paper's worked example exactly
(Figure 1 KPN, Table 1 implementation library, Figure 2 MPSoC, the 4 us QoS
constraint).  :mod:`repro.workloads.receivers` adds further realistic
streaming pipelines (a DRM-like digital-radio receiver and a simple
image-processing pipeline) used by the multi-application examples, and
:mod:`repro.workloads.synthetic` generates random applications and platforms
for the scalability and ablation benchmarks the paper calls for in its
conclusions, and :mod:`repro.workloads.arrivals` turns them into timed event
streams (Poisson/bursty/periodic traffic classes with priorities, admission
deadlines and holding times) for the event-driven workload engine.
"""

from repro.workloads import arrivals, hiperlan2, receivers, synthetic

__all__ = ["arrivals", "hiperlan2", "receivers", "synthetic"]
