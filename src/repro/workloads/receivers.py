"""Additional realistic streaming applications.

The paper motivates run-time mapping with devices that run *several*
streaming applications simultaneously (wireless baseband, digital radio,
multimedia).  These extra workloads — kept deliberately in the same style as
the HiperLAN/2 receiver — are used by the multi-application examples and the
run-time-manager benchmarks:

* :func:`build_drm_receiver_als` — a Digital Radio Mondiale-like receiver
  chain (decimator, channel filter, OFDM demodulator, decoder);
* :func:`build_image_pipeline_als` — a simple camera image pipeline
  (debayer, denoise, scale);
* matching implementation libraries with ARM and MONTIUM (and, for the image
  pipeline, DSP) variants.

The numbers are representative rather than measured; what matters for the
experiments is that the applications have heterogeneous preferred tile types
and non-trivial communication so that they compete for the same resources as
the HiperLAN/2 receiver.
"""

from __future__ import annotations

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.csdf.phase import PhaseVector
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process, ProcessKind
from repro.kpn.qos import QoSConstraints
from repro.units import us_to_ns


def _chain_kpn(
    name: str,
    stage_names: list[str],
    tokens_between_stages: list[float],
    source_tile: str,
    sink_tile: str,
    token_size_bits: int = 32,
) -> KPNGraph:
    """A source -> stages -> sink pipeline KPN."""
    if len(tokens_between_stages) != len(stage_names) + 1:
        raise ValueError("need one token count per channel (stages + 1)")
    kpn = KPNGraph(name)
    kpn.add_process(Process("source", ProcessKind.SOURCE, pinned_tile=source_tile))
    for stage in stage_names:
        kpn.add_process(Process(stage))
    kpn.add_process(Process("sink", ProcessKind.SINK, pinned_tile=sink_tile))
    nodes = ["source", *stage_names, "sink"]
    for index, (producer, consumer) in enumerate(zip(nodes, nodes[1:])):
        kpn.add_channel(
            Channel(
                f"c{index}_{producer}_{consumer}",
                producer,
                consumer,
                tokens_per_iteration=tokens_between_stages[index],
                token_size_bits=token_size_bits,
            )
        )
    return kpn


def _simple_impl(
    process: str,
    tile_type: str,
    tokens_in: float,
    tokens_out: float,
    wcet_cycles: float,
    energy_nj: float,
    memory_bytes: int = 4096,
) -> Implementation:
    """A three-phase read/compute/write implementation."""
    return Implementation(
        process=process,
        tile_type=tile_type,
        wcet_cycles=PhaseVector([1.0, max(wcet_cycles - 2.0, 1.0), 1.0]),
        input_rates={DEFAULT_PORT: PhaseVector([tokens_in, 0.0, 0.0])},
        output_rates={DEFAULT_PORT: PhaseVector([0.0, 0.0, tokens_out])},
        energy_nj_per_iteration=energy_nj,
        memory_bytes=memory_bytes,
    )


# --------------------------------------------------------------------------- #
# DRM-like digital radio receiver
# --------------------------------------------------------------------------- #
def build_drm_receiver_als(
    *,
    period_ns: float = us_to_ns(20.0),
    source_tile: str = "adc",
    sink_tile: str = "sink",
) -> ApplicationLevelSpec:
    """A digital-radio receiver chain: decimate -> channel filter -> demodulate -> decode."""
    kpn = _chain_kpn(
        "drm_rx",
        ["decimator", "channel_filter", "ofdm_demod", "decoder"],
        tokens_between_stages=[96.0, 48.0, 48.0, 24.0, 12.0],
        source_tile=source_tile,
        sink_tile=sink_tile,
    )
    return ApplicationLevelSpec(kpn=kpn, qos=QoSConstraints(period_ns=period_ns))


def build_drm_library() -> ImplementationLibrary:
    """ARM and Montium implementations of the DRM receiver stages."""
    library = ImplementationLibrary()
    library.add(_simple_impl("decimator", "ARM", 96, 48, wcet_cycles=300, energy_nj=45))
    library.add(_simple_impl("decimator", "MONTIUM", 96, 48, wcet_cycles=140, energy_nj=20))
    library.add(_simple_impl("channel_filter", "ARM", 48, 48, wcet_cycles=620, energy_nj=90))
    library.add(_simple_impl("channel_filter", "MONTIUM", 48, 48, wcet_cycles=260, energy_nj=38))
    library.add(_simple_impl("ofdm_demod", "ARM", 48, 24, wcet_cycles=900, energy_nj=150))
    library.add(_simple_impl("ofdm_demod", "MONTIUM", 48, 24, wcet_cycles=340, energy_nj=70))
    library.add(_simple_impl("decoder", "ARM", 24, 12, wcet_cycles=500, energy_nj=85))
    library.add(_simple_impl("decoder", "MONTIUM", 24, 12, wcet_cycles=380, energy_nj=60))
    return library


# --------------------------------------------------------------------------- #
# Camera image pipeline
# --------------------------------------------------------------------------- #
def build_image_pipeline_als(
    *,
    period_ns: float = us_to_ns(50.0),
    source_tile: str = "adc",
    sink_tile: str = "sink",
) -> ApplicationLevelSpec:
    """A camera pipeline working on image lines: debayer -> denoise -> scale."""
    kpn = _chain_kpn(
        "image_pipeline",
        ["debayer", "denoise", "scale"],
        tokens_between_stages=[128.0, 128.0, 128.0, 64.0],
        source_tile=source_tile,
        sink_tile=sink_tile,
    )
    return ApplicationLevelSpec(kpn=kpn, qos=QoSConstraints(period_ns=period_ns))


def build_image_library() -> ImplementationLibrary:
    """ARM-only and ARM+Montium implementations of the image pipeline stages."""
    library = ImplementationLibrary()
    library.add(_simple_impl("debayer", "ARM", 128, 128, wcet_cycles=1500, energy_nj=210))
    library.add(_simple_impl("debayer", "MONTIUM", 128, 128, wcet_cycles=640, energy_nj=95))
    library.add(_simple_impl("denoise", "ARM", 128, 128, wcet_cycles=2400, energy_nj=330))
    library.add(_simple_impl("denoise", "MONTIUM", 128, 128, wcet_cycles=900, energy_nj=140))
    library.add(_simple_impl("scale", "ARM", 128, 64, wcet_cycles=700, energy_nj=110))
    return library


def merge_libraries(*libraries: ImplementationLibrary) -> ImplementationLibrary:
    """Combine several libraries into one (process sets must be disjoint)."""
    merged = ImplementationLibrary()
    for library in libraries:
        merged.add_all(library.implementations())
    return merged
