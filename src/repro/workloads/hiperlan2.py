"""The HiperLAN/2 receiver case study of the paper (section 4).

This module encodes the worked example end to end:

* :func:`build_receiver_kpn` — the KPN of Figure 1 (with the last three
  processes grouped into ``remainder``, as in the paper);
* :func:`build_implementation_library` — the ARM and Montium implementations
  of Table 1, including the mode-dependent demapper output size ``b``;
* :func:`build_mpsoc` — the hypothetical 3x3-mesh MPSoC of Figure 2 with two
  ARMs, two Montiums, the A/D source, the Sink and three unused tiles;
* :func:`build_receiver_als` — the application-level specification with the
  4 us per-OFDM-symbol throughput constraint;
* :func:`paper_table1` — the rows of Table 1 exactly as printed, for the
  table-reproduction benchmark.

A note on coordinates: Figure 2 is a drawing whose exact tile coordinates are
not recoverable from the paper text.  The placement chosen here preserves the
figure's content (tile counts and types) and reproduces the Table 2 cost
trajectory 11 -> 11 -> 9 -> 7 exactly under the paper's cost metric (the sum
of Manhattan distances of all data channels); see DESIGN.md.
"""

from __future__ import annotations

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.appmodel.parser import parse_phase_notation
from repro.csdf.phase import PhaseVector
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process, ProcessKind
from repro.kpn.qos import QoSConstraints
from repro.platform.builder import PlatformBuilder
from repro.platform.platform import Platform
from repro.units import us_to_ns

#: Samples (32-bit complex numbers) per OFDM symbol at the receiver input.
SAMPLES_PER_SYMBOL = 80
#: Samples per symbol after cyclic-prefix removal.
SAMPLES_AFTER_PREFIX = 64
#: Data subcarriers per OFDM symbol (input of equalisation/demapping).
DATA_SUBCARRIERS = 52
#: One OFDM symbol arrives every 4 microseconds.
SYMBOL_PERIOD_NS = us_to_ns(4.0)
#: Size of one stream token (a 32-bit complex sample / word).
TOKEN_SIZE_BITS = 32

#: The seven HiperLAN/2 link-speed modes: coded bits carried per sample by the
#: demapper output, from BPSK rate 1/2 (2 bits) up to 64-QAM rate 3/4
#: (64 bits), as described in section 4.1 of the paper.
HIPERLAN2_MODES: dict[str, int] = {
    "BPSK12": 2,
    "BPSK34": 3,
    "QPSK12": 4,
    "QPSK34": 6,
    "QAM16_916": 9,
    "QAM16_34": 12,
    "QAM64_34": 64,
}

#: Mode used by default throughout the examples and benchmarks.
DEFAULT_MODE = "QPSK34"

#: Tile positions on the 3x3 mesh (see the module docstring for how these
#: were fixed).  The three unlabeled tiles of Figure 2 sit on the remaining
#: routers.
TILE_POSITIONS: dict[str, tuple[int, int]] = {
    "arm1": (0, 0),
    "montium2": (1, 0),
    "arm2": (0, 1),
    "adc": (2, 1),
    "sink": (0, 2),
    "montium1": (1, 2),
    "unused1": (2, 0),
    "unused2": (1, 1),
    "unused3": (2, 2),
}

#: Names of the data processes, in pipeline order.
PROCESS_NAMES = (
    "prefix_removal",
    "freq_offset_correction",
    "inverse_ofdm",
    "remainder",
)


def output_tokens_for_mode(mode: str = DEFAULT_MODE) -> int:
    """Demapper output size ``b`` in 32-bit tokens per OFDM symbol for a mode.

    48 data-carrying samples per symbol, each contributing the mode's coded
    bits; the result is rounded up to whole 32-bit tokens.  The paper's range
    (12 bytes for BPSK to 384 bytes for 64-QAM) corresponds to b = 3 ... 96.
    """
    try:
        bits_per_sample = HIPERLAN2_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown HiperLAN/2 mode {mode!r}; known modes: {sorted(HIPERLAN2_MODES)}"
        ) from None
    total_bits = 48 * bits_per_sample
    return max(1, -(-total_bits // TOKEN_SIZE_BITS))


def build_receiver_kpn(
    mode: str = DEFAULT_MODE, *, include_control: bool = True, name: str = "hiperlan2_rx"
) -> KPNGraph:
    """The KPN of Figure 1, with the last three processes grouped as ``remainder``."""
    b = output_tokens_for_mode(mode)
    kpn = KPNGraph(name)
    kpn.add_process(Process("adc", ProcessKind.SOURCE, pinned_tile="adc",
                            description="A/D converter delivering one OFDM symbol per 4 us"))
    kpn.add_process(Process("prefix_removal", description="cyclic-prefix removal"))
    kpn.add_process(Process("freq_offset_correction", description="frequency-offset correction"))
    kpn.add_process(Process("inverse_ofdm", description="inverse OFDM (FFT)"))
    kpn.add_process(
        Process(
            "remainder",
            description="equalisation + phase-offset correction + demapping (grouped)",
        )
    )
    kpn.add_process(Process("sink", ProcessKind.SINK, pinned_tile="sink",
                            description="consumer of the receiver output stream"))
    if include_control:
        kpn.add_process(Process("ctrl", ProcessKind.CONTROL,
                                description="per-frame control (demapping mode selection)"))

    kpn.add_channel(Channel("c_adc_pfx", "adc", "prefix_removal",
                            tokens_per_iteration=SAMPLES_PER_SYMBOL,
                            token_size_bits=TOKEN_SIZE_BITS))
    kpn.add_channel(Channel("c_pfx_frq", "prefix_removal", "freq_offset_correction",
                            tokens_per_iteration=SAMPLES_AFTER_PREFIX,
                            token_size_bits=TOKEN_SIZE_BITS))
    kpn.add_channel(Channel("c_frq_iofdm", "freq_offset_correction", "inverse_ofdm",
                            tokens_per_iteration=SAMPLES_AFTER_PREFIX,
                            token_size_bits=TOKEN_SIZE_BITS))
    kpn.add_channel(Channel("c_iofdm_rem", "inverse_ofdm", "remainder",
                            tokens_per_iteration=DATA_SUBCARRIERS,
                            token_size_bits=TOKEN_SIZE_BITS))
    kpn.add_channel(Channel("c_rem_sink", "remainder", "sink",
                            tokens_per_iteration=b,
                            token_size_bits=TOKEN_SIZE_BITS))
    if include_control:
        kpn.add_channel(Channel("c_ctrl_rem", "ctrl", "remainder",
                                tokens_per_iteration=1,
                                token_size_bits=TOKEN_SIZE_BITS,
                                is_control=True))
    return kpn


def build_receiver_als(
    mode: str = DEFAULT_MODE,
    *,
    period_ns: float = SYMBOL_PERIOD_NS,
    max_latency_ns: float | None = None,
    include_control: bool = True,
) -> ApplicationLevelSpec:
    """The Application Level Specification: Figure 1 plus the 4 us QoS constraint."""
    kpn = build_receiver_kpn(mode, include_control=include_control)
    qos = QoSConstraints(period_ns=period_ns, max_latency_ns=max_latency_ns)
    return ApplicationLevelSpec(kpn=kpn, qos=qos, metadata={"mode": mode})


# --------------------------------------------------------------------------- #
# Table 1 — implementations
# --------------------------------------------------------------------------- #
def _implementation(
    process: str,
    tile_type: str,
    input_spec: str,
    output_spec: str,
    wcet_spec: str,
    energy_nj: float,
    memory_bytes: int,
    variables: dict[str, float],
) -> Implementation:
    """Build one Table-1 implementation from the paper's phase notation."""
    return Implementation(
        process=process,
        tile_type=tile_type,
        wcet_cycles=PhaseVector(parse_phase_notation(wcet_spec, variables)),
        input_rates={DEFAULT_PORT: PhaseVector(parse_phase_notation(input_spec, variables))},
        output_rates={DEFAULT_PORT: PhaseVector(parse_phase_notation(output_spec, variables))},
        energy_nj_per_iteration=energy_nj,
        memory_bytes=memory_bytes,
        metadata={
            "paper_input": input_spec,
            "paper_output": output_spec,
            "paper_wcet": wcet_spec,
        },
    )


def build_implementation_library(mode: str = DEFAULT_MODE) -> ImplementationLibrary:
    """The implementation library of Table 1.

    The phase signatures follow the paper.  Two adjustments keep the
    *executable* model rate-consistent (the printed table has small
    inconsistencies that only matter when actually simulating the graph; the
    printed strings are preserved verbatim in :func:`paper_table1`):

    * the ARM inverse-OFDM implementation produces 52 tokens per cycle (the
      number the grouped ``remainder`` consumes), not 64;
    * the ARM ``remainder`` implementation reads its 52 data tokens on the
      data channel only (the ``b`` tokens the paper lists on its input refer
      to the control stream, which is not part of the mapped data path).

    Memory footprints are not given in the paper; representative values are
    used so that the adherence checks exercise the memory budget without ever
    dominating the example.
    """
    b = float(output_tokens_for_mode(mode))
    variables = {"b": b}
    library = ImplementationLibrary()

    library.add(_implementation(
        "prefix_removal", "ARM",
        "<8^2, (8,0)^8>", "<0^2, (0,8)^8>", "<1^18>",
        energy_nj=60.0, memory_bytes=4096, variables=variables))
    library.add(_implementation(
        "prefix_removal", "MONTIUM",
        "<1^80, 0>", "<0^17, 1^64>", "<1^81>",
        energy_nj=32.0, memory_bytes=2048, variables=variables))

    library.add(_implementation(
        "freq_offset_correction", "ARM",
        "<8, 0, 0>", "<0, 0, 8>", "<18, 32, 18>",
        energy_nj=62.0, memory_bytes=4096, variables=variables))
    library.add(_implementation(
        "freq_offset_correction", "MONTIUM",
        "<1^64, 0^2>", "<0^2, 1^64>", "<1^66>",
        energy_nj=33.0, memory_bytes=2048, variables=variables))

    library.add(_implementation(
        "inverse_ofdm", "ARM",
        "<64, 0, 0>", "<0, 0, 52>", "<66, 4250, 54>",
        energy_nj=275.0, memory_bytes=16384, variables=variables))
    library.add(_implementation(
        "inverse_ofdm", "MONTIUM",
        "<1^64, 0^53>", "<0^65, 1^52>", "<1^64, 170, 1^52>",
        energy_nj=143.0, memory_bytes=8192, variables=variables))

    library.add(_implementation(
        "remainder", "ARM",
        "<52, 0, 0>", "<0, 0, b>", "<54, 2250, b+2>",
        energy_nj=140.0, memory_bytes=16384, variables=variables))
    # The paper's middle-phase WCET "73-b" becomes non-positive for the two
    # fastest modes (b > 72); clamp it to one clock cycle there.
    middle_wcet = max(73.0 - b, 1.0)
    library.add(_implementation(
        "remainder", "MONTIUM",
        f"<1^52, 0^{int(b) + 1}>", f"<0^53, 1^{int(b)}>", f"<1^52, {middle_wcet:g}, 1^b>",
        energy_nj=76.0, memory_bytes=8192, variables=variables))
    return library


def paper_table1() -> list[dict[str, str | float]]:
    """Table 1 exactly as printed in the paper (strings kept verbatim).

    Each row has the process, the processing-element type, the input, output
    and WCET phase notations and the average energy in nJ per symbol.
    """
    return [
        {"process": "Prefix removal", "pe_type": "ARM",
         "input": "<8^2, (8,0)^8>", "output": "<0^2, (0,8)^8>", "wcet": "<1^18>", "energy_nj": 60},
        {"process": "Prefix removal", "pe_type": "MONTIUM",
         "input": "<1^80, 0>", "output": "<0^17, 1^64>", "wcet": "<1^81>", "energy_nj": 32},
        {"process": "Freq. off. correction", "pe_type": "ARM",
         "input": "<8, 0, 0>", "output": "<0, 0, 8>", "wcet": "<18, 32, 18>", "energy_nj": 62},
        {"process": "Freq. off. correction", "pe_type": "MONTIUM",
         "input": "<1^64, 0^2>", "output": "<0^2, 1^64>", "wcet": "<1^66>", "energy_nj": 33},
        {"process": "Inverse OFDM", "pe_type": "ARM",
         "input": "<64, 0, 0>", "output": "<0, 0, 64>", "wcet": "<66, 4250, 54>", "energy_nj": 275},
        {"process": "Inverse OFDM", "pe_type": "MONTIUM",
         "input": "<1^64, 0^53>", "output": "<0^65, 1^52>", "wcet": "<1^64, 170, 1^52>",
         "energy_nj": 143},
        {"process": "Remainder", "pe_type": "ARM",
         "input": "<52, 0, b>", "output": "<0, 0, b>", "wcet": "<54, 2250, b+2>", "energy_nj": 140},
        {"process": "Remainder", "pe_type": "MONTIUM",
         "input": "<1^52, 0, 0>", "output": "<0, 0, 1^b>", "wcet": "<1^52, 73-b, 1^b>",
         "energy_nj": 76},
    ]


# --------------------------------------------------------------------------- #
# Figure 2 — the hypothetical MPSoC
# --------------------------------------------------------------------------- #
def build_mpsoc(
    *,
    arm_frequency_mhz: float = 200.0,
    montium_frequency_mhz: float = 100.0,
    noc_frequency_mhz: float = 100.0,
    link_capacity_bits_per_s: float = 2e9,
    arm_memory_bytes: int = 256 * 1024,
    montium_memory_bytes: int = 64 * 1024,
) -> Platform:
    """The 3x3-mesh MPSoC of Figure 2: two ARMs, two Montiums, A/D, Sink, 3 unused tiles.

    The paper gives the WCETs of Table 1 in clock cycles but no tile clock
    frequencies (only the mapper host runs at 100 MHz).  The defaults here —
    200 MHz ARMs, 100 MHz Montiums, 100 MHz NoC — make the paper's final
    mapping feasible under the 4 us symbol period while keeping the ARM
    implementations of the two heavy kernels (inverse OFDM, remainder)
    infeasible, which matches the narrative of the worked example.
    """
    builder = (
        PlatformBuilder("hiperlan2_mpsoc")
        .mesh(
            3,
            3,
            link_capacity_bits_per_s=link_capacity_bits_per_s,
            router_latency_cycles=4,
            router_frequency_mhz=noc_frequency_mhz,
        )
        .tile_type("ARM", frequency_mhz=arm_frequency_mhz, idle_power_mw=15.0,
                   description="ARM926 with caches")
        .tile_type("MONTIUM", frequency_mhz=montium_frequency_mhz, idle_power_mw=5.0,
                   description="coarse-grained reconfigurable Montium core")
        .tile_type("IO", frequency_mhz=noc_frequency_mhz, is_processing=False,
                   description="I/O front-end (A/D converter or stream sink)")
        .tile_type("OTHER", frequency_mhz=noc_frequency_mhz,
                   description="tile type not relevant to the example")
    )
    builder.tile("arm1", "ARM", TILE_POSITIONS["arm1"], memory_bytes=arm_memory_bytes)
    builder.tile("arm2", "ARM", TILE_POSITIONS["arm2"], memory_bytes=arm_memory_bytes)
    builder.tile("montium1", "MONTIUM", TILE_POSITIONS["montium1"],
                 memory_bytes=montium_memory_bytes)
    builder.tile("montium2", "MONTIUM", TILE_POSITIONS["montium2"],
                 memory_bytes=montium_memory_bytes)
    builder.tile("adc", "IO", TILE_POSITIONS["adc"])
    builder.tile("sink", "IO", TILE_POSITIONS["sink"])
    builder.tile("unused1", "OTHER", TILE_POSITIONS["unused1"])
    builder.tile("unused2", "OTHER", TILE_POSITIONS["unused2"])
    builder.tile("unused3", "OTHER", TILE_POSITIONS["unused3"])
    return builder.build()


def build_case_study(mode: str = DEFAULT_MODE) -> tuple[ApplicationLevelSpec, Platform, ImplementationLibrary]:
    """Convenience bundle: the ALS, the MPSoC and the implementation library."""
    return build_receiver_als(mode), build_mpsoc(), build_implementation_library(mode)
