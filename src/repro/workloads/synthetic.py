"""Synthetic application and platform generators.

The paper's conclusions call for benchmarks with "far more complex real-life
examples ... and synthetic cases based on the class of applications that can
reasonably be expected for MPSoCs in the future".  This module provides those
synthetic cases: random streaming applications (chains and series-parallel
graphs) with heterogeneous implementations, and random tiled platforms with
mesh NoCs.  All generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.appmodel.implementation import DEFAULT_PORT, Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.csdf.phase import PhaseVector
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process, ProcessKind
from repro.kpn.qos import QoSConstraints
from repro.platform.builder import PlatformBuilder
from repro.platform.platform import Platform


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic application generator.

    Parameters
    ----------
    stages:
        Number of kernel processes in the application.
    parallel_branches:
        Number of parallel branches in the middle of the graph (1 = plain
        chain, >1 = fork/join series-parallel shape).
    period_ns:
        Iteration period of the QoS constraint.
    tokens_range:
        Inclusive range the per-channel token counts are drawn from.
    wcet_range_cycles:
        Inclusive range of per-iteration WCETs of the *preferred* tile type;
        the general-purpose fallback is 2-4x slower and 1.5-3x more
        energy-hungry, mirroring the ARM/Montium ratios of Table 1.
    tile_types:
        Names of the tile types implementations are generated for.  The
        first entry is the general-purpose type every process supports; each
        process additionally gets an implementation on one random
        specialised type with probability ``specialisation_probability``.
    memory_choices:
        Implementation footprints (bytes) drawn uniformly per implementation.
        Larger, more varied footprints against small multi-slot tiles turn
        placement into the bin-packing shape the stochastic rescue lane's
        fill sweep stresses.
    """

    stages: int = 6
    parallel_branches: int = 1
    period_ns: float = 10_000.0
    tokens_range: tuple[int, int] = (8, 64)
    wcet_range_cycles: tuple[int, int] = (100, 600)
    tile_types: tuple[str, ...] = ("GPP", "DSP", "ACCEL")
    specialisation_probability: float = 0.8
    token_size_bits: int = 32
    memory_choices: tuple[int, ...] = (2048, 4096, 8192)


@dataclass
class SyntheticApplication:
    """A generated application: its ALS plus its implementation library."""

    als: ApplicationLevelSpec
    library: ImplementationLibrary
    config: SyntheticConfig = field(default_factory=SyntheticConfig)


def generate_application(
    seed: int,
    config: SyntheticConfig | None = None,
    *,
    name: str | None = None,
    source_tile: str = "io_in",
    sink_tile: str = "io_out",
) -> SyntheticApplication:
    """Generate a random streaming application with implementations.

    The graph is a chain of ``stages`` kernels; when ``parallel_branches > 1``
    the middle kernels are replicated into parallel branches between a fork
    and a join stage, giving the series-parallel shapes typical of baseband
    and multimedia pipelines.
    """
    config = config or SyntheticConfig()
    if config.stages < 1:
        raise ValueError("a synthetic application needs at least one stage")
    rng = random.Random(seed)
    app_name = name or f"synthetic_{seed}"
    kpn = KPNGraph(app_name)
    kpn.add_process(Process("source", ProcessKind.SOURCE, pinned_tile=source_tile))
    kpn.add_process(Process("sink", ProcessKind.SINK, pinned_tile=sink_tile))

    stage_names = [f"k{i}" for i in range(config.stages)]
    for stage in stage_names:
        kpn.add_process(Process(stage))

    def tokens() -> int:
        return rng.randint(*config.tokens_range)

    channel_specs: list[tuple[str, str, int]] = []
    if config.parallel_branches <= 1 or config.stages < 4:
        nodes = ["source", *stage_names, "sink"]
        for producer, consumer in zip(nodes, nodes[1:]):
            channel_specs.append((producer, consumer, tokens()))
    else:
        fork, join = stage_names[0], stage_names[-1]
        middle = stage_names[1:-1]
        branches: list[list[str]] = [[] for _ in range(config.parallel_branches)]
        for index, stage in enumerate(middle):
            branches[index % config.parallel_branches].append(stage)
        channel_specs.append(("source", fork, tokens()))
        for branch in branches:
            previous = fork
            for stage in branch:
                channel_specs.append((previous, stage, tokens()))
                previous = stage
            channel_specs.append((previous, join, tokens()))
        channel_specs.append((join, "sink", tokens()))

    for index, (producer, consumer, count) in enumerate(channel_specs):
        kpn.add_channel(
            Channel(
                f"c{index}_{producer}_{consumer}",
                producer,
                consumer,
                tokens_per_iteration=count,
                token_size_bits=config.token_size_bits,
            )
        )

    als = ApplicationLevelSpec(kpn=kpn, qos=QoSConstraints(period_ns=config.period_ns))
    library = _generate_library(kpn, rng, config)
    return SyntheticApplication(als=als, library=library, config=config)


def _generate_library(
    kpn: KPNGraph, rng: random.Random, config: SyntheticConfig
) -> ImplementationLibrary:
    """Implementations for every kernel: a GPP fallback plus an optional specialised one."""
    library = ImplementationLibrary()
    general_purpose = config.tile_types[0]
    specialised_types = config.tile_types[1:]
    for process in kpn.mappable_processes():
        incoming = sum(c.tokens_per_iteration for c in kpn.incoming_channels(process.name)
                       if not c.is_control)
        outgoing = sum(c.tokens_per_iteration for c in kpn.outgoing_channels(process.name)
                       if not c.is_control)
        preferred_wcet = rng.randint(*config.wcet_range_cycles)
        preferred_energy = preferred_wcet * rng.uniform(0.2, 0.5)

        def implementation(tile_type: str, wcet: float, energy: float) -> Implementation:
            return Implementation(
                process=process.name,
                tile_type=tile_type,
                wcet_cycles=PhaseVector([1.0, max(wcet - 2.0, 1.0), 1.0]),
                input_rates={DEFAULT_PORT: PhaseVector([incoming, 0.0, 0.0])},
                output_rates={DEFAULT_PORT: PhaseVector([0.0, 0.0, outgoing])},
                energy_nj_per_iteration=energy,
                memory_bytes=rng.choice(list(config.memory_choices)),
            )

        gpp_wcet = preferred_wcet * rng.uniform(2.0, 4.0)
        gpp_energy = preferred_energy * rng.uniform(1.5, 3.0)
        library.add(implementation(general_purpose, gpp_wcet, gpp_energy))
        if specialised_types and rng.random() < config.specialisation_probability:
            library.add(
                implementation(rng.choice(specialised_types), preferred_wcet, preferred_energy)
            )
    return library


def generate_platform(
    seed: int,
    *,
    width: int = 3,
    height: int = 3,
    tile_type_mix: dict[str, float] | None = None,
    frequency_mhz: float = 200.0,
    link_capacity_bits_per_s: float = 4e9,
    io_positions: tuple[tuple[int, int], tuple[int, int]] | None = None,
    name: str | None = None,
) -> Platform:
    """Generate a ``width`` x ``height`` mesh platform with a random tile-type mix.

    Two I/O tiles (``io_in`` and ``io_out``) are always placed (by default in
    opposite corners) so that the synthetic applications' pinned source and
    sink processes have a home; the remaining routers receive processing
    tiles drawn from ``tile_type_mix`` (name -> probability weight).
    """
    rng = random.Random(seed)
    mix = tile_type_mix or {"GPP": 0.5, "DSP": 0.3, "ACCEL": 0.2}
    if not mix:
        raise ValueError("tile_type_mix must not be empty")
    builder = (
        PlatformBuilder(name or f"synthetic_platform_{seed}")
        .mesh(width, height, link_capacity_bits_per_s=link_capacity_bits_per_s,
              router_frequency_mhz=frequency_mhz)
        .tile_type("IO", frequency_mhz=frequency_mhz, is_processing=False)
    )
    for type_name in mix:
        builder.tile_type(type_name, frequency_mhz=frequency_mhz)

    if io_positions is None:
        io_positions = ((0, 0), (width - 1, height - 1))
    io_in, io_out = io_positions
    builder.tile("io_in", "IO", io_in)
    builder.tile("io_out", "IO", io_out)

    type_names = list(mix.keys())
    weights = [mix[t] for t in type_names]
    counter = 0
    for y in range(height):
        for x in range(width):
            if (x, y) in (tuple(io_in), tuple(io_out)):
                continue
            tile_type = rng.choices(type_names, weights=weights, k=1)[0]
            counter += 1
            builder.tile(
                f"{tile_type.lower()}{counter}", tile_type, (x, y), memory_bytes=128 * 1024
            )
    return builder.build()


def generate_region_mesh(
    regions: int,
    span: int,
    *,
    name: str | None = None,
    link_capacity_bits_per_s: float = 4e9,
    frequency_mhz: float = 200.0,
    max_processes_per_tile: int = 1,
    tile_memory_bytes: int = 128 * 1024,
) -> Platform:
    """A ``(regions*span)``-square mesh with one I/O tile per region.

    The mesh splits cleanly into a ``regions`` x ``regions`` grid of
    ``span`` x ``span`` rectangles (``RegionPartition.grid(platform,
    regions, regions)``), and every rectangle hosts its own pinned I/O tile
    named ``io_r{column}_{row}`` — the naming contract region-pinned
    traffic classes rely on.  Applications can therefore live entirely
    inside one region, which is the topology region sharding needs to pay
    off.  Processing tiles alternate deterministically between GPP and a
    half-clocked DSP (heterogeneity without randomness).

    ``max_processes_per_tile`` and ``tile_memory_bytes`` shape the packing
    regime: the default single-slot tiles make placement a pure matching,
    while multi-slot tiles with tight memory turn it into the bin-packing
    shape where first-fit strands memory — the regime the stochastic rescue
    lane's fill sweep stresses.
    """
    if regions < 1 or span < 1:
        raise ValueError("a region mesh needs at least one region and one router per edge")
    width = height = regions * span
    builder = (
        PlatformBuilder(name or f"region_mesh_{regions}x{regions}")
        .mesh(
            width,
            height,
            link_capacity_bits_per_s=link_capacity_bits_per_s,
            router_frequency_mhz=frequency_mhz,
        )
        .tile_type("IO", frequency_mhz=frequency_mhz, is_processing=False)
        .tile_type("GPP", frequency_mhz=frequency_mhz)
        .tile_type("DSP", frequency_mhz=frequency_mhz / 2)
    )
    counter = 0
    for y in range(height):
        for x in range(width):
            if x % span == 0 and y % span == 0:
                builder.tile(f"io_r{x // span}_{y // span}", "IO", (x, y))
                continue
            tile_type = "DSP" if (x + y) % 3 == 0 else "GPP"
            counter += 1
            builder.tile(
                f"{tile_type.lower()}{counter}",
                tile_type,
                (x, y),
                memory_bytes=tile_memory_bytes,
                max_processes=max_processes_per_tile,
            )
    return builder.build()


def region_io_tile(column: int, row: int) -> str:
    """Name of the pinned I/O tile of region ``r{column}_{row}`` (see
    :func:`generate_region_mesh`)."""
    return f"io_r{column}_{row}"


def cross_region_io_pairs(regions: int) -> list[tuple[str, str]]:
    """Opposite-corner I/O tile pairs of a ``regions`` x ``regions`` mesh.

    Each region cell is paired with its point reflection through the grid
    centre and every unordered pair appears once, source in the
    lexicographically smaller cell — the deterministic cross-region traffic
    matrix the inter-region benchmarks and tests share.  A centre cell (odd
    ``regions``) pairs with nobody and is skipped.
    """
    if regions < 2:
        return []
    pairs: list[tuple[str, str]] = []
    for row in range(regions):
        for column in range(regions):
            partner = (regions - 1 - column, regions - 1 - row)
            if (column, row) < partner:
                pairs.append((region_io_tile(column, row), region_io_tile(*partner)))
    return pairs


def generate_scenario(
    seed: int,
    application_count: int,
    *,
    config: SyntheticConfig | None = None,
) -> list[SyntheticApplication]:
    """Generate several independent applications for a multi-application scenario.

    Each application carries its own implementation library (applications may
    reuse kernel names, so the libraries are kept per-application and passed
    to the resource manager at start time rather than merged).
    """
    rng = random.Random(seed)
    applications: list[SyntheticApplication] = []
    for index in range(application_count):
        app_seed = rng.randint(0, 2**31 - 1)
        app = generate_application(app_seed, config, name=f"app{index}_{app_seed}")
        applications.append(app)
    return applications
