"""Arrival-process generators: timed workloads for the event-driven engine.

The paper's admission-rate-versus-load story needs *streams* of start/stop
events, not hand-written scenarios.  This module generates them: an
arrival process (Poisson, bursty, or periodic-with-jitter) per *traffic
class*, each class carrying its own synthetic application shape, priority,
admission deadline window and holding-time distribution.  Mixing several
classes into one :class:`~repro.runtime.scenario.Scenario` gives the
heterogeneous event streams the engine is built to drain — and the events'
monotonic sequence numbers keep the merged replay order deterministic.

All generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from repro.runtime.events import ScenarioEvent, StartEvent, StopEvent
from repro.runtime.scenario import Scenario
from repro.workloads.synthetic import (
    SyntheticConfig,
    cross_region_io_pairs,
    generate_application,
)

__all__ = [
    "PoissonArrivals",
    "BurstyArrivals",
    "PeriodicArrivals",
    "TrafficClass",
    "cross_region_classes",
    "generate_workload",
    "offered_rate_per_s",
    "priority_overload_mix",
]

_NS_PER_S = 1e9


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals: exponential inter-arrival gaps at ``rate_per_s``."""

    rate_per_s: float

    def arrival_times_ns(self, rng: random.Random, horizon_ns: float) -> list[float]:
        """Arrival instants in (0, horizon), in increasing order."""
        if self.rate_per_s <= 0:
            return []
        times: list[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(self.rate_per_s) * _NS_PER_S
            if t >= horizon_ns:
                return times
            times.append(t)

    def scaled(self, factor: float) -> "PoissonArrivals":
        """The same process at ``factor`` times the rate."""
        return replace(self, rate_per_s=self.rate_per_s * factor)

    def nominal_rate_per_s(self) -> float:
        """Long-run offered arrivals per second."""
        return self.rate_per_s


@dataclass(frozen=True)
class BurstyArrivals:
    """Bursts of back-to-back arrivals at Poisson-distributed burst epochs.

    Burst epochs arrive at ``burst_rate_per_s``; each burst holds a uniform
    ``burst_size_range`` number of arrivals spaced ``intra_burst_gap_ns``
    apart — the "everyone turns their receiver on at once" shape that
    stresses a drain far harder than the same average rate spread smoothly.
    """

    burst_rate_per_s: float
    burst_size_range: tuple[int, int] = (2, 5)
    intra_burst_gap_ns: float = 1_000.0

    def arrival_times_ns(self, rng: random.Random, horizon_ns: float) -> list[float]:
        """Arrival instants in (0, horizon), in increasing order."""
        if self.burst_rate_per_s <= 0:
            return []
        times: list[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(self.burst_rate_per_s) * _NS_PER_S
            if t >= horizon_ns:
                # Bursts may straddle the next epoch; keep the stream sorted.
                times.sort()
                return times
            size = rng.randint(*self.burst_size_range)
            for index in range(size):
                arrival = t + index * self.intra_burst_gap_ns
                if arrival < horizon_ns:
                    times.append(arrival)

    def scaled(self, factor: float) -> "BurstyArrivals":
        """The same burst shape at ``factor`` times the burst rate."""
        return replace(self, burst_rate_per_s=self.burst_rate_per_s * factor)

    def nominal_rate_per_s(self) -> float:
        """Long-run offered arrivals per second (burst rate x mean burst size)."""
        low, high = self.burst_size_range
        return self.burst_rate_per_s * (low + high) / 2.0


@dataclass(frozen=True)
class PeriodicArrivals:
    """One arrival every ``period_ns``, optionally jittered, from ``offset_ns``."""

    period_ns: float
    jitter_ns: float = 0.0
    offset_ns: float = 0.0

    def arrival_times_ns(self, rng: random.Random, horizon_ns: float) -> list[float]:
        """Arrival instants in [offset, horizon), in increasing order."""
        if self.period_ns <= 0:
            raise ValueError("periodic arrivals need a positive period")
        times: list[float] = []
        count = max(0, math.ceil((horizon_ns - self.offset_ns) / self.period_ns))
        for index in range(count):
            t = self.offset_ns + index * self.period_ns
            if self.jitter_ns:
                t += rng.uniform(0.0, self.jitter_ns)
            if 0.0 <= t < horizon_ns:
                times.append(t)
        return times

    def scaled(self, factor: float) -> "PeriodicArrivals":
        """The same process at ``factor`` times the rate (period / factor)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self, period_ns=self.period_ns / factor, jitter_ns=self.jitter_ns / factor
        )

    def nominal_rate_per_s(self) -> float:
        """Long-run offered arrivals per second."""
        return _NS_PER_S / self.period_ns


@dataclass(frozen=True)
class TrafficClass:
    """One stream of a workload mix: an arrival process plus what arrives.

    Parameters
    ----------
    name:
        Stream name; generated applications are named ``{name}_{index}``.
    arrivals:
        The arrival process (:class:`PoissonArrivals`,
        :class:`BurstyArrivals` or :class:`PeriodicArrivals`).
    config:
        Shape of the generated synthetic applications.
    priority:
        Queue priority of this class's admission requests.
    admission_window_ns:
        Relative admission deadline: a request still pending this long
        after its arrival expires instead of admitting late.  ``None``
        waits forever.
    hold_range_ns:
        Uniform range of how long an admitted application runs before its
        departure event; ``None`` means it never leaves.
    source_tile / sink_tile:
        Pinned I/O tiles of the generated applications — pinning a class to
        one region's I/O tile is what gives that region's lane its traffic.
    """

    name: str
    arrivals: PoissonArrivals | BurstyArrivals | PeriodicArrivals
    config: SyntheticConfig = SyntheticConfig()
    priority: int = 0
    admission_window_ns: float | None = None
    hold_range_ns: tuple[float, float] | None = None
    source_tile: str = "io_in"
    sink_tile: str = "io_out"

    def scaled(self, factor: float) -> "TrafficClass":
        """The same class with its arrival rate scaled by ``factor``."""
        return replace(self, arrivals=self.arrivals.scaled(factor))


def generate_workload(
    seed: int,
    horizon_ns: float,
    classes: list[TrafficClass] | tuple[TrafficClass, ...],
    *,
    name: str = "generated",
) -> Scenario:
    """Generate a scenario from a mix of traffic classes.

    Per class, arrival instants are drawn over the horizon and each arrival
    becomes a fresh synthetic application (its own KPN and implementation
    library) with a :class:`~repro.runtime.events.StartEvent` carrying the
    class's priority and absolute deadline, plus — when the class has a
    holding-time range — a matching departure
    :class:`~repro.runtime.events.StopEvent`.  Everything is derived from
    ``seed`` and the class name, so two calls with equal arguments produce
    identical scenarios (modulo event sequence numbers, which only break
    equal-time ties deterministically).
    """
    if horizon_ns <= 0:
        raise ValueError("workload horizon must be positive")
    scenario = Scenario(name, duration_ns=horizon_ns)
    for traffic in classes:
        rng = random.Random(f"{seed}:{traffic.name}")
        events: list[ScenarioEvent] = []
        for index, time_ns in enumerate(traffic.arrivals.arrival_times_ns(rng, horizon_ns)):
            app = generate_application(
                rng.randint(0, 2**31 - 1),
                traffic.config,
                name=f"{traffic.name}_{index}",
                source_tile=traffic.source_tile,
                sink_tile=traffic.sink_tile,
            )
            deadline = (
                time_ns + traffic.admission_window_ns
                if traffic.admission_window_ns is not None
                else None
            )
            events.append(
                StartEvent(
                    time_ns=time_ns,
                    als=app.als,
                    library=app.library,
                    priority=traffic.priority,
                    deadline_ns=deadline,
                )
            )
            if traffic.hold_range_ns is not None:
                low, high = traffic.hold_range_ns
                if low <= 0:
                    raise ValueError("holding times must be positive")
                departure = time_ns + rng.uniform(low, high)
                if departure < horizon_ns:
                    events.append(
                        StopEvent(time_ns=departure, application=app.als.name)
                    )
        scenario.extend(events)
    return scenario


def cross_region_classes(
    regions: int,
    rate_per_s: float,
    *,
    config: SyntheticConfig | None = None,
    priority: int = 0,
    admission_window_ns: float | None = None,
    hold_range_ns: tuple[float, float] | None = None,
    name_prefix: str = "x",
) -> list[TrafficClass]:
    """Poisson traffic classes whose applications *span* region boundaries.

    One class per opposite-corner region pair of a ``regions`` x ``regions``
    mesh (see :func:`~repro.workloads.synthetic.cross_region_io_pairs`),
    each generating applications whose pinned source sits in one region and
    pinned sink in the other — exactly the arrivals that used to fall into
    the serialized global lane and that the inter-region planner admits
    over budgeted corridors.  ``rate_per_s`` is the aggregate cross-region
    rate, split evenly over the pairs.
    """
    pairs = cross_region_io_pairs(regions)
    if not pairs:
        return []
    per_pair = rate_per_s / len(pairs)
    return [
        TrafficClass(
            f"{name_prefix}{index}_{source}_{sink}",
            PoissonArrivals(rate_per_s=per_pair),
            config=config or SyntheticConfig(),
            priority=priority,
            admission_window_ns=admission_window_ns,
            hold_range_ns=hold_range_ns,
            source_tile=source,
            sink_tile=sink,
        )
        for index, (source, sink) in enumerate(pairs)
    ]


def priority_overload_mix(
    regions: int,
    *,
    high_rate_per_s: float,
    low_rate_per_s: float,
    config: SyntheticConfig | None = None,
    high_priority: int = 2,
    low_priority: int = 0,
    admission_window_ns: float | None = None,
    hold_range_ns: tuple[float, float] | None = None,
) -> list[TrafficClass]:
    """A two-tier workload mix: protected traffic plus a sheddable flood.

    Per region of a ``regions`` x ``regions`` mesh (I/O tiles named
    ``io_r{cx}_{cy}``, as produced by
    :func:`~repro.workloads.synthetic.generate_region_mesh`), one
    high-priority Poisson class at ``high_rate_per_s`` and one low-priority
    class at ``low_rate_per_s`` — the workload shape the load-shedding
    governor exists for: scale the mix up and the low tier drowns the high
    tier unless low-priority arrivals are shed before mapping work is spent
    on them.  Both rates are per class (per region).
    """
    effective = config or SyntheticConfig()
    classes: list[TrafficClass] = []
    for cx in range(regions):
        for cy in range(regions):
            io_tile = f"io_r{cx}_{cy}"
            for tier, priority, rate in (
                ("hi", high_priority, high_rate_per_s),
                ("lo", low_priority, low_rate_per_s),
            ):
                classes.append(
                    TrafficClass(
                        f"{tier}_r{cx}_{cy}",
                        PoissonArrivals(rate_per_s=rate),
                        config=effective,
                        priority=priority,
                        admission_window_ns=admission_window_ns,
                        hold_range_ns=hold_range_ns,
                        source_tile=io_tile,
                        sink_tile=io_tile,
                    )
                )
    return classes


def offered_rate_per_s(classes: list[TrafficClass] | tuple[TrafficClass, ...]) -> float:
    """Aggregate nominal offered load of a mix, in arrivals per second."""
    return sum(traffic.arrivals.nominal_rate_per_s() for traffic in classes)
