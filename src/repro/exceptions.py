"""Exception hierarchy for the spatial-mapping library.

All exceptions raised by this package derive from :class:`ReproError`, so a
caller embedding the mapper in a resource manager can catch a single base
class.  The sub-classes mirror the major subsystems: model construction,
dataflow analysis, platform/NoC handling and the mapping process itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ModelError(ReproError):
    """An application or platform model is malformed or inconsistent."""


class KPNError(ModelError):
    """A Kahn Process Network is malformed (unknown process, duplicate name, ...)."""


class CSDFError(ModelError):
    """A cyclo-static dataflow graph is malformed or inconsistent."""


class InconsistentGraphError(CSDFError):
    """A CSDF graph has no repetition vector (rate inconsistency)."""


class DeadlockError(CSDFError):
    """Self-timed execution of a CSDF graph deadlocks."""


class PlatformError(ModelError):
    """A platform description is malformed (unknown tile, bad topology, ...)."""


class RoutingError(ReproError):
    """No route satisfying the capacity constraints could be found."""


class MappingError(ReproError):
    """A mapping operation failed (inadequate, inadherent or infeasible result)."""


class InadequateMappingError(MappingError):
    """A process was assigned to a tile type for which it has no implementation."""


class InadherentMappingError(MappingError):
    """A mapping over-subscribes a tile or a NoC link."""


class InfeasibleMappingError(MappingError):
    """A mapping violates the application's QoS constraints."""


class NoFeasibleMappingError(MappingError):
    """The spatial mapper exhausted its search without finding a feasible mapping."""


class AdmissionError(ReproError):
    """Base class for run-time resource-manager admission errors."""


class AdmissionRejected(AdmissionError):
    """The admission pipeline rejected an application start request."""


class UnknownApplication(AdmissionError):
    """An operation named an application the resource manager is not running."""


class ConfigurationError(ReproError):
    """Invalid configuration value passed to an algorithm."""
