"""Corridor selection: which boundary links carry a cross-region channel.

A corridor is the region-level route of one channel: an ordered list of
*hops*, each hop naming the boundary link that carries the channel from one
region into the next.  Selection happens in two stages:

1. **Region path** — Dijkstra over the region adjacency graph (regions are
   nodes, ordered pairs with boundary links are edges).  Edge weights are
   ``1 + pressure``, where the pressure of a pair combines its corridor
   *budget* pressure (reserved / reservable, from
   :class:`~repro.interregion.budgets.CorridorBudgets`) with the *load*
   pressure of its best boundary link (reserved throughput / capacity, from
   the live :class:`~repro.platform.state.PlatformState`).  Saturated pairs
   — not enough residual budget, or no boundary link with enough residual
   capacity — are excluded, so a congested boundary diverts corridors
   around itself before it rejects them.
2. **Link choice per hop** — among the pair's admissible boundary links,
   pick the one minimising ``(detour, distance-to-target, load fraction,
   name)``: detour measures from the previous crossing to the link and on
   to the channel's target router, and the distance-to-target key breaks
   detour ties so consecutive hops line up instead of zig-zagging.  The
   deterministic tie-break keeps planning a pure function of (application,
   budgets, state), which is what differential tests pin.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from repro.interregion.budgets import CorridorBudgets, PairKey
from repro.platform.noc import Position
from repro.platform.regions import RegionPartition
from repro.platform.routing import manhattan_distance


@dataclass(frozen=True)
class CorridorHop:
    """One region-to-region hop of a corridor: its boundary link."""

    source_region: str
    target_region: str
    link_name: str
    entry_position: Position
    exit_position: Position

    @property
    def pair(self) -> PairKey:
        """The ordered region pair this hop crosses."""
        return (self.source_region, self.target_region)


@dataclass(frozen=True)
class Corridor:
    """The region-level route of one cross-region channel."""

    source_region: str
    target_region: str
    hops: tuple[CorridorHop, ...]

    def region_path(self) -> tuple[str, ...]:
        """The regions the corridor traverses, source first."""
        return (self.source_region,) + tuple(hop.target_region for hop in self.hops)


class CorridorSelector:
    """Picks boundary links for cross-region channels against live budgets."""

    def __init__(self, partition: RegionPartition, budgets: CorridorBudgets) -> None:
        self.partition = partition
        self.budgets = budgets
        self._neighbours: dict[str, tuple[str, ...]] = {}
        outgoing: dict[str, list[str]] = {}
        for source, target in budgets.pairs():
            outgoing.setdefault(source, []).append(target)
        for region in partition:
            self._neighbours[region.name] = tuple(sorted(outgoing.get(region.name, ())))

    # ------------------------------------------------------------------ #
    def _pair_admissible(
        self,
        pair: PairKey,
        required_bits_per_s: float,
        link_loads: Mapping[str, float],
        planned: Mapping[PairKey, float],
    ) -> bool:
        """Whether the pair can still carry one more ``required`` channel."""
        residual = self.budgets.residual_bits_per_s(*pair) - planned.get(pair, 0.0)
        if residual + 1e-9 < required_bits_per_s:
            return False
        return any(
            self._link_residual(name, link_loads) + 1e-9 >= required_bits_per_s
            for name in self.budgets.links_between(*pair)
        )

    def _link_residual(self, link_name: str, link_loads: Mapping[str, float]) -> float:
        link = self.partition.platform.noc.link_by_name(link_name)
        return link.capacity_bits_per_s - link_loads.get(link_name, 0.0)

    def _pair_pressure(
        self,
        pair: PairKey,
        link_loads: Mapping[str, float],
        planned: Mapping[PairKey, float],
    ) -> float:
        """Routing pressure of a pair: budget use combined with link load."""
        capacity = self.budgets.capacity_bits_per_s(*pair)
        budget_pressure = 1.0
        if capacity > 0.0:
            used = self.budgets.reserved_bits_per_s(*pair) + planned.get(pair, 0.0)
            budget_pressure = used / capacity
        best_load = 1.0
        for name in self.budgets.links_between(*pair):
            link = self.partition.platform.noc.link_by_name(name)
            if link.capacity_bits_per_s <= 0.0:
                continue
            load = link_loads.get(name, 0.0) / link.capacity_bits_per_s
            best_load = min(best_load, load)
        return max(budget_pressure, best_load)

    # ------------------------------------------------------------------ #
    def region_path(
        self,
        source_region: str,
        target_region: str,
        required_bits_per_s: float = 0.0,
        *,
        link_loads: Mapping[str, float] | None = None,
        planned: Mapping[PairKey, float] | None = None,
        allowed_regions: frozenset[str] | None = None,
    ) -> tuple[str, ...] | None:
        """Cheapest admissible region sequence from source to target region.

        Returns ``None`` when no admissible path exists.  ``planned`` holds
        budget claims of the admission being planned but not yet committed,
        so several channels of one application see each other's pressure.
        ``allowed_regions`` confines the search (the coordinator's lock
        subset must be an upper bound of what planning may touch).
        """
        if source_region == target_region:
            return (source_region,)
        link_loads = link_loads or {}
        planned = planned or {}
        distances: dict[str, float] = {source_region: 0.0}
        previous: dict[str, str] = {}
        queue: list[tuple[float, str]] = [(0.0, source_region)]
        visited: set[str] = set()
        while queue:
            cost, region = heapq.heappop(queue)
            if region in visited:
                continue
            visited.add(region)
            if region == target_region:
                break
            for neighbour in self._neighbours.get(region, ()):
                if allowed_regions is not None and neighbour not in allowed_regions:
                    continue
                pair = (region, neighbour)
                if not self._pair_admissible(pair, required_bits_per_s, link_loads, planned):
                    continue
                candidate = cost + 1.0 + self._pair_pressure(pair, link_loads, planned)
                if candidate < distances.get(neighbour, float("inf")):
                    distances[neighbour] = candidate
                    previous[neighbour] = region
                    heapq.heappush(queue, (candidate, neighbour))
        if target_region not in distances:
            return None
        path = [target_region]
        while path[-1] != source_region:
            path.append(previous[path[-1]])
        path.reverse()
        return tuple(path)

    def select(
        self,
        source_position: Position,
        target_position: Position,
        source_region: str,
        target_region: str,
        required_bits_per_s: float,
        *,
        link_loads: Mapping[str, float] | None = None,
        planned: Mapping[PairKey, float] | None = None,
        allowed_regions: frozenset[str] | None = None,
    ) -> Corridor | None:
        """The corridor for one channel, or ``None`` when none is admissible.

        The region path is chosen first; each hop then picks the boundary
        link minimising ``(detour, distance-to-target, load fraction,
        name)``, where detour runs from the previous crossing over the link
        to the channel's target router (a link towards the straight line
        between the endpoints shortens the stitched route, and the
        distance-to-target tie-break lines consecutive crossings up).
        """
        link_loads = link_loads or {}
        path = self.region_path(
            source_region,
            target_region,
            required_bits_per_s,
            link_loads=link_loads,
            planned=planned,
            allowed_regions=allowed_regions,
        )
        if path is None:
            return None
        noc = self.partition.platform.noc
        hops: list[CorridorHop] = []
        current = tuple(source_position)
        for a, b in zip(path, path[1:]):
            best: tuple[float, float, float, str] | None = None
            for name in self.budgets.links_between(a, b):
                if self._link_residual(name, link_loads) + 1e-9 < required_bits_per_s:
                    continue
                link = noc.link_by_name(name)
                # Sequential greedy: measure from the previous crossing, and
                # break detour ties toward the target so consecutive hops
                # line up instead of zig-zagging across their boundaries.
                to_target = float(manhattan_distance(link.target, target_position))
                detour = float(manhattan_distance(current, link.source)) + to_target
                load = link_loads.get(name, 0.0) / link.capacity_bits_per_s
                if best is None or (detour, to_target, load, name) < best:
                    best = (detour, to_target, load, name)
            if best is None:
                return None
            link = noc.link_by_name(best[3])
            current = tuple(link.target)
            hops.append(
                CorridorHop(
                    source_region=a,
                    target_region=b,
                    link_name=link.name,
                    entry_position=link.source,
                    exit_position=link.target,
                )
            )
        return Corridor(
            source_region=source_region, target_region=target_region, hops=tuple(hops)
        )
