"""The inter-region admission planner: segments + budgeted boundary hops.

The staged pipeline confines an admission to one region; an application
whose pinned tiles span regions used to fall through to the *global lane* —
an unrestricted whole-platform mapping committed under a transaction that
needs every region lock.  One such admission therefore stalled every
regional worker and paid a search proportional to the whole platform.

:class:`InterRegionPlanner` replaces that with a scoped, budgeted pipeline
stage.  A plan decomposes the application along region boundaries:

1. **Segmentation** — every mappable process is assigned to one of the
   application's *anchor regions* (the regions of its pinned tiles) by
   nearest-pin graph distance; each segment becomes a sub-application
   containing its processes and the channels internal to it.
2. **Corridor selection** — every cross-segment channel gets a
   :class:`~repro.interregion.corridors.Corridor` (boundary links chosen
   against residual :class:`~repro.interregion.budgets.CorridorBudgets`)
   *before* the segments are mapped.
3. **Per-region mapping** — each segment runs through the ordinary
   mapper restricted to its region (the existing ``region=`` restriction),
   so the per-segment work is proportional to the shard, not the
   platform.  Each cut channel is represented in
   its segment by a *pinned pseudo-endpoint* at the corridor's boundary
   router, so the region-local search pulls the channel's real endpoint
   toward the boundary it will cross — keeping the stitched route (and its
   energy) close to what a whole-platform search would produce.  Segments
   skip the per-segment step-4 analysis; feasibility is judged once, on
   the whole application.
4. **Corridor stitching** — cross-segment channels get stitched routes:
   region-internal shortest-path legs joined by the corridor's boundary
   hops.
5. **Whole-application feasibility** — the composed mapping is checked for
   adherence and run through the step-4 dataflow analysis on the *full*
   application graph, exactly as the global lane would, so planner
   admissions satisfy the same QoS criteria as global-lane admissions.
6. **Atomic commit** — allocations are written under one transaction
   scoped to the touched regions plus the chosen boundary links, with the
   corridor budget reservations journaled alongside; a failure unwinds
   both bit-identically.

Planning mutates the platform state only inside a rolled-back scratch
transaction (the step-3 discipline), so a rejected plan leaves no trace.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import KPNError, PlatformError, RoutingError
from repro.interregion.budgets import CorridorBudgets, PairKey
from repro.interregion.corridors import Corridor, CorridorSelector
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process, ProcessKind
from repro.mapping.assignment import ChannelRoute
from repro.mapping.cost import manhattan_cost, mapping_energy_nj
from repro.mapping.mapping import Mapping
from repro.mapping.properties import adherence_violations
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.regions import Region
from repro.platform.routing import capacity_aware_shortest_path, manhattan_distance
from repro.platform.state import LinkAllocation
from repro.runtime.pipeline import AdmissionDecision, AdmissionPipeline
from repro.spatialmapper.mapper import SpatialMapper
from repro.spatialmapper.step3_routing import channel_throughput_bits_per_s
from repro.spatialmapper.step4_feasibility import check_feasibility


#: Decision reason of a successful inter-region admission.  Callers that
#: settle decisions (the engine's lanes) compare against this to attribute
#: an admission to the planner even when it ran inside the full pipeline.
INTERREGION_ADMITTED = "admitted (inter-region corridors)"


class PlanRejected(Exception):
    """Internal control flow: the plan cannot be completed; reason attached."""


class CorridorScope:
    """Transaction scope of an inter-region commit.

    Covers the tiles and internal links of every touched region plus the
    corridor's boundary links — the exact key set an inter-region admission
    may write, so sibling admissions into untouched regions keep independent
    journals.
    """

    def __init__(self, regions: tuple[Region, ...], boundary_links: frozenset[str]) -> None:
        self.regions = regions
        self.boundary_links = boundary_links

    def covers_tile(self, tile_name: str) -> bool:
        return any(region.covers_tile(tile_name) for region in self.regions)

    def covers_link(self, link_name: str) -> bool:
        if link_name in self.boundary_links:
            return True
        return any(region.covers_link(link_name) for region in self.regions)


class InterRegionPlanner:
    """Plans and commits cross-region admissions over budgeted corridors.

    Parameters
    ----------
    pipeline:
        The admission pipeline whose platform, state, mapper and partition
        the planner shares.  The pipeline must be region-sharded.
    budgets:
        Corridor budgets; a fresh inventory over the pipeline's partition is
        created when omitted.
    budget_fraction:
        Fraction of boundary capacity reservable by corridors (used only
        when ``budgets`` is omitted).
    """

    def __init__(
        self,
        pipeline: AdmissionPipeline,
        *,
        budgets: CorridorBudgets | None = None,
        budget_fraction: float = 0.5,
    ) -> None:
        if pipeline.partition is None:
            raise PlatformError("the inter-region planner needs a region-sharded pipeline")
        self.pipeline = pipeline
        self.partition = pipeline.partition
        self.budgets = budgets or CorridorBudgets(self.partition, budget_fraction)
        self.selector = CorridorSelector(self.partition, self.budgets)
        # Segments skip the per-segment step-4 analysis: feasibility is
        # decided once, on the composed whole-application graph, so running
        # it per sub-graph would only pay the dataflow simulation twice.
        self._segment_config = replace(pipeline.config, run_feasibility_analysis=False)
        self._segment_mappers: dict[int, SpatialMapper] = {}

    # ------------------------------------------------------------------ #
    # Applicability and lock scope
    # ------------------------------------------------------------------ #
    def anchor_regions(self, als: ApplicationLevelSpec) -> tuple[str, ...]:
        """Sorted names of the regions the application's pinned tiles occupy."""
        names: set[str] = set()
        for process in als.kpn.pinned_processes():
            if process.pinned_tile:
                names.add(self.partition.region_of_tile(process.pinned_tile).name)
        return tuple(sorted(names))

    def scope_for(self, als: ApplicationLevelSpec) -> tuple[str, ...] | None:
        """Upper bound of the regions a plan for ``als`` may touch.

        ``None`` when the planner is not applicable (fewer than two anchor
        regions).  The scope is the anchors plus every region on the
        pressure-weighted region paths between each ordered anchor pair —
        planning later confines its corridors to this set, so the lock
        subset acquired over it is sufficient.
        """
        anchors = self.anchor_regions(als)
        if len(anchors) < 2:
            return None
        scope: set[str] = set(anchors)
        for source in anchors:
            for target in anchors:
                if source == target:
                    continue
                path = self.selector.region_path(source, target)
                if path is not None:
                    scope.update(path)
        return tuple(sorted(scope))

    # ------------------------------------------------------------------ #
    # The full plan-and-commit trip
    # ------------------------------------------------------------------ #
    def decide(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None = None,
        *,
        scope: tuple[str, ...] | None = None,
    ) -> AdmissionDecision:
        """Plan, validate and (on success) commit one cross-region admission.

        Never raises on an infeasible plan — the decision's ``reason`` says
        why, and the caller falls back to the global lane.  ``scope``
        optionally pins the allowed region set (the coordinator passes the
        subset it locked); when omitted it is recomputed, which yields the
        same set for an unchanged state.
        """
        started = time.perf_counter()
        if scope is None:
            scope = self.scope_for(als)
        if scope is None:
            return AdmissionDecision(
                als.name,
                False,
                "inter-region: not applicable (pinned tiles span fewer than two regions)",
                origin="interregion",
            )
        try:
            mapping, reservations, boundary_links = self._plan(als, library, frozenset(scope))
            result = self._validate(als, library, mapping)
            self._commit(als, result, reservations, boundary_links)
        except PlanRejected as rejection:
            return AdmissionDecision(
                als.name,
                False,
                f"inter-region: {rejection}",
                mapping_runtime_s=time.perf_counter() - started,
                origin="interregion",
            )
        return AdmissionDecision(
            als.name,
            True,
            INTERREGION_ADMITTED,
            result=result,
            mapping_runtime_s=time.perf_counter() - started,
            origin="interregion",
        )

    # ------------------------------------------------------------------ #
    # Planning (scratch work, rolled back)
    # ------------------------------------------------------------------ #
    def _plan(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None,
        allowed_regions: frozenset[str],
    ) -> tuple[Mapping, list[tuple[PairKey, float]], frozenset[str]]:
        """Produce the composed mapping plus its corridor budget claims.

        All tentative allocations happen inside a scratch transaction that
        is rolled back before returning, so the state is left bit-identical
        whether the plan succeeds or not.
        """
        segments, nearest_pin = self._segments(als)
        segment_of: dict[str, str] = {
            name: region for region, members in segments.items() for name in members
        }
        cross = self._cross_channels(als, segment_of)
        corridors, reservations, boundary_links = self._select_corridors(
            als, cross, segment_of, nearest_pin, allowed_regions
        )
        state = self.pipeline.state
        mapper = self._segment_mapper(library)
        composed = Mapping(als.name)
        with state.transaction() as scratch:
            try:
                for region_name in sorted(segments):
                    sub_als = self._segment_als(
                        als, region_name, segments[region_name], cross, segment_of, corridors
                    )
                    if not sub_als.kpn.mappable_processes():
                        continue
                    region = self.partition.region(region_name)
                    result = mapper.map(sub_als, state, region=region)
                    if not result.status.at_least(MappingStatus.ADHERENT):
                        reason = (
                            result.feasibility.reason
                            if result.feasibility and result.feasibility.reason
                            else f"segment mapping status {result.status.value}"
                        )
                        raise PlanRejected(
                            f"segment in region {region_name!r} failed: {reason}"
                        )
                    filtered = self._filter_segment_mapping(als, result.mapping)
                    composed.assign_all(filtered.assignments)
                    for route in filtered.routes:
                        composed.add_route(route)
                    try:
                        self._apply(als.name, filtered)
                    except PlatformError as error:
                        raise PlanRejected(
                            f"segment in region {region_name!r} does not fit: {error}"
                        ) from None
                self._stitch(als, cross, composed, corridors)
            finally:
                scratch.rollback()
        return composed, reservations, boundary_links

    def _segment_mapper(self, library: ImplementationLibrary | None) -> SpatialMapper:
        """A mapper over the step-4-free segment config (cached per library).

        The cache is keyed by library identity and bounded implicitly: one
        entry for the pipeline's default library plus one most-recent custom
        library, mirroring :meth:`AdmissionPipeline.mapper_for`.
        """
        effective = library if library is not None else self.pipeline.library
        key = id(effective)
        mapper = self._segment_mappers.get(key)
        if mapper is None or mapper.library is not effective:
            # No result cache: every plan builds fresh sub-ALS objects, and
            # cache entries are keyed on ALS identity — segment entries
            # could never be served and would only evict the region
            # workers' hot entries from the shared LRU.
            mapper = SpatialMapper(
                self.pipeline.platform,
                effective,
                self._segment_config,
                cache=None,
            )
            default_key = id(self.pipeline.library)
            if key != default_key:
                # Keep the default-library mapper; evict older custom ones.
                for stale in [
                    existing
                    for existing in self._segment_mappers
                    if existing not in (default_key, key)
                ]:
                    del self._segment_mappers[stale]
            self._segment_mappers[key] = mapper
        return mapper

    def _segments(
        self, als: ApplicationLevelSpec
    ) -> tuple[dict[str, set[str]], dict[str, str]]:
        """Assign every process to an anchor region by nearest-pin distance.

        Pinned processes belong to their pinned tile's region; each mappable
        process joins the anchor region of its nearest pinned process in the
        (undirected) channel graph, ties broken by sorted region name — a
        deterministic cut that keeps low-traffic channels long and heavy
        process chains together with their I/O.  Also returns each process's
        nearest pinned process, used as a position proxy for corridor
        selection before placement exists.
        """
        pin_region: dict[str, str] = {}
        for process in als.kpn.pinned_processes():
            if process.pinned_tile:
                pin_region[process.name] = self.partition.region_of_tile(
                    process.pinned_tile
                ).name
        distances: dict[str, dict[str, int]] = {
            pin: self._distances_from(als.kpn, pin) for pin in pin_region
        }
        segments: dict[str, set[str]] = {}
        nearest_pin: dict[str, str] = {}
        for name, region_name in pin_region.items():
            segments.setdefault(region_name, set()).add(name)
            nearest_pin[name] = name
        for process in als.kpn.mappable_processes():
            best: tuple[int, str, str] | None = None
            for pin, region_name in pin_region.items():
                distance = distances[pin].get(process.name)
                if distance is None:
                    continue
                if best is None or (distance, region_name, pin) < best:
                    best = (distance, region_name, pin)
            if best is None:
                raise PlanRejected(
                    f"process {process.name!r} is unreachable from every pinned process"
                )
            segments.setdefault(best[1], set()).add(process.name)
            nearest_pin[process.name] = best[2]
        return segments, nearest_pin

    @staticmethod
    def _distances_from(kpn: KPNGraph, start: str) -> dict[str, int]:
        """BFS hop distances from one process over the undirected channel graph."""
        distances = {start: 0}
        frontier = [start]
        while frontier:
            next_frontier: list[str] = []
            for name in frontier:
                for neighbour in kpn.neighbours(name):
                    if neighbour not in distances:
                        distances[neighbour] = distances[name] + 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return distances

    def _cross_channels(
        self, als: ApplicationLevelSpec, segment_of: dict[str, str]
    ) -> list:
        """Data channels whose endpoints landed in different segments,
        heaviest first (the step-3 ordering discipline)."""
        period_ns = als.period_ns
        cross = [
            channel
            for channel in als.kpn.data_channels()
            if segment_of.get(channel.source) != segment_of.get(channel.target)
        ]
        cross.sort(key=lambda c: (-channel_throughput_bits_per_s(c, period_ns), c.name))
        return cross

    def _select_corridors(
        self,
        als: ApplicationLevelSpec,
        cross: list,
        segment_of: dict[str, str],
        nearest_pin: dict[str, str],
        allowed_regions: frozenset[str],
    ) -> tuple[dict[str, Corridor], list[tuple[PairKey, float]], frozenset[str]]:
        """One corridor per cross channel, against residual budgets.

        Corridors are chosen before the segments are mapped (placement does
        not exist yet), so each endpoint's *nearest pinned process* serves
        as its position proxy for the detour scoring.  Returns the corridor
        per channel plus the budget claims and boundary links of the whole
        plan.
        """
        planned: dict[PairKey, float] = {}
        corridors: dict[str, Corridor] = {}
        reservations: list[tuple[PairKey, float]] = []
        boundary_links: set[str] = set()
        loads_view = self.pipeline.state.link_loads_view()
        for channel in cross:
            required = channel_throughput_bits_per_s(channel, als.period_ns)
            corridor = self.selector.select(
                self._proxy_position(als, channel.source, nearest_pin),
                self._proxy_position(als, channel.target, nearest_pin),
                segment_of[channel.source],
                segment_of[channel.target],
                required,
                link_loads=loads_view,
                planned=planned,
                allowed_regions=allowed_regions,
            )
            if corridor is None:
                raise PlanRejected(
                    f"no corridor with {required:.3g} bit/s of residual budget for "
                    f"channel {channel.name!r}"
                )
            corridors[channel.name] = corridor
            for hop in corridor.hops:
                planned[hop.pair] = planned.get(hop.pair, 0.0) + required
                reservations.append((hop.pair, required))
                boundary_links.add(hop.link_name)
        return corridors, reservations, frozenset(boundary_links)

    def _proxy_position(
        self, als: ApplicationLevelSpec, process_name: str, nearest_pin: dict[str, str]
    ):
        """A position estimate for a process that may not be placed yet."""
        process = als.kpn.process(process_name)
        tile = (
            process.pinned_tile
            if process.is_pinned and process.pinned_tile is not None
            else als.kpn.process(nearest_pin[process_name]).pinned_tile
        )
        return self.pipeline.platform.tile(tile).position

    def _boundary_tile(self, region_name: str, position) -> str:
        """The region's tile closest to a boundary router position.

        Pseudo-endpoints pin here, so the segment search pulls cut channels
        toward the boundary they will cross.
        """
        region = self.partition.region(region_name)
        platform = self.pipeline.platform
        best: tuple[int, str] | None = None
        for name in region.tile_names:
            distance = manhattan_distance(platform.tile(name).position, position)
            if best is None or (distance, name) < best:
                best = (distance, name)
        if best is None:
            raise PlanRejected(f"region {region_name!r} has no tiles to anchor a corridor")
        return best[1]

    def _segment_als(
        self,
        als: ApplicationLevelSpec,
        region_name: str,
        members: set[str],
        cross: list,
        segment_of: dict[str, str],
        corridors: dict[str, Corridor],
    ) -> ApplicationLevelSpec:
        """The sub-application of one segment.

        Contains the segment's processes and internal channels, plus — per
        cut channel — a pinned pseudo-endpoint at the corridor's boundary
        router standing in for the far half: an outgoing cut channel ends in
        a pseudo-sink at the corridor entry, an incoming one starts from a
        pseudo-source at the corridor exit.  The pseudo channel carries the
        real channel's token volume, so step 2's communication cost pulls
        the real endpoint toward the boundary and step 3 reserves a
        realistic in-region leg while exploring.
        """
        kpn = KPNGraph(f"{als.name}::{region_name}")
        for process in als.kpn.processes:
            if process.name in members:
                kpn.add_process(process)
        for channel in als.kpn.channels:
            if channel.source in members and channel.target in members:
                kpn.add_channel(channel)
        for channel in cross:
            corridor = corridors[channel.name]
            if segment_of[channel.source] == region_name:
                pseudo = f"__xr_out_{channel.name}"
                kpn.add_process(
                    Process(
                        pseudo,
                        ProcessKind.SINK,
                        pinned_tile=self._boundary_tile(
                            region_name, corridor.hops[0].entry_position
                        ),
                    )
                )
                kpn.add_channel(
                    Channel(
                        pseudo,
                        channel.source,
                        pseudo,
                        tokens_per_iteration=channel.tokens_per_iteration,
                        token_size_bits=channel.token_size_bits,
                    )
                )
            elif segment_of[channel.target] == region_name:
                pseudo = f"__xr_in_{channel.name}"
                kpn.add_process(
                    Process(
                        pseudo,
                        ProcessKind.SOURCE,
                        pinned_tile=self._boundary_tile(
                            region_name, corridor.hops[-1].exit_position
                        ),
                    )
                )
                kpn.add_channel(
                    Channel(
                        pseudo,
                        pseudo,
                        channel.target,
                        tokens_per_iteration=channel.tokens_per_iteration,
                        token_size_bits=channel.token_size_bits,
                    )
                )
        try:
            return ApplicationLevelSpec(kpn=kpn, qos=als.qos)
        except KPNError as error:
            raise PlanRejected(
                f"segment in region {region_name!r} is not a well-formed sub-application: "
                f"{error}"
            ) from None

    def _filter_segment_mapping(self, als: ApplicationLevelSpec, mapping: Mapping) -> Mapping:
        """Keep only real application keys: pseudo-endpoints and their
        channels served exploration pressure and are replaced by the
        properly stitched cross-region routes."""
        filtered = Mapping(als.name)
        filtered.assign_all(
            assignment
            for assignment in mapping.assignments
            if als.kpn.has_process(assignment.process)
        )
        for route in mapping.routes:
            if als.kpn.has_channel(route.channel):
                filtered.add_route(route)
        return filtered

    def _stitch(
        self,
        als: ApplicationLevelSpec,
        cross: list,
        composed: Mapping,
        corridors: dict[str, Corridor],
    ) -> None:
        """Route every cross-segment channel over its selected corridor.

        Stitched routes are tentatively allocated into the (scratch) state
        as they are built, so later channels see earlier channels' loads —
        the same heavy-channels-first discipline as step 3.
        """
        state = self.pipeline.state
        platform = self.pipeline.platform
        loads_view = state.link_loads_view()
        for channel in cross:
            source_tile = self._tile_of(als, composed, channel.source)
            target_tile = self._tile_of(als, composed, channel.target)
            required = channel_throughput_bits_per_s(channel, als.period_ns)
            path = self._stitched_path(
                corridors[channel.name],
                platform.tile(source_tile).position,
                platform.tile(target_tile).position,
                required,
                loads_view,
            )
            route = ChannelRoute(
                channel=channel.name,
                source_tile=source_tile,
                target_tile=target_tile,
                path=path,
                required_bits_per_s=required,
            )
            composed.add_route(route)
            for a, b in zip(path, path[1:]):
                link = platform.noc.link(a, b)
                try:
                    state.allocate_link(
                        LinkAllocation(
                            application=als.name,
                            channel=channel.name,
                            link=link.name,
                            bits_per_s=required,
                        )
                    )
                except PlatformError as error:
                    raise PlanRejected(f"channel {channel.name!r}: {error}") from None

    def _tile_of(self, als: ApplicationLevelSpec, mapping: Mapping, process_name: str) -> str:
        """The tile hosting a channel endpoint (pinned or mapped)."""
        process = als.kpn.process(process_name)
        if process.is_pinned and process.pinned_tile is not None:
            return process.pinned_tile
        if mapping.is_assigned(process_name):
            return mapping.tile_of(process_name)
        raise PlanRejected(f"process {process_name!r} was not placed by any segment")

    def _stitched_path(
        self,
        corridor: Corridor,
        source_position,
        target_position,
        required_bits_per_s: float,
        loads_view,
    ) -> tuple:
        """Join region-internal legs with the corridor's boundary hops."""
        noc = self.pipeline.platform.noc
        positions: list = []
        current = source_position
        try:
            for hop in corridor.hops:
                region = self.partition.region(hop.source_region)
                leg = capacity_aware_shortest_path(
                    noc,
                    current,
                    hop.entry_position,
                    required_bits_per_s=required_bits_per_s,
                    link_loads_bits_per_s=loads_view,
                    allowed_positions=region.positions,
                )
                positions.extend(leg if not positions else leg[1:])
                positions.append(hop.exit_position)
                current = hop.exit_position
            sink_region = self.partition.region(corridor.target_region)
            leg = capacity_aware_shortest_path(
                noc,
                current,
                target_position,
                required_bits_per_s=required_bits_per_s,
                link_loads_bits_per_s=loads_view,
                allowed_positions=sink_region.positions,
            )
            positions.extend(leg if not positions else leg[1:])
        except RoutingError as error:
            raise PlanRejected(str(error)) from None
        return tuple(positions)

    # ------------------------------------------------------------------ #
    # Validation against the clean state
    # ------------------------------------------------------------------ #
    def _validate(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None,
        mapping: Mapping,
    ) -> MappingResult:
        """Adherence + full-graph step-4 feasibility of the composed mapping."""
        pipeline = self.pipeline
        effective = library if library is not None else pipeline.library
        violations = adherence_violations(
            mapping, pipeline.platform, effective, pipeline.state, als
        )
        if violations:
            raise PlanRejected(f"composed mapping is not adherent: {violations[0]}")
        step4 = check_feasibility(
            mapping,
            als,
            pipeline.platform,
            effective,
            state=pipeline.state,
            config=pipeline.config,
        )
        status = MappingStatus.FEASIBLE if step4.feasible else MappingStatus.ADHERENT
        if pipeline.require_feasible and not step4.feasible:
            raise PlanRejected(step4.report.reason or "QoS constraints not satisfied")
        result = MappingResult(
            mapping=step4.mapping,
            status=status,
            energy_nj_per_iteration=mapping_energy_nj(
                step4.mapping, als, pipeline.platform, pipeline.config.cost_model
            ),
            manhattan_cost=manhattan_cost(step4.mapping, als, pipeline.platform),
        )
        result.feasibility = step4.report
        result.mapped_csdf = step4.mapped_csdf
        return result

    # ------------------------------------------------------------------ #
    # Atomic commit
    # ------------------------------------------------------------------ #
    def _commit(
        self,
        als: ApplicationLevelSpec,
        result: MappingResult,
        reservations: list[tuple[PairKey, float]],
        boundary_links: frozenset[str],
    ) -> None:
        """Write allocations and budget claims under one journaled scope."""
        touched = self._touched_regions(result.mapping)
        scope = CorridorScope(
            tuple(self.partition.region(name) for name in touched), boundary_links
        )
        state = self.pipeline.state
        try:
            with state.transaction(scope):
                with self.budgets.transaction():
                    self._apply(als.name, result.mapping)
                    for pair, bits_per_s in reservations:
                        self.budgets.reserve(als.name, pair[0], pair[1], bits_per_s)
        except PlatformError as error:
            raise PlanRejected(f"commit failed: {error}") from None
        self.pipeline.record_commit(als.name, result.mapping)

    def _touched_regions(self, mapping: Mapping) -> tuple[str, ...]:
        """Sorted names of every region the mapping's allocations fall into."""
        names: set[str] = set()
        for assignment in mapping.assignments:
            names.add(self.partition.region_of_tile(assignment.tile).name)
        for route in mapping.routes:
            for position in route.path:
                region = self.partition.region_of_position(position)
                if region is not None:
                    names.add(region.name)
        return tuple(sorted(names))

    def _apply(self, application: str, mapping: Mapping) -> None:
        """Allocate a mapping into the open transaction (the one writer)."""
        self.pipeline.write_allocations(application, mapping)
