"""Cross-region interconnect planning: budgeted boundary corridors.

This package turns cross-region admission from a whole-platform
serialization (the engine's global lane) into a scoped, budgeted pipeline
stage:

* :mod:`repro.interregion.budgets` — the boundary-link inventory per
  ordered region pair, with journaled, reservable corridor budgets;
* :mod:`repro.interregion.corridors` — corridor selection (region paths and
  boundary-link choice) under routing-pressure scoring;
* :mod:`repro.interregion.planner` — the :class:`InterRegionPlanner`, which
  decomposes a multi-region application into per-region segments plus
  budgeted boundary hops and commits the composed mapping atomically;
* :mod:`repro.interregion.coordinator` — the lock-subset protocol: an
  inter-region admission holds only the touched regions' locks.
"""

from repro.interregion.budgets import BudgetTransaction, CorridorBudgets
from repro.interregion.coordinator import InterRegionCoordinator
from repro.interregion.corridors import Corridor, CorridorHop, CorridorSelector
from repro.interregion.planner import CorridorScope, InterRegionPlanner

__all__ = [
    "BudgetTransaction",
    "CorridorBudgets",
    "Corridor",
    "CorridorHop",
    "CorridorSelector",
    "CorridorScope",
    "InterRegionCoordinator",
    "InterRegionPlanner",
]
