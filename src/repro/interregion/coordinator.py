"""The lock-subset protocol for inter-region admissions.

The global lane acquires *every* region lock — correct, but it turns one
cross-region admission into a whole-platform stall.  The coordinator
replaces that with a **subset lane**: an inter-region admission acquires
only the sorted subset of the regions its plan may touch (anchors plus
corridor path, from :meth:`InterRegionPlanner.scope_for`), so workers in
every other region keep draining.

Deadlock freedom is inherited from :meth:`RegionLocks.subset_lane`: every
lane — per-region, subset, global — acquires along one fixed sorted-name
order, so no cycle of waiters can form regardless of how subsets overlap.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.platform.regions import RegionLocks, RegionPartition


class InterRegionCoordinator:
    """Acquires the lock subset an inter-region admission needs.

    Parameters
    ----------
    partition:
        The region partition whose locks are coordinated.
    locks:
        The :class:`~repro.platform.regions.RegionLocks` instance shared
        with the region workers (sharing is what makes the exclusion real);
        a private instance is created when omitted.
    """

    def __init__(
        self, partition: RegionPartition, *, locks: RegionLocks | None = None
    ) -> None:
        self.partition = partition
        self.locks = locks or RegionLocks(partition)

    @contextmanager
    def admission_lane(self, region_names: Iterable[str]) -> Iterator[tuple[str, ...]]:
        """Hold exactly the named regions' locks for one admission.

        Yields the sorted region names actually locked, so callers can pass
        the same set to the planner as its allowed-region scope.
        """
        ordered = tuple(sorted(set(region_names)))
        with self.locks.subset_lane(ordered):
            yield ordered
