"""Boundary-link corridor budgets between region pairs.

A region-sharded platform keeps admissions inside their shard; what crosses
shards is the boundary links.  Treating those links as a free-for-all is what
forced cross-region admissions into the serialized global lane — nothing
bounded how much boundary capacity an admission could grab, so correctness
required excluding every other writer.  :class:`CorridorBudgets` turns the
boundary into a *planned, budgeted resource*:

* the **inventory** enumerates, per *ordered* region pair ``(a, b)``, the
  NoC links leaving ``a`` for ``b`` (derived from
  :meth:`~repro.platform.regions.RegionPartition.cross_link_names`);
* each pair carries a **reservable corridor budget** — a configurable
  fraction of the pair's aggregate boundary capacity that inter-region
  channels may claim.  Keeping the fraction below 1 leaves headroom for the
  global lane's unplanned routes, so the planner can never starve the
  fallback path;
* reservations are **journaled** with the same transaction discipline as
  :class:`~repro.platform.state.PlatformState`: per-thread transaction
  stacks, first-touch undo snapshots, commit folds into the enclosing open
  transaction, rollback restores bit-identically.  A failed inter-region
  commit therefore unwinds its budget claims exactly as it unwinds its
  state allocations.

Reservations are recorded per application so a ``stop`` releases them all
(:meth:`CorridorBudgets.release_application`), mirroring
:meth:`~repro.platform.state.PlatformState.release_application`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.exceptions import PlatformError
from repro.platform.regions import RegionPartition

#: An ordered region pair: (source region name, target region name).
PairKey = tuple[str, str]


class BudgetTransaction:
    """Undo journal of one :meth:`CorridorBudgets.transaction` scope.

    The journal snapshots, on first touch, the per-pair reserved total and
    the per-application reservation list.  ``rollback`` replays the
    snapshots in reverse; ``commit`` folds them into the enclosing open
    transaction (so an outer rollback undoes inner commits as well), exactly
    like :class:`~repro.platform.state.StateTransaction`.
    """

    __slots__ = ("_budgets", "_undo", "_seen_pairs", "_seen_apps", "closed", "rolled_back")

    def __init__(self, budgets: "CorridorBudgets") -> None:
        self._budgets = budgets
        # Entries: ("pair", key, reserved_before) | ("app", name, list_before|None).
        self._undo: list[tuple] = []
        self._seen_pairs: set[PairKey] = set()
        self._seen_apps: set[str] = set()
        self.closed = False
        self.rolled_back = False

    def commit(self) -> None:
        """Keep every reservation change; fold the journal into the parent."""
        if self.closed:
            if self.rolled_back:
                raise PlatformError("budget transaction was already rolled back")
            return
        self.closed = True
        stack = self._budgets._txn_stack()
        enclosing = stack[: stack.index(self)] if self in stack else stack
        open_enclosing = [txn for txn in enclosing if not txn.closed]
        for entry in self._undo:
            kind, key = entry[0], entry[1]
            for txn in reversed(open_enclosing):
                seen = txn._seen_pairs if kind == "pair" else txn._seen_apps
                if key not in seen:
                    seen.add(key)
                    txn._undo.append(entry)
                break
        self._undo = []

    def rollback(self) -> None:
        """Undo every reservation change made inside the transaction."""
        if self.closed:
            if self.rolled_back:
                return
            raise PlatformError("budget transaction was already committed")
        budgets = self._budgets
        for entry in reversed(self._undo):
            if entry[0] == "pair":
                _, key, reserved = entry
                budgets._reserved[key] = reserved
            else:
                _, name, reservations = entry
                if reservations is None:
                    budgets._by_application.pop(name, None)
                else:
                    budgets._by_application[name] = reservations
        self._undo.clear()
        self.closed = True
        self.rolled_back = True


class CorridorBudgets:
    """Reservable boundary-capacity budgets per ordered region pair.

    Parameters
    ----------
    partition:
        The region partition whose boundary links are inventoried.
    fraction:
        Fraction of each pair's aggregate boundary-link capacity that
        corridors may reserve (0 < fraction <= 1).
    """

    def __init__(self, partition: RegionPartition, fraction: float = 0.5) -> None:
        if not 0.0 < fraction <= 1.0:
            raise PlatformError("corridor budget fraction must be in (0, 1]")
        self.partition = partition
        self.fraction = fraction
        noc = partition.platform.noc
        links: dict[PairKey, list[str]] = {}
        capacity: dict[PairKey, float] = {}
        for link_name in partition.cross_link_names():
            link = noc.link_by_name(link_name)
            source = partition.region_of_position(link.source)
            target = partition.region_of_position(link.target)
            if source is None or target is None:
                # Links touching unassigned router positions stay outside
                # the budgeted inventory (global lane territory).
                continue
            pair = (source.name, target.name)
            links.setdefault(pair, []).append(link_name)
            capacity[pair] = capacity.get(pair, 0.0) + link.capacity_bits_per_s
        self._links: dict[PairKey, tuple[str, ...]] = {
            pair: tuple(names) for pair, names in sorted(links.items())
        }
        self._capacity: dict[PairKey, float] = {
            pair: fraction * capacity[pair] for pair in self._links
        }
        self._reserved: dict[PairKey, float] = {pair: 0.0 for pair in self._links}
        #: Per-application reservations: name -> [(pair, bits_per_s), ...].
        self._by_application: dict[str, list[tuple[PairKey, float]]] = {}
        self._transactions: dict[int, list[BudgetTransaction]] = {}

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #
    def pairs(self) -> tuple[PairKey, ...]:
        """Every ordered region pair with at least one boundary link."""
        return tuple(self._links)

    def links_between(self, source_region: str, target_region: str) -> tuple[str, ...]:
        """Boundary link names leaving ``source_region`` for ``target_region``."""
        return self._links.get((source_region, target_region), ())

    def capacity_bits_per_s(self, source_region: str, target_region: str) -> float:
        """Reservable corridor budget of the ordered pair."""
        return self._capacity.get((source_region, target_region), 0.0)

    def reserved_bits_per_s(self, source_region: str, target_region: str) -> float:
        """Currently reserved corridor throughput of the ordered pair."""
        return self._reserved.get((source_region, target_region), 0.0)

    def residual_bits_per_s(self, source_region: str, target_region: str) -> float:
        """Corridor budget still reservable on the ordered pair."""
        pair = (source_region, target_region)
        if pair not in self._capacity:
            return 0.0
        return self._capacity[pair] - self._reserved[pair]

    def pressure(self, source_region: str, target_region: str) -> float:
        """Fraction of the pair's corridor budget already reserved (0..1)."""
        pair = (source_region, target_region)
        capacity = self._capacity.get(pair, 0.0)
        if capacity <= 0.0:
            return 1.0
        return self._reserved[pair] / capacity

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    def _txn_stack(self) -> list[BudgetTransaction]:
        return self._transactions.setdefault(threading.get_ident(), [])

    @contextmanager
    def transaction(self) -> Iterator[BudgetTransaction]:
        """Open a journaled scope for tentative reservations.

        Commits on normal exit (unless already rolled back inside the
        block), rolls back and re-raises on an exception.  Nested scopes
        fold into their parent on commit, mirroring
        :meth:`PlatformState.transaction`.
        """
        txn = BudgetTransaction(self)
        stack = self._txn_stack()
        stack.append(txn)
        try:
            yield txn
        except BaseException:
            if not txn.closed:
                txn.rollback()
            raise
        else:
            if not txn.closed:
                txn.commit()
        finally:
            stack.remove(txn)
            if not stack:
                self._transactions.pop(threading.get_ident(), None)

    def _journal_pair(self, pair: PairKey) -> None:
        for txn in reversed(self._transactions.get(threading.get_ident(), ())):
            if txn.closed:
                continue
            if pair not in txn._seen_pairs:
                txn._seen_pairs.add(pair)
                txn._undo.append(("pair", pair, self._reserved[pair]))
            return

    def _journal_application(self, application: str) -> None:
        for txn in reversed(self._transactions.get(threading.get_ident(), ())):
            if txn.closed:
                continue
            if application not in txn._seen_apps:
                txn._seen_apps.add(application)
                reservations = self._by_application.get(application)
                txn._undo.append(
                    ("app", application, None if reservations is None else list(reservations))
                )
            return

    # ------------------------------------------------------------------ #
    # Reservation accounting
    # ------------------------------------------------------------------ #
    def reserve(
        self,
        application: str,
        source_region: str,
        target_region: str,
        bits_per_s: float,
    ) -> None:
        """Reserve corridor throughput on an ordered pair for an application.

        Raises :class:`~repro.exceptions.PlatformError` when the pair has no
        boundary links or the reservation would exceed the pair's budget.
        """
        if bits_per_s < 0:
            raise PlatformError("corridor reservations must be non-negative")
        pair = (source_region, target_region)
        if pair not in self._capacity:
            raise PlatformError(
                f"no boundary links from region {source_region!r} to {target_region!r}"
            )
        residual = self._capacity[pair] - self._reserved[pair]
        if bits_per_s > residual + 1e-9:
            raise PlatformError(
                f"corridor budget {source_region!r}->{target_region!r} has only "
                f"{residual:.3g} bit/s left; cannot reserve {bits_per_s:.3g} bit/s"
            )
        self._journal_pair(pair)
        self._journal_application(application)
        self._reserved[pair] += bits_per_s
        self._by_application.setdefault(application, []).append((pair, bits_per_s))

    def release_application(self, application: str) -> float:
        """Release every corridor reservation of the application.

        Returns the total released throughput (0.0 when the application had
        no reservations).  Reserved totals of the touched pairs are restored
        by subtraction and can never drift below zero because every addition
        and removal goes through the same per-application record.
        """
        reservations = self._by_application.get(application)
        if not reservations:
            return 0.0
        self._journal_application(application)
        released = 0.0
        for pair, bits_per_s in reservations:
            self._journal_pair(pair)
            self._reserved[pair] -= bits_per_s
            released += bits_per_s
        del self._by_application[application]
        return released

    def applications(self) -> tuple[str, ...]:
        """Applications currently holding corridor reservations."""
        return tuple(self._by_application)

    def fingerprint(self) -> tuple:
        """Exact digest of the reservation state (pairs with non-zero use)."""
        parts: list[tuple] = [
            (pair, reserved)
            for pair, reserved in self._reserved.items()
            if reserved
        ]
        parts.append(
            tuple(
                (name, tuple(entries))
                for name, entries in sorted(self._by_application.items())
            )
        )
        return tuple(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorridorBudgets(pairs={len(self._links)}, fraction={self.fraction}, "
            f"applications={len(self._by_application)})"
        )
