"""Configuration of the spatial mapper."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.mapping.cost import CostModel


class Step2Strategy(enum.Enum):
    """Local-search strategy of step 2.

    The paper evaluates one reassignment per iteration and keeps it only when
    it improves the cost (Table 2 shows an evaluated-and-reverted iteration),
    which corresponds to :attr:`FIRST_IMPROVEMENT`.  :attr:`BEST_IMPROVEMENT`
    evaluates every candidate each iteration and applies the best one; it is
    used by the ablation benchmarks.
    """

    FIRST_IMPROVEMENT = "first_improvement"
    BEST_IMPROVEMENT = "best_improvement"


class DesirabilityMetric(enum.Enum):
    """What the step-1 desirability is computed from.

    ``ENERGY`` uses only the implementations' computation energy (the Table 1
    column), which is what the worked example of the paper uses.
    ``ENERGY_AND_COMMUNICATION`` adds the Manhattan-distance communication
    estimate towards already-placed neighbours, an extension evaluated in the
    ablation benchmarks.
    """

    ENERGY = "energy"
    ENERGY_AND_COMMUNICATION = "energy_and_communication"


@dataclass(frozen=True)
class MapperConfig:
    """All tunables of the four-step mapper.

    Parameters
    ----------
    step2_strategy:
        Local-search strategy (see :class:`Step2Strategy`).
    step2_min_gain:
        Minimum cost improvement for accepting a reassignment; iterations
        improving by less are reverted ("a minimum gain from the current
        iteration", section 3).
    step2_max_iterations:
        Hard cap on evaluated reassignments in step 2.
    step2_weight_by_tokens:
        Whether the Manhattan metric weights each channel by its token volume.
    desirability_metric:
        Basis of the step-1 desirability ordering.
    max_feedback_iterations:
        Maximum number of outer refinement iterations (step 4 / step 3
        failures feeding back into steps 1-2).
    analysis_iterations:
        Number of graph iterations simulated by the step-4 dataflow analysis.
    run_feasibility_analysis:
        Whether step 4 runs at all.  ``False`` caps results at ``ADHERENT``
        (steps 1-3 plus the adherence check) — used by callers that perform
        their own feasibility analysis on a composed graph, e.g. the
        inter-region planner validating whole applications after mapping
        their per-region segments.
    minimize_buffers:
        When ``True``, step 4 additionally shrinks buffer capacities by
        binary search (slower, smaller buffers).
    analysis_cache_size:
        Capacity of the step-4 simulation-verdict cache
        (:class:`~repro.csdf.analysis.budget.SimulationCache`); ``0``
        disables caching.
    analysis_early_exit:
        Whether step-4 simulations may stop early (backlog-violation abort,
        state-cycle exit).  Early exits are answer-preserving; disabling them
        exists for differential baselines and benchmarks.
    analysis_event_budget:
        Optional ceiling on simulated events per buffer-minimisation call;
        ``None`` (the default) is unlimited.  An exhausted budget degrades
        the minimisation gracefully to the sufficient capacities.
    analysis_probe_budget:
        Optional ceiling on binary-search probes per buffer-minimisation
        call; ``None`` is unlimited.
    cost_model:
        Weights of the full energy objective.
    keep_step2_trace:
        Record every step-2 iteration (needed to regenerate Table 2).
    rescue_searchers:
        Number of seeded random-placement searchers the rescue lane runs
        when the refinement loop ends without a feasible mapping; ``0``
        (the default) disables the lane entirely, leaving every decision
        exactly as it was without it.  Seeds derive deterministically from
        the request fingerprint, so the lane keeps serial/threaded/process
        executors decision-identical and results cacheable.
    rescue_attempts:
        Full placements each rescue searcher proposes and scores.
    rescue_budget:
        Ceiling on simulated events the whole rescue lane (all searchers of
        one :meth:`~repro.spatialmapper.mapper.SpatialMapper.map` call
        combined) may charge through the analysis engine; ``None`` is
        unlimited.  Cache hits charge their stored cost, so the trajectory
        is cache-warmth independent (anytime: exhaustion returns the best
        feasible candidate found so far).
    """

    step2_strategy: Step2Strategy = Step2Strategy.FIRST_IMPROVEMENT
    step2_min_gain: float = 1e-9
    step2_max_iterations: int = 1000
    step2_weight_by_tokens: bool = False
    desirability_metric: DesirabilityMetric = DesirabilityMetric.ENERGY
    max_feedback_iterations: int = 8
    analysis_iterations: int = 6
    run_feasibility_analysis: bool = True
    minimize_buffers: bool = False
    analysis_cache_size: int = 256
    analysis_early_exit: bool = True
    analysis_event_budget: int | None = None
    analysis_probe_budget: int | None = None
    cost_model: CostModel = field(default_factory=CostModel)
    keep_step2_trace: bool = True
    rescue_searchers: int = 0
    rescue_attempts: int = 4
    rescue_budget: int | None = 250_000

    def __post_init__(self) -> None:
        if self.step2_min_gain < 0:
            raise ConfigurationError("step2_min_gain must be non-negative")
        if self.step2_max_iterations < 1:
            raise ConfigurationError("step2_max_iterations must be at least 1")
        if self.max_feedback_iterations < 1:
            raise ConfigurationError("max_feedback_iterations must be at least 1")
        if self.analysis_iterations < 1:
            raise ConfigurationError("analysis_iterations must be at least 1")
        if self.analysis_cache_size < 0:
            raise ConfigurationError("analysis_cache_size must be non-negative")
        if self.analysis_event_budget is not None and self.analysis_event_budget < 1:
            raise ConfigurationError("analysis_event_budget must be positive or None")
        if self.analysis_probe_budget is not None and self.analysis_probe_budget < 1:
            raise ConfigurationError("analysis_probe_budget must be positive or None")
        if self.rescue_searchers < 0:
            raise ConfigurationError("rescue_searchers must be non-negative")
        if self.rescue_attempts < 1:
            raise ConfigurationError("rescue_attempts must be at least 1")
        if self.rescue_budget is not None and self.rescue_budget < 1:
            raise ConfigurationError("rescue_budget must be positive or None")
