"""Fingerprint-keyed memoisation of spatial-mapping results.

The mapper is deterministic: the same application mapped against the same
platform state (and region restriction) yields a bit-identical result.  The
state's cached aggregates make "the same state" cheap to detect — a
:meth:`~repro.platform.state.PlatformState.fingerprint` digest over the
region's tiles and links — so a :class:`MapperCache` can skip the whole
four-step search whenever an identical admission question was already
answered.  This pays off exactly where the paper's run-time premise is
stressed: churny workloads where applications of a few types start and stop
repeatedly, returning the platform (or one region of it) to a previously
seen configuration.

Keys are ``(application name, region name, fingerprint)``.  Invalidation is
the fingerprint itself: a commit or stop inside a region changes that
region's fingerprint, so entries for the previous state can never be served
for the new one — and when a stop returns the region to an earlier
fingerprint, entries computed for that earlier state become servable again
(no over-invalidation).  An LRU bound keeps superseded entries from
accumulating; :meth:`MapperCache.invalidate_regions` and
:meth:`MapperCache.clear` remain for callers that mutate state behind the
fingerprint's back.  Entries pin the exact ALS and library objects they
were computed from and are only served for those same objects, so a name
collision between different applications can never produce a wrong hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any

from repro.mapping.result import MappingResult

#: Region key used for unrestricted (whole-platform) mappings.
GLOBAL_REGION = "__global__"


@dataclass
class _CacheEntry:
    """One memoised mapping result, pinned to its input objects."""

    als: Any
    library: Any
    result: MappingResult


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`MapperCache`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MapperCache:
    """LRU cache of :class:`~repro.mapping.result.MappingResult` objects.

    Results are stored once and *cloned* on every hit: the clone shares the
    immutable pieces (assignments, routes, feasibility report, mapped CSDF
    graph) but carries fresh containers, so a caller mutating its result
    (e.g. appending diagnostics) cannot corrupt later hits.

    The cache is thread-safe: one lock serialises the (cheap) bookkeeping so
    region workers draining in parallel can share it.  Hits in disjoint
    regions stay independent — the lock protects the LRU structure, not the
    results, which are cloned before release.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @staticmethod
    def key(application: str, region_name: str | None, fingerprint: tuple) -> tuple:
        """The cache key for one admission question."""
        return (application, region_name or GLOBAL_REGION, fingerprint)

    # ------------------------------------------------------------------ #
    def lookup(self, key: tuple, als: Any, library: Any) -> MappingResult | None:
        """A clone of the memoised result, or ``None`` on miss.

        The hit is only served when ``als`` and ``library`` are the very
        objects the entry was computed from (identity, not equality — the
        entry keeps them alive, so identity is stable).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.als is not als or entry.library is not library:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            result = entry.result
        return self._clone(result)

    def store(self, key: tuple, als: Any, library: Any, result: MappingResult) -> None:
        """Memoise a freshly computed result (a private clone is kept)."""
        clone = self._clone(result)
        with self._lock:
            self._entries[key] = _CacheEntry(als=als, library=library, result=clone)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_regions(self, region_names: tuple[str, ...] | list[str]) -> int:
        """Drop every entry keyed to any of the given regions (or to the globe).

        A commit into region R invalidates R's entries *and* the global
        entries (the global fingerprint changed too).  Returns the number of
        entries dropped.
        """
        doomed = {GLOBAL_REGION, *region_names}
        with self._lock:
            victims = [key for key in self._entries if key[1] in doomed]
            for key in victims:
                del self._entries[key]
            self.stats.invalidations += len(victims)
        return len(victims)

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _clone(result: MappingResult) -> MappingResult:
        """A result equal to ``result`` but with independent containers."""
        return replace(
            result,
            mapping=result.mapping.copy(),
            diagnostics=list(result.diagnostics),
            pending_feedback=list(result.pending_feedback),
        )


__all__ = ["MapperCache", "CacheStats", "GLOBAL_REGION"]
