"""Step 1: assign implementations (tile types) to processes.

The goal of the first step is to choose an implementation — and thereby a
tile type — for every mappable process.  To prevent running into inadherence
directly, only implementations for which an adhering mapping still exists are
considered (i.e. some tile of that type can still host the process, given the
platform state and the choices already made).  Processes are picked in order
of decreasing *desirability* (see :mod:`repro.spatialmapper.desirability`)
and packed first-fit onto a concrete tile, which guarantees that at least one
concrete tile assignment exists after this step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.appmodel.implementation import Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.assignment import ProcessAssignment
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.desirability import assignment_options, desirability
from repro.spatialmapper.feedback import ExclusionSet, Feedback, FeedbackKind
from repro.spatialmapper.residuals import ResidualTracker


@dataclass
class Step1Result:
    """Outcome of step 1: a (partial) mapping plus any feedback raised."""

    mapping: Mapping
    feedback: list[Feedback] = field(default_factory=list)
    order: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether every mappable process received an implementation and a tile."""
        return not self.feedback


def eligible_tiles(
    implementation: Implementation,
    platform: Platform,
    state: PlatformState | None,
    mapping: Mapping,
    exclusions: ExclusionSet | None = None,
    residuals: ResidualTracker | None = None,
    allowed_tiles: frozenset[str] | None = None,
) -> list[str]:
    """Tiles of the implementation's type that can still host it (declaration order).

    ``residuals`` carries the O(1) slot/memory bookkeeping; when omitted (the
    standalone-call convenience path) a tracker is derived from ``state`` and
    ``mapping`` on the spot.  ``allowed_tiles`` restricts the candidates to a
    region's tiles (``None`` = whole platform).
    """
    exclusions = exclusions or ExclusionSet()
    if residuals is None:
        residuals = ResidualTracker.for_mapping(platform, state, mapping)
    tiles: list[str] = []
    for tile in platform.tiles_of_type(implementation.tile_type):
        if not tile.is_processing:
            continue
        if allowed_tiles is not None and tile.name not in allowed_tiles:
            continue
        if not exclusions.placement_allowed(implementation.process, tile.name):
            continue
        if residuals.free_slots(tile.name) < 1:
            continue
        if implementation.memory_bytes > residuals.free_memory(tile.name):
            continue
        tiles.append(tile.name)
    return tiles


def select_implementations(
    als: ApplicationLevelSpec,
    platform: Platform,
    library: ImplementationLibrary,
    *,
    state: PlatformState | None = None,
    config: MapperConfig | None = None,
    exclusions: ExclusionSet | None = None,
    allowed_tiles: frozenset[str] | None = None,
) -> Step1Result:
    """Run step 1 and return the greedy initial mapping.

    The returned mapping assigns every mappable process an implementation and
    a concrete tile (first-fit).  Pinned processes (sources/sinks) are added
    with their pinned tile and no implementation.  When some process cannot
    be assigned, feedback of kind
    :attr:`~repro.spatialmapper.feedback.FeedbackKind.NO_IMPLEMENTATION` is
    produced and the mapping stays partial.  ``allowed_tiles`` restricts
    placement to a region's tiles; pinned processes keep their pinned tile
    regardless (region selection is responsible for picking a region that
    contains them).
    """
    config = config or MapperConfig()
    exclusions = exclusions or ExclusionSet()
    mapping = Mapping(als.name)

    # Pinned processes are fixed by the ALS and not subject to choice.
    for process in als.kpn.pinned_processes():
        mapping.assign(ProcessAssignment(process.name, process.pinned_tile))

    unassigned = [p.name for p in als.kpn.mappable_processes()]
    declaration_rank = {name: index for index, name in enumerate(unassigned)}
    result = Step1Result(mapping=mapping)
    residuals = ResidualTracker.for_mapping(platform, state, mapping)

    while unassigned:
        # Re-evaluate desirability every iteration: tile availability changes
        # as processes are packed, which changes which implementations still
        # admit an adherent mapping.
        scored: list[tuple[float, int, str, list]] = []
        for process_name in unassigned:
            candidates = []
            for implementation in library.implementations_for(process_name):
                if not exclusions.implementation_allowed(
                    process_name, implementation.tile_type
                ):
                    continue
                tiles = eligible_tiles(
                    implementation, platform, state, mapping, exclusions, residuals,
                    allowed_tiles,
                )
                if tiles:
                    candidates.append((implementation, tiles))
            options = assignment_options(
                process_name,
                candidates,
                als=als,
                platform=platform,
                partial_mapping=mapping,
                config=config,
            )
            score = desirability(options)
            scored.append((score, declaration_rank[process_name], process_name, options))

        # Most desirable first; ties broken by declaration order (the KPN order),
        # which reproduces the worked example of the paper.
        scored.sort(key=lambda item: (-item[0], item[1]))
        score, _, process_name, options = scored[0]
        if not options:
            result.feedback.append(
                Feedback(
                    kind=FeedbackKind.NO_IMPLEMENTATION,
                    step=1,
                    message=(
                        f"process {process_name!r} has no implementation with an available "
                        "tile (all candidate tiles occupied or excluded)"
                    ),
                    culprit_process=process_name,
                )
            )
            unassigned.remove(process_name)
            continue

        # Cheapest option decides the implementation; the concrete tile is the
        # first tile (platform declaration order) of that type that fits.
        chosen = options[0].implementation
        tiles = eligible_tiles(
            chosen, platform, state, mapping, exclusions, residuals, allowed_tiles
        )
        tile_name = tiles[0]
        mapping.assign(ProcessAssignment(process_name, tile_name, chosen))
        residuals.place(tile_name, chosen.memory_bytes)
        result.order.append(process_name)
        unassigned.remove(process_name)

    return result
