"""Traces of the mapping process, used for reporting and for Table 2."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Step2Iteration:
    """One evaluated reassignment in step 2 of the algorithm.

    Mirrors a row of Table 2 of the paper: the candidate assignment that was
    evaluated, the resulting cost and whether it was kept or reverted.
    """

    iteration: int
    description: str
    assignment: dict[str, str]
    cost: float
    accepted: bool
    remark: str

    def as_row(self) -> tuple:
        """Row form used by the reporting tables."""
        return (self.iteration, self.description, f"{self.cost:g}", self.remark)


@dataclass
class Step2Trace:
    """Full trace of step 2: the initial assignment plus every iteration."""

    initial_assignment: dict[str, str] = field(default_factory=dict)
    initial_cost: float = 0.0
    iterations: list[Step2Iteration] = field(default_factory=list)

    @property
    def final_cost(self) -> float:
        """Cost after the last accepted iteration."""
        cost = self.initial_cost
        for iteration in self.iterations:
            if iteration.accepted:
                cost = iteration.cost
        return cost

    @property
    def accepted_iterations(self) -> list[Step2Iteration]:
        """Only the iterations that improved (and were kept)."""
        return [i for i in self.iterations if i.accepted]

    def improving_prefix(self) -> list[Step2Iteration]:
        """Iterations up to and including the last accepted improvement.

        Table 2 of the paper lists the evaluated iterations up to the last
        improvement and then notes "No further choices"; this helper returns
        exactly that prefix.
        """
        last_accept = 0
        for index, iteration in enumerate(self.iterations, start=1):
            if iteration.accepted:
                last_accept = index
        return self.iterations[:last_accept]

    def cost_trajectory(self) -> list[float]:
        """Initial cost followed by the cost after each evaluated iteration."""
        trajectory = [self.initial_cost]
        current = self.initial_cost
        for iteration in self.iterations:
            if iteration.accepted:
                current = iteration.cost
            trajectory.append(current)
        return trajectory


@dataclass
class MapperTrace:
    """Trace of one complete mapper run (all refinement iterations).

    The ``simulations_run`` / ``simulated_events`` / ``analysis_cache_hits`` /
    ``budget_exhausted`` counters are the step-4 analysis work this run
    caused, measured as the delta of the shared
    :class:`~repro.csdf.analysis.budget.AnalysisEngine` counters around the
    run (cache hits are answered without simulating, so a warm cache shows up
    as hits instead of events).
    """

    step2_traces: list[Step2Trace] = field(default_factory=list)
    feedback_log: list[str] = field(default_factory=list)
    refinement_iterations: int = 0
    simulations_run: int = 0
    simulated_events: int = 0
    analysis_cache_hits: int = 0
    budget_exhausted: int = 0
    #: ``True`` when the owning :meth:`~repro.spatialmapper.mapper.SpatialMapper.map`
    #: call was answered from the :class:`~repro.spatialmapper.cache.MapperCache`:
    #: the trace is then a deliberately *empty* marker (no steps ran), never
    #: a stale leftover of the last computed call.
    cache_hit: bool = False
    #: Rescue-lane counters (:mod:`repro.spatialmapper.rescue`): seeded
    #: searchers actually run, full placements proposed, feasible placements
    #: found, whether the best one replaced the refinement loop's result and
    #: whether the lane's event budget ran out (anytime cut-off).
    rescue_searchers_run: int = 0
    rescue_candidates: int = 0
    rescue_feasible: int = 0
    rescue_adopted: bool = False
    rescue_budget_exhausted: bool = False
    #: ``(step name, start_ns, end_ns)`` per executed mapper step, in
    #: execution order across all refinement iterations —
    #: ``perf_counter_ns`` stamps the observability layer turns into
    #: ``mapper.step1`` .. ``mapper.step4`` spans.  The paper's algorithm
    #: is explicitly staged, so these windows map 1:1 onto it.
    step_windows: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def last_step2_trace(self) -> Step2Trace | None:
        """The step-2 trace of the final refinement iteration, if any."""
        return self.step2_traces[-1] if self.step2_traces else None

    def record_feedback(self, message: str) -> None:
        """Append a feedback message to the log."""
        self.feedback_log.append(message)
