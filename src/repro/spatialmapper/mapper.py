"""The spatial mapper: hierarchical search with iterative refinement.

:class:`SpatialMapper` wires the four steps together.  Each refinement
iteration runs steps 1-4 in order; when a step fails it emits feedback which
the mapper translates into exclusions (banned implementations or banned
placements) before restarting from step 1 — "the feedback from a lower level
may result in a completely different mapping on a higher level in a next
iteration" (paper, section 3).  The best mapping seen so far (by status, then
energy) is kept and returned when the iteration budget runs out.
"""

from __future__ import annotations

import time

from repro.appmodel.library import ImplementationLibrary
from repro.csdf.analysis.budget import AnalysisEngine
from repro.exceptions import NoFeasibleMappingError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.cost import manhattan_cost, mapping_energy_nj
from repro.mapping.mapping import Mapping
from repro.mapping.properties import adherence_violations
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.cache import MapperCache
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.feedback import ExclusionSet, Feedback, FeedbackKind
from repro.spatialmapper.rescue import rescue_search
from repro.spatialmapper.step1_implementation import select_implementations
from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment
from repro.spatialmapper.step3_routing import route_channels
from repro.spatialmapper.step4_feasibility import check_feasibility
from repro.spatialmapper.trace import MapperTrace


class SpatialMapper:
    """Run-time spatial mapper for one platform and implementation library.

    The mapper is stateless between calls: every :meth:`map` call receives
    the application and the *current* platform state and returns a
    :class:`~repro.mapping.result.MappingResult`; committing the resulting
    allocations is the job of the run-time resource manager
    (:mod:`repro.runtime`).
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary,
        config: MapperConfig | None = None,
        *,
        cache: MapperCache | None = None,
        analysis: AnalysisEngine | None = None,
    ) -> None:
        self.platform = platform
        self.library = library
        self.config = config or MapperConfig()
        #: Optional fingerprint-keyed result cache; when set, :meth:`map`
        #: serves repeated (application, region, state-fingerprint) questions
        #: without re-running the search.
        self.cache = cache
        #: Shared step-4 analysis engine (simulation cache, early exits,
        #: budgets).  Passing one in shares its verdict cache across mappers;
        #: by default each mapper owns a fresh engine built from its config.
        self.analysis = analysis if analysis is not None else AnalysisEngine.from_config(self.config)
        #: Trace of the most recent :meth:`map` call (step-2 iterations, feedback log).
        #: A cache hit resets this to an empty trace with
        #: :attr:`~repro.spatialmapper.trace.MapperTrace.cache_hit` set, so
        #: step windows and rescue counters can never be attributed to the
        #: wrong request.
        self.last_trace: MapperTrace = MapperTrace()
        #: ``(start_ns, end_ns, hit)`` of the most recent call's cache
        #: lookup, or ``None`` when caching is disabled.  Consumers (the
        #: admission pipeline's tracer) use ``hit`` to know whether
        #: :attr:`last_trace` belongs to this call or is a stale leftover
        #: of the last computed one.
        self.last_lookup: tuple[int, int, bool] | None = None

    # ------------------------------------------------------------------ #
    def map(
        self,
        als: ApplicationLevelSpec,
        state: PlatformState | None = None,
        *,
        region=None,
        raise_on_failure: bool = False,
    ) -> MappingResult:
        """Produce a spatial mapping for ``als`` given the current platform state.

        Parameters
        ----------
        als:
            The application to start.
        state:
            Current allocations of already-running applications; ``None``
            means an idle platform.
        region:
            Optional :class:`~repro.platform.regions.Region` restriction:
            processes are only placed on the region's tiles and channels only
            routed over the region's routers.  A region-restricted search is
            bit-identical for identical region states, which is what makes
            the result cacheable per (application, region fingerprint).
        raise_on_failure:
            When ``True``, raise
            :class:`~repro.exceptions.NoFeasibleMappingError` instead of
            returning a non-feasible result.
        """
        start_time = time.perf_counter()
        state = state if state is not None else PlatformState(self.platform)

        cache_key = None
        self.last_lookup = None
        if self.cache is not None:
            lookup_start_ns = time.perf_counter_ns()
            fingerprint = (
                region.fingerprint(state) if region is not None else state.fingerprint()
            )
            cache_key = MapperCache.key(
                als.name, region.name if region is not None else None, fingerprint
            )
            cached = self.cache.lookup(cache_key, als, self.library)
            self.last_lookup = (
                lookup_start_ns,
                time.perf_counter_ns(),
                cached is not None,
            )
            if cached is not None:
                # ``lookup`` returns a fresh clone, so stamping the runtime
                # never rewrites the stored entry (pinned by regression test).
                cached.runtime_s = time.perf_counter() - start_time
                self.last_trace = MapperTrace(cache_hit=True)
                if raise_on_failure and cached.status is not MappingStatus.FEASIBLE:
                    raise NoFeasibleMappingError(
                        f"no feasible mapping found for application {als.name!r}: "
                        + (
                            cached.feasibility.reason
                            if cached.feasibility
                            else cached.status.value
                        )
                    )
                return cached

        exclusions = ExclusionSet()
        trace = MapperTrace()
        analysis_before = self.analysis.snapshot()
        best: MappingResult | None = None
        diagnostics: list[str] = []

        for iteration in range(1, self.config.max_feedback_iterations + 1):
            trace.refinement_iterations = iteration
            candidate = self._single_pass(
                als, state, exclusions, trace, diagnostics, region
            )
            candidate.iterations = iteration
            best = self._better(best, candidate)
            if candidate.status is MappingStatus.FEASIBLE:
                best = candidate
                break
            if not self._apply_feedback(candidate, exclusions, trace, diagnostics):
                diagnostics.append(
                    f"iteration {iteration}: no applicable feedback left; stopping refinement"
                )
                break

        assert best is not None
        if (
            best.status is not MappingStatus.FEASIBLE
            and self.config.rescue_searchers > 0
            and self.config.run_feasibility_analysis
        ):
            best = self._rescue(als, state, region, best, trace, diagnostics)
        best.runtime_s = time.perf_counter() - start_time
        best.diagnostics = diagnostics + best.diagnostics
        analysis_after = self.analysis.snapshot()
        trace.simulations_run = analysis_after["simulations_run"] - analysis_before["simulations_run"]
        trace.simulated_events = analysis_after["simulated_events"] - analysis_before["simulated_events"]
        trace.analysis_cache_hits = analysis_after["cache_hits"] - analysis_before["cache_hits"]
        trace.budget_exhausted = analysis_after["budget_exhausted"] - analysis_before["budget_exhausted"]
        self.last_trace = trace
        if cache_key is not None:
            self.cache.store(cache_key, als, self.library, best)
        if raise_on_failure and best.status is not MappingStatus.FEASIBLE:
            raise NoFeasibleMappingError(
                f"no feasible mapping found for application {als.name!r}: "
                + (best.feasibility.reason if best.feasibility else best.status.value)
            )
        return best

    # ------------------------------------------------------------------ #
    def _rescue(
        self,
        als: ApplicationLevelSpec,
        state: PlatformState,
        region,
        best: MappingResult,
        trace: MapperTrace,
        diagnostics: list[str],
    ) -> MappingResult:
        """Run the stochastic rescue lane and adopt its result if feasible.

        Called when the refinement loop ends without a feasible mapping (see
        :mod:`repro.spatialmapper.rescue`).  Seeds derive from the same
        fingerprint the cache keys on, so the lane is deterministic per
        request and its outcome stays cacheable.
        """
        step_start_ns = time.perf_counter_ns()
        fingerprint = (
            region.fingerprint(state) if region is not None else state.fingerprint()
        )
        outcome = rescue_search(
            als,
            self.platform,
            self.library,
            state,
            config=self.config,
            analysis=self.analysis,
            region=region,
            fingerprint=fingerprint,
        )
        trace.step_windows.append(
            ("mapper.rescue", step_start_ns, time.perf_counter_ns())
        )
        trace.rescue_searchers_run = outcome.searchers_run
        trace.rescue_candidates = outcome.candidates
        trace.rescue_feasible = outcome.feasible_found
        trace.rescue_budget_exhausted = outcome.budget_exhausted
        if outcome.result is not None:
            trace.rescue_adopted = True
            outcome.result.iterations = best.iterations
            diagnostics.append(
                f"rescue: adopted seeded random placement "
                f"({outcome.feasible_found} feasible of {outcome.candidates} candidates, "
                f"{outcome.events_used} analysis events)"
            )
            return outcome.result
        diagnostics.append(
            f"rescue: no feasible placement among {outcome.candidates} candidates"
            + (" (budget exhausted)" if outcome.budget_exhausted else "")
        )
        return best

    # ------------------------------------------------------------------ #
    def _single_pass(
        self,
        als: ApplicationLevelSpec,
        state: PlatformState,
        exclusions: ExclusionSet,
        trace: MapperTrace,
        diagnostics: list[str],
        region=None,
    ) -> MappingResult:
        """One pass through steps 1-4 under the current exclusions."""
        allowed_tiles = frozenset(region.tile_names) if region is not None else None
        allowed_positions = region.positions if region is not None else None

        # Step 1 — implementations and first-fit tiles.
        step_start_ns = time.perf_counter_ns()
        step1 = select_implementations(
            als,
            self.platform,
            self.library,
            state=state,
            config=self.config,
            exclusions=exclusions,
            allowed_tiles=allowed_tiles,
        )
        trace.step_windows.append(
            ("mapper.step1", step_start_ns, time.perf_counter_ns())
        )
        if not step1.succeeded:
            for feedback in step1.feedback:
                diagnostics.append(f"step 1: {feedback.message}")
            return self._result_for(step1.mapping, als, state, MappingStatus.FAILED, step1.feedback)

        # Step 2 — local-search refinement of the tile assignment.
        step_start_ns = time.perf_counter_ns()
        step2 = refine_tile_assignment(
            step1.mapping,
            als,
            self.platform,
            state=state,
            config=self.config,
            exclusions=exclusions,
            allowed_tiles=allowed_tiles,
        )
        trace.step2_traces.append(step2.trace)
        trace.step_windows.append(
            ("mapper.step2", step_start_ns, time.perf_counter_ns())
        )

        # Step 3 — channel routing.
        step_start_ns = time.perf_counter_ns()
        step3 = route_channels(
            step2.mapping,
            als,
            self.platform,
            state=state,
            config=self.config,
            allowed_positions=allowed_positions,
        )
        trace.step_windows.append(
            ("mapper.step3", step_start_ns, time.perf_counter_ns())
        )
        if not step3.succeeded:
            for feedback in step3.feedback:
                diagnostics.append(f"step 3: {feedback.message}")
            return self._result_for(
                step3.mapping, als, state, MappingStatus.ADEQUATE, step3.feedback
            )

        violations = adherence_violations(
            step3.mapping, self.platform, self.library, state, als
        )
        if violations:
            feedback = [
                Feedback(kind=FeedbackKind.INADHERENT, step=3, message=v) for v in violations
            ]
            diagnostics.extend(f"adherence: {v}" for v in violations)
            return self._result_for(step3.mapping, als, state, MappingStatus.ADEQUATE, feedback)

        # Step 4 — QoS feasibility on the mapped CSDF graph.
        if not self.config.run_feasibility_analysis:
            # The caller analyses feasibility itself (e.g. on a composed
            # multi-region graph); adherent is the best this pass can claim.
            return self._result_for(step3.mapping, als, state, MappingStatus.ADHERENT, [])
        step_start_ns = time.perf_counter_ns()
        step4 = check_feasibility(
            step3.mapping,
            als,
            self.platform,
            self.library,
            state=state,
            config=self.config,
            analysis=self.analysis,
        )
        trace.step_windows.append(
            ("mapper.step4", step_start_ns, time.perf_counter_ns())
        )
        status = MappingStatus.FEASIBLE if step4.feasible else MappingStatus.ADHERENT
        if not step4.feasible:
            diagnostics.append(f"step 4: {step4.report.reason}")
        result = self._result_for(step4.mapping, als, state, status, step4.feedback)
        result.feasibility = step4.report
        result.mapped_csdf = step4.mapped_csdf
        return result

    # ------------------------------------------------------------------ #
    def _result_for(
        self,
        mapping: Mapping,
        als: ApplicationLevelSpec,
        state: PlatformState,
        status: MappingStatus,
        feedback: list[Feedback],
    ) -> MappingResult:
        """Assemble a :class:`MappingResult` with costs for a (partial) mapping."""
        result = MappingResult(
            mapping=mapping,
            status=status,
            energy_nj_per_iteration=mapping_energy_nj(
                mapping, als, self.platform, self.config.cost_model
            ),
            manhattan_cost=manhattan_cost(mapping, als, self.platform),
        )
        result.diagnostics = [f.message for f in feedback]
        result.pending_feedback = feedback
        return result

    def _better(
        self, best: MappingResult | None, candidate: MappingResult
    ) -> MappingResult:
        """The better of two results: higher status first, lower energy second."""
        if best is None:
            return candidate
        if candidate.status.at_least(best.status) and candidate.status is not best.status:
            return candidate
        if candidate.status is best.status and (
            candidate.energy_nj_per_iteration < best.energy_nj_per_iteration
        ):
            return candidate
        return best

    def _apply_feedback(
        self,
        result: MappingResult,
        exclusions: ExclusionSet,
        trace: MapperTrace,
        diagnostics: list[str],
    ) -> bool:
        """Translate the feedback of a failed pass into exclusions.

        Returns ``True`` when at least one new exclusion was added (so a new
        refinement iteration is worthwhile), ``False`` otherwise.
        """
        feedback_list: list[Feedback] = result.pending_feedback
        added = False
        for feedback in feedback_list:
            if feedback.kind is FeedbackKind.THROUGHPUT_VIOLATED and feedback.culprit_process:
                if feedback.culprit_tile_type and exclusions.implementation_allowed(
                    feedback.culprit_process, feedback.culprit_tile_type
                ):
                    exclusions.ban_implementation(
                        feedback.culprit_process, feedback.culprit_tile_type
                    )
                    message = (
                        f"feedback: banning implementation of {feedback.culprit_process!r} on "
                        f"tile type {feedback.culprit_tile_type!r} (throughput bottleneck)"
                    )
                    trace.record_feedback(message)
                    diagnostics.append(message)
                    added = True
            elif feedback.kind is FeedbackKind.ROUTING_FAILED and feedback.culprit_process:
                tile = feedback.culprit_tile or (
                    result.mapping.tile_of(feedback.culprit_process)
                    if result.mapping.is_assigned(feedback.culprit_process)
                    else None
                )
                if tile and exclusions.placement_allowed(feedback.culprit_process, tile):
                    exclusions.ban_placement(feedback.culprit_process, tile)
                    message = (
                        f"feedback: banning placement of {feedback.culprit_process!r} on tile "
                        f"{tile!r} (routing failed)"
                    )
                    trace.record_feedback(message)
                    diagnostics.append(message)
                    added = True
            elif feedback.kind is FeedbackKind.BUFFER_OVERFLOW and feedback.culprit_tile:
                for process in result.mapping.processes_on(feedback.culprit_tile):
                    assignment = result.mapping.assignment(process)
                    if assignment.implementation is None:
                        continue
                    if exclusions.placement_allowed(process, feedback.culprit_tile):
                        exclusions.ban_placement(process, feedback.culprit_tile)
                        message = (
                            f"feedback: banning placement of {process!r} on tile "
                            f"{feedback.culprit_tile!r} (buffer overflow)"
                        )
                        trace.record_feedback(message)
                        diagnostics.append(message)
                        added = True
                        break
            elif feedback.kind is FeedbackKind.INADHERENT and feedback.culprit_process:
                if result.mapping.is_assigned(feedback.culprit_process):
                    tile = result.mapping.tile_of(feedback.culprit_process)
                    if exclusions.placement_allowed(feedback.culprit_process, tile):
                        exclusions.ban_placement(feedback.culprit_process, tile)
                        message = (
                            f"feedback: banning placement of {feedback.culprit_process!r} "
                            f"on tile {tile!r} (inadherent)"
                        )
                        trace.record_feedback(message)
                        diagnostics.append(message)
                        added = True
        return added
