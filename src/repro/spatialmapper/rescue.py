"""Stochastic placement rescue lane: budgeted random search after refinement.

The greedy steps 1-3 plus the refinement loop reject applications that a
better placement would admit — at high fill the first-fit packing and the
one-exclusion-per-iteration feedback simply cannot reshuffle fast enough.
Following gerbmerge's ``TileSearch`` ("random placement + evaluation with a
shared best-score works surprisingly well" for tile packing), this module
runs K seeded random-placement searchers when the refinement loop ends
without a :attr:`~repro.mapping.result.MappingStatus.FEASIBLE` result, each
proposing full placements that are routed, adherence-checked and
feasibility-analysed, and adopts the best feasible mapping found within an
event budget.

Three disciplines keep the lane decision-inert infrastructure-wise:

* **Seeding** — every searcher owns a ``random.Random`` seeded from
  ``crc32`` digests of the *request fingerprint* (the name-free
  :func:`~repro.spatialmapper.region_score.shape_fingerprint` of the
  application plus the region/state fingerprint the mapper cache keys on)
  — the same no-global-RNG-state idiom as obs sampling.  Identical requests
  draw identical placements on every executor, so serial/threaded/process
  drains stay decision-identical and results stay cacheable; renamed but
  identically-shaped applications draw the same seeds.
* **Scratch transactions** — each candidate is evaluated inside a
  :meth:`~repro.platform.state.PlatformState.transaction` that is rolled
  back before the next candidate (the ``step3_routing``/``interregion``
  scratch discipline), so the platform state is bit-identical afterwards.
* **Budget charging** — all feasibility analysis of one rescue call is
  charged against a single :class:`~repro.csdf.analysis.budget.AnalysisBudget`
  ledger threaded through the shared
  :class:`~repro.csdf.analysis.budget.AnalysisEngine`.  Cache hits charge
  their stored cost, so the cut-off point is cache-warmth independent —
  which is what preserves executor decision identity under finite budgets.
  The search is *anytime*: an exhausted ledger returns the best feasible
  candidate found so far.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random

from repro.appmodel.library import ImplementationLibrary
from repro.csdf.analysis.budget import AnalysisBudget, AnalysisEngine
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.assignment import ProcessAssignment
from repro.mapping.cost import manhattan_cost, mapping_energy_nj
from repro.mapping.mapping import Mapping
from repro.mapping.properties import adherence_violations
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.region_score import shape_fingerprint
from repro.spatialmapper.residuals import ResidualTracker
from repro.spatialmapper.step1_implementation import eligible_tiles
from repro.spatialmapper.step3_routing import route_channels
from repro.spatialmapper.step4_feasibility import check_feasibility


def rescue_seed(
    als: ApplicationLevelSpec,
    library: ImplementationLibrary,
    fingerprint: object,
    searcher: int,
) -> int:
    """Deterministic seed of one rescue searcher.

    Derived by ``crc32`` (no global RNG state, like obs trace sampling) from
    the application's name-free shape fingerprint, the region/state
    fingerprint the mapper cache keys on, and the searcher index.  Stable
    under process/channel renaming and across executors, so the whole lane
    replays bit-identically for identical requests.
    """
    base = zlib.crc32(repr((shape_fingerprint(als, library), fingerprint)).encode())
    return zlib.crc32(f"{base}:{searcher}".encode())


@dataclass
class RescueOutcome:
    """What one rescue-lane run did, for the mapper trace and diagnostics."""

    result: MappingResult | None = None
    searchers_run: int = 0
    candidates: int = 0
    feasible_found: int = 0
    budget_exhausted: bool = False
    events_used: int = 0


def _random_placement(
    rng: Random,
    als: ApplicationLevelSpec,
    platform: Platform,
    library: ImplementationLibrary,
    state: PlatformState,
    allowed_tiles: frozenset[str] | None,
) -> Mapping | None:
    """One full random placement, or ``None`` when some process cannot fit.

    Pinned processes keep their pinned tile; mappable processes are placed
    in a shuffled order, each drawing uniformly from its currently-eligible
    (implementation, tile) options.  The refinement loop's exclusions are
    deliberately *not* applied: they encode why the greedy search failed,
    and the rescue lane's whole point is to search outside that corridor.
    """
    mapping = Mapping(als.name)
    for process in als.kpn.pinned_processes():
        mapping.assign(ProcessAssignment(process.name, process.pinned_tile))
    residuals = ResidualTracker.for_mapping(platform, state, mapping)

    order = [process.name for process in als.kpn.mappable_processes()]
    rng.shuffle(order)
    for process_name in order:
        options: list[tuple] = []
        for implementation in library.implementations_for(process_name):
            for tile_name in eligible_tiles(
                implementation, platform, state, mapping,
                residuals=residuals, allowed_tiles=allowed_tiles,
            ):
                options.append((implementation, tile_name))
        if not options:
            return None
        implementation, tile_name = options[rng.randrange(len(options))]
        mapping.assign(ProcessAssignment(process_name, tile_name, implementation))
        residuals.place(tile_name, implementation.memory_bytes)
    return mapping


def rescue_search(
    als: ApplicationLevelSpec,
    platform: Platform,
    library: ImplementationLibrary,
    state: PlatformState,
    *,
    config: MapperConfig,
    analysis: AnalysisEngine,
    region=None,
    fingerprint: object = None,
) -> RescueOutcome:
    """Run the seeded random-placement portfolio and return the best result.

    ``fingerprint`` is the region/state fingerprint the caller would key the
    mapper cache with (seed derivation input); ``region`` confines placement
    to the region's tiles and routing to its routers, exactly like the
    refinement loop's region-scoped passes.
    """
    allowed_tiles = frozenset(region.tile_names) if region is not None else None
    allowed_positions = region.positions if region is not None else None
    ledger = AnalysisBudget(max_events=config.rescue_budget)
    outcome = RescueOutcome()
    best: MappingResult | None = None

    for searcher in range(config.rescue_searchers):
        if ledger.exhausted:
            break
        rng = Random(rescue_seed(als, library, fingerprint, searcher))
        outcome.searchers_run += 1
        for _ in range(config.rescue_attempts):
            if ledger.exhausted:
                break
            mapping = _random_placement(
                rng, als, platform, library, state, allowed_tiles
            )
            if mapping is None:
                continue
            outcome.candidates += 1
            with state.transaction() as txn:
                candidate = _evaluate(
                    mapping,
                    als,
                    platform,
                    library,
                    state,
                    config=config,
                    analysis=analysis,
                    allowed_positions=allowed_positions,
                    ledger=ledger,
                    best=best,
                )
                txn.rollback()
            if candidate is not None:
                outcome.feasible_found += 1
                best = candidate

    outcome.budget_exhausted = ledger.exhausted
    outcome.events_used = ledger.events_used
    outcome.result = best
    return outcome


def _evaluate(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    library: ImplementationLibrary,
    state: PlatformState,
    *,
    config: MapperConfig,
    analysis: AnalysisEngine,
    allowed_positions,
    ledger: AnalysisBudget,
    best: MappingResult | None,
) -> MappingResult | None:
    """Route, adherence-check and analyse one candidate; ``None`` unless it
    is feasible *and* beats the shared best on energy."""
    step3 = route_channels(
        mapping, als, platform,
        state=state, config=config, allowed_positions=allowed_positions,
    )
    if not step3.succeeded:
        return None
    if adherence_violations(step3.mapping, platform, library, state, als):
        return None
    energy = mapping_energy_nj(step3.mapping, als, platform, config.cost_model)
    # Shared-best cut: a candidate that cannot improve on the best feasible
    # energy found so far is not worth a step-4 simulation.  The cut depends
    # only on earlier (deterministic) candidates, so it is replay-stable.
    if best is not None and energy >= best.energy_nj_per_iteration:
        return None
    step4 = check_feasibility(
        step3.mapping, als, platform, library,
        state=state, config=config, analysis=analysis, budget=ledger,
    )
    if not step4.feasible:
        return None
    result = MappingResult(
        mapping=step4.mapping,
        status=MappingStatus.FEASIBLE,
        energy_nj_per_iteration=energy,
        manhattan_cost=manhattan_cost(step4.mapping, als, platform),
    )
    result.feasibility = step4.report
    result.mapped_csdf = step4.mapped_csdf
    return result


__all__ = ["RescueOutcome", "rescue_search", "rescue_seed"]
