"""Feedback between the steps of the spatial mapper.

When a later step fails (no route with enough capacity, QoS violated, buffer
does not fit), it does not simply give up: it produces *feedback* describing
what went wrong, which the outer loop translates into exclusions — banned
implementations or banned (process, tile) placements — before re-running the
earlier steps.  "The feedback from a lower level may result in a completely
different mapping on a higher level in a next iteration" (paper, section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FeedbackKind(enum.Enum):
    """Classification of why a step failed."""

    #: Step 1 could not find any implementation/tile for a process.
    NO_IMPLEMENTATION = "no_implementation"
    #: Step 3 could not route a channel with enough guaranteed throughput.
    ROUTING_FAILED = "routing_failed"
    #: Step 4 found the throughput constraint violated.
    THROUGHPUT_VIOLATED = "throughput_violated"
    #: Step 4 found the latency constraint violated.
    LATENCY_VIOLATED = "latency_violated"
    #: Step 4 could not fit the computed buffers into tile memory.
    BUFFER_OVERFLOW = "buffer_overflow"
    #: A structural adherence violation was detected after a step.
    INADHERENT = "inadherent"


@dataclass(frozen=True)
class Feedback:
    """One piece of feedback emitted by a failing step.

    Attributes
    ----------
    kind:
        Failure classification.
    step:
        Index (1-4) of the step that produced the feedback.
    message:
        Human-readable explanation, kept in the mapper diagnostics.
    culprit_process / culprit_channel / culprit_tile:
        The entity the outer loop should act on, when identifiable.  For a
        throughput violation this is typically the process whose
        implementation is the bottleneck; the outer loop bans that
        implementation and retries.
    """

    kind: FeedbackKind
    step: int
    message: str
    culprit_process: str | None = None
    culprit_channel: str | None = None
    culprit_tile: str | None = None
    culprit_tile_type: str | None = None


@dataclass
class ExclusionSet:
    """Exclusions accumulated from feedback across refinement iterations.

    ``banned_implementations`` holds (process, tile_type) pairs step 1 must
    not choose again; ``banned_placements`` holds (process, tile) pairs steps
    1-2 must not produce again.
    """

    banned_implementations: set[tuple[str, str]] = field(default_factory=set)
    banned_placements: set[tuple[str, str]] = field(default_factory=set)

    def ban_implementation(self, process: str, tile_type: str) -> None:
        """Forbid choosing the given implementation again."""
        self.banned_implementations.add((process, tile_type))

    def ban_placement(self, process: str, tile: str) -> None:
        """Forbid placing the process on the given tile again."""
        self.banned_placements.add((process, tile))

    def implementation_allowed(self, process: str, tile_type: str) -> bool:
        """Whether step 1 may still pick this implementation."""
        return (process, tile_type) not in self.banned_implementations

    def placement_allowed(self, process: str, tile: str) -> bool:
        """Whether the process may still be placed on the tile."""
        return (process, tile) not in self.banned_placements

    def copy(self) -> "ExclusionSet":
        """An independent copy."""
        return ExclusionSet(
            banned_implementations=set(self.banned_implementations),
            banned_placements=set(self.banned_placements),
        )

    def __len__(self) -> int:
        return len(self.banned_implementations) + len(self.banned_placements)
