"""Desirability of processes in step 1 of the mapper.

From the paper (section 3, step 1):

    "The choice of the next process to pick an implementation for is based on
    its desirability.  The desirability of a process is the difference between
    the cheapest assignment and the second cheapest assignment of the process
    to a tile.  In other words, if the alternative is more expensive, the
    desirability to map the process 'now' increases."

A process whose only remaining option is a single tile type has no
alternative at all; its desirability is treated as infinite (it *must* be
mapped now or never), which also matches the worked example: once both
Montiums are taken, the remaining ARM-only processes are simply assigned in
application order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.appmodel.implementation import Implementation
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.routing import manhattan_distance
from repro.spatialmapper.config import DesirabilityMetric, MapperConfig


@dataclass(frozen=True)
class AssignmentOption:
    """A candidate (implementation, tile) pair for a process with its estimated cost."""

    implementation: Implementation
    tile: str
    cost: float


def assignment_options(
    process: str,
    candidates: list[tuple[Implementation, list[str]]],
    *,
    als: ApplicationLevelSpec | None = None,
    platform: Platform | None = None,
    partial_mapping: Mapping | None = None,
    config: MapperConfig | None = None,
) -> list[AssignmentOption]:
    """Enumerate and cost all candidate assignments of a process.

    ``candidates`` pairs each still-eligible implementation with the tiles of
    its type that can currently host it.  The cost of an option is the
    implementation's computation energy; with the
    ``ENERGY_AND_COMMUNICATION`` metric a Manhattan-distance estimate towards
    the process's already-placed neighbours is added, scaled by the cost
    model's per-bit-per-hop energy.
    """
    config = config or MapperConfig()
    options: list[AssignmentOption] = []
    for implementation, tiles in candidates:
        for tile_name in tiles:
            cost = implementation.energy_nj_per_iteration
            if (
                config.desirability_metric is DesirabilityMetric.ENERGY_AND_COMMUNICATION
                and als is not None
                and platform is not None
                and partial_mapping is not None
            ):
                cost += _communication_estimate(
                    process, tile_name, als, platform, partial_mapping, config
                )
            options.append(AssignmentOption(implementation, tile_name, cost))
    options.sort(key=lambda option: (option.cost, option.tile))
    return options


def _communication_estimate(
    process: str,
    tile_name: str,
    als: ApplicationLevelSpec,
    platform: Platform,
    partial_mapping: Mapping,
    config: MapperConfig,
) -> float:
    """Manhattan-distance communication estimate towards already-placed neighbours."""
    position = platform.tile(tile_name).position
    estimate = 0.0
    for channel in als.kpn.channels_of(process):
        if channel.is_control:
            continue
        other = channel.target if channel.source == process else channel.source
        other_process = als.kpn.process(other)
        if other_process.is_pinned and other_process.pinned_tile:
            other_tile = other_process.pinned_tile
        elif partial_mapping.is_assigned(other):
            other_tile = partial_mapping.tile_of(other)
        else:
            continue
        hops = manhattan_distance(position, platform.tile(other_tile).position)
        estimate += hops * channel.bits_per_iteration * config.cost_model.energy_per_bit_per_hop_nj
    return estimate


def tile_type_demands(als: ApplicationLevelSpec, library) -> dict[str, float]:
    """Fractional process-slot demand per tile type of an application.

    Each mappable process contributes one slot of demand, split evenly over
    the tile types its implementations cover — the same flexibility notion
    desirability is built on: a process with a single option is exclusive
    demand on that type, a flexible process dilutes across its
    alternatives.  Region scoring compares these demands against a region's
    residual free slots per type to find the binding tile type before any
    mapper run is spent.
    """
    demands: dict[str, float] = {}
    for process in als.kpn.mappable_processes():
        tile_types = sorted(
            {
                implementation.tile_type
                for implementation in library.implementations_for(process.name)
            }
        )
        if not tile_types:
            continue
        share = 1.0 / len(tile_types)
        for tile_type in tile_types:
            demands[tile_type] = demands.get(tile_type, 0.0) + share
    return demands


def desirability(options: list[AssignmentOption]) -> float:
    """Desirability of a process given its costed assignment options.

    * no option at all → ``-inf`` (the process cannot be mapped; the caller
      must raise feedback);
    * exactly one distinct cost level → ``+inf`` (no alternative exists);
    * otherwise the difference between the second-cheapest and the cheapest
      option cost.
    """
    if not options:
        return -math.inf
    costs = sorted({option.cost for option in options})
    if len(costs) == 1:
        return math.inf
    return costs[1] - costs[0]
