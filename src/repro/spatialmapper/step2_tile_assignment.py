"""Step 2: improve the concrete tile assignment by local search.

The greedy first-fit assignment of step 1 is refined by repeatedly trying,
for every process, to (a) move it to the best available free tile of the same
type or (b) swap it with another process mapped onto the same tile type.  The
measure driving the search is the communication-cost estimate: the sum of the
Manhattan distances of all the application's data channels (the "Cost" column
of Table 2), optionally weighted by token volume.  A reassignment is kept
only when it improves the cost by at least the configured minimum gain; step
2 stops when a full pass over the candidates yields no improvement or when
the iteration cap is reached.

Because a process may only be reassigned to a tile of the same type as the
one it already occupies, this step maintains adequacy by construction
(paper, section 3).

Candidates are scored *incrementally*: a move or swap only changes the
distances of the channels incident to the touched processes, so the search
evaluates a cost delta over those channels (exact — the distances are
integral) instead of recomputing the full metric, and only materialises a
candidate mapping when it is accepted or traced.  Residual slot/memory checks
likewise run against an O(1) :class:`~repro.spatialmapper.residuals.ResidualTracker`
seeded from the platform state's cached aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.cost import incident_channels, manhattan_cost, manhattan_cost_delta
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig, Step2Strategy
from repro.spatialmapper.feedback import ExclusionSet
from repro.spatialmapper.residuals import ResidualTracker
from repro.spatialmapper.trace import Step2Iteration, Step2Trace


@dataclass(frozen=True)
class _Move:
    """Move one process to a free tile of the same type."""

    process: str
    target_tile: str

    def describe(self, mapping: Mapping) -> str:
        return f"move {self.process} from {mapping.tile_of(self.process)} to {self.target_tile}"


@dataclass(frozen=True)
class _Swap:
    """Swap the tiles of two processes mapped onto the same tile type."""

    process_a: str
    process_b: str

    def describe(self, mapping: Mapping) -> str:
        return (
            f"swap {self.process_a} ({mapping.tile_of(self.process_a)}) with "
            f"{self.process_b} ({mapping.tile_of(self.process_b)})"
        )


@dataclass
class Step2Result:
    """Outcome of step 2: the refined mapping plus the iteration trace."""

    mapping: Mapping
    trace: Step2Trace = field(default_factory=Step2Trace)

    @property
    def final_cost(self) -> float:
        """Communication cost after refinement."""
        return self.trace.final_cost


def _assignment_snapshot(mapping: Mapping, als: ApplicationLevelSpec) -> dict[str, str]:
    """Process-to-tile snapshot of the mappable processes (for trace rows)."""
    snapshot: dict[str, str] = {}
    for process in als.kpn.mappable_processes():
        if mapping.is_assigned(process.name):
            snapshot[process.name] = mapping.tile_of(process.name)
    return snapshot


def _proposed_moves(mapping: Mapping, candidate: "_Move | _Swap") -> dict[str, str]:
    """The process -> new-tile reassignments a candidate would perform."""
    if isinstance(candidate, _Move):
        return {candidate.process: candidate.target_tile}
    return {
        candidate.process_a: mapping.tile_of(candidate.process_b),
        candidate.process_b: mapping.tile_of(candidate.process_a),
    }


def _apply_move(mapping: Mapping, move: _Move) -> Mapping:
    """A copy of the mapping with the move applied."""
    candidate = mapping.copy()
    candidate.assign(candidate.assignment(move.process).moved_to(move.target_tile))
    return candidate


def _apply_swap(mapping: Mapping, swap: _Swap) -> Mapping:
    """A copy of the mapping with the swap applied."""
    candidate = mapping.copy()
    assignment_a = candidate.assignment(swap.process_a)
    assignment_b = candidate.assignment(swap.process_b)
    candidate.assign(assignment_a.moved_to(assignment_b.tile))
    candidate.assign(assignment_b.moved_to(assignment_a.tile))
    return candidate


def _apply_candidate(mapping: Mapping, candidate: "_Move | _Swap") -> Mapping:
    """A copy of the mapping with the candidate reassignment applied."""
    if isinstance(candidate, _Move):
        return _apply_move(mapping, candidate)
    return _apply_swap(mapping, candidate)


def _accept(
    mapping: Mapping, candidate: "_Move | _Swap", residuals: ResidualTracker
) -> None:
    """Apply an accepted candidate to the mapping and the residual tracker."""
    if isinstance(candidate, _Move):
        assignment = mapping.assignment(candidate.process)
        memory = assignment.implementation.memory_bytes if assignment.implementation else 0
        residuals.move(assignment.tile, candidate.target_tile, memory)
        mapping.assign(assignment.moved_to(candidate.target_tile))
        return
    assignment_a = mapping.assignment(candidate.process_a)
    assignment_b = mapping.assignment(candidate.process_b)
    memory_a = assignment_a.implementation.memory_bytes if assignment_a.implementation else 0
    memory_b = assignment_b.implementation.memory_bytes if assignment_b.implementation else 0
    residuals.move(assignment_a.tile, assignment_b.tile, memory_a)
    residuals.move(assignment_b.tile, assignment_a.tile, memory_b)
    mapping.assign(assignment_a.moved_to(assignment_b.tile))
    mapping.assign(assignment_b.moved_to(assignment_a.tile))


def _enumerate_candidates(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    residuals: ResidualTracker,
    exclusions: ExclusionSet,
    allowed_tiles: frozenset[str] | None = None,
) -> list[_Move | _Swap]:
    """All candidate reassignments, in deterministic (KPN declaration) order.

    For every mappable process we generate the moves to each free tile of the
    same type (with enough memory and an allowed placement) and the swaps
    with every *later* process currently mapped to the same tile type (so
    each unordered pair appears exactly once).  ``allowed_tiles`` restricts
    move targets to a region's tiles; swaps only ever exchange tiles already
    occupied by the mapping, which region-scoped step 1 placed inside the
    region.
    """
    candidates: list[_Move | _Swap] = []
    processes = [p.name for p in als.kpn.mappable_processes() if mapping.is_assigned(p.name)]
    rank = {name: index for index, name in enumerate(processes)}

    for process_name in processes:
        assignment = mapping.assignment(process_name)
        if assignment.implementation is None:
            continue
        tile_type = platform.tile(assignment.tile).type_name
        # Moves to free tiles of the same type.
        for tile in platform.tiles_of_type(tile_type):
            if tile.name == assignment.tile or not tile.is_processing:
                continue
            if allowed_tiles is not None and tile.name not in allowed_tiles:
                continue
            if not exclusions.placement_allowed(process_name, tile.name):
                continue
            if residuals.free_slots(tile.name) < 1:
                continue
            if assignment.implementation.memory_bytes > residuals.free_memory(tile.name):
                continue
            candidates.append(_Move(process_name, tile.name))
        # Swaps with later processes on the same tile type.
        for other_name in processes:
            if rank[other_name] <= rank[process_name]:
                continue
            other = mapping.assignment(other_name)
            if other.implementation is None:
                continue
            if platform.tile(other.tile).type_name != tile_type:
                continue
            if other.tile == assignment.tile:
                continue
            if not exclusions.placement_allowed(process_name, other.tile):
                continue
            if not exclusions.placement_allowed(other_name, assignment.tile):
                continue
            candidates.append(_Swap(process_name, other_name))
    return candidates


def _candidate_applicable(
    candidate: "_Move | _Swap",
    mapping: Mapping,
    platform: Platform,
    residuals: ResidualTracker,
    exclusions: ExclusionSet,
) -> bool:
    """Whether a candidate is still valid against the *current* mapping.

    The first-improvement strategy enumerates its candidate list once per
    pass; accepting a move mid-pass can invalidate later candidates (their
    target tile may have filled up or a swapped process may have moved away),
    so every candidate is re-checked just before evaluation.
    """
    if isinstance(candidate, _Move):
        if not mapping.is_assigned(candidate.process):
            return False
        assignment = mapping.assignment(candidate.process)
        if assignment.implementation is None or assignment.tile == candidate.target_tile:
            return False
        target = platform.tile(candidate.target_tile)
        if target.type_name != assignment.implementation.tile_type:
            return False
        if not exclusions.placement_allowed(candidate.process, candidate.target_tile):
            return False
        if residuals.free_slots(candidate.target_tile) < 1:
            return False
        if assignment.implementation.memory_bytes > residuals.free_memory(
            candidate.target_tile
        ):
            return False
        return True
    if not (mapping.is_assigned(candidate.process_a) and mapping.is_assigned(candidate.process_b)):
        return False
    assignment_a = mapping.assignment(candidate.process_a)
    assignment_b = mapping.assignment(candidate.process_b)
    if assignment_a.implementation is None or assignment_b.implementation is None:
        return False
    if assignment_a.tile == assignment_b.tile:
        return False
    if platform.tile(assignment_a.tile).type_name != platform.tile(assignment_b.tile).type_name:
        return False
    if not exclusions.placement_allowed(candidate.process_a, assignment_b.tile):
        return False
    if not exclusions.placement_allowed(candidate.process_b, assignment_a.tile):
        return False
    return True


def refine_tile_assignment(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    *,
    state: PlatformState | None = None,
    config: MapperConfig | None = None,
    exclusions: ExclusionSet | None = None,
    allowed_tiles: frozenset[str] | None = None,
) -> Step2Result:
    """Run the step-2 local search and return the refined mapping with its trace."""
    config = config or MapperConfig()
    exclusions = exclusions or ExclusionSet()
    current = mapping.copy()
    residuals = ResidualTracker.for_mapping(platform, state, current)
    incident = incident_channels(als)

    def delta_of(candidate: "_Move | _Swap") -> float:
        return manhattan_cost_delta(
            current,
            als,
            platform,
            _proposed_moves(current, candidate),
            incident,
            weighted_by_tokens=config.step2_weight_by_tokens,
        )

    def full_cost() -> float:
        return manhattan_cost(
            current, als, platform, weighted_by_tokens=config.step2_weight_by_tokens
        )

    trace = Step2Trace(
        initial_assignment=_assignment_snapshot(current, als),
        initial_cost=full_cost(),
    )
    search = (
        _first_improvement
        if config.step2_strategy is Step2Strategy.FIRST_IMPROVEMENT
        else _best_improvement
    )
    current = search(
        current, als, platform, residuals, config, exclusions, trace, delta_of,
        full_cost, allowed_tiles,
    )
    return Step2Result(mapping=current, trace=trace)


def _record(
    trace: Step2Trace,
    config: MapperConfig,
    iteration: int,
    candidate: _Move | _Swap,
    mapping_before: Mapping,
    als: ApplicationLevelSpec,
    cost: float,
    accepted: bool,
) -> None:
    """Append one iteration to the trace (when tracing is enabled)."""
    if not config.keep_step2_trace:
        return
    candidate_mapping = _apply_candidate(mapping_before, candidate)
    remark = "Improvement, keep" if accepted else "No improvement, revert"
    trace.iterations.append(
        Step2Iteration(
            iteration=iteration,
            description=candidate.describe(mapping_before),
            assignment=_assignment_snapshot(candidate_mapping, als),
            cost=cost,
            accepted=accepted,
            remark=remark,
        )
    )


def _first_improvement(
    current: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    residuals: ResidualTracker,
    config: MapperConfig,
    exclusions: ExclusionSet,
    trace: Step2Trace,
    delta_of,
    full_cost,
    allowed_tiles: frozenset[str] | None = None,
) -> Mapping:
    """Evaluate one candidate per iteration; keep it only when it improves the cost."""
    iteration = 0
    current_cost = trace.initial_cost
    min_gain = max(config.step2_min_gain, 1e-12)
    while iteration < config.step2_max_iterations:
        improved_in_pass = False
        candidates = _enumerate_candidates(
            current, als, platform, residuals, exclusions, allowed_tiles
        )
        if not candidates:
            break
        for candidate in candidates:
            if iteration >= config.step2_max_iterations:
                break
            if not _candidate_applicable(candidate, current, platform, residuals, exclusions):
                continue
            iteration += 1
            candidate_cost = current_cost + delta_of(candidate)
            accepted = candidate_cost <= current_cost - min_gain
            _record(trace, config, iteration, candidate, current, als, candidate_cost, accepted)
            if accepted:
                _accept(current, candidate, residuals)
                # Resync from scratch so delta rounding (possible with
                # fractional token weights) never compounds across accepted
                # moves; with integral weights this equals candidate_cost.
                current_cost = full_cost()
                improved_in_pass = True
        if not improved_in_pass:
            break
    return current


def _best_improvement(
    current: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    residuals: ResidualTracker,
    config: MapperConfig,
    exclusions: ExclusionSet,
    trace: Step2Trace,
    delta_of,
    full_cost,
    allowed_tiles: frozenset[str] | None = None,
) -> Mapping:
    """Evaluate all candidates each iteration and apply the best improving one."""
    iteration = 0
    current_cost = trace.initial_cost
    min_gain = max(config.step2_min_gain, 1e-12)
    while iteration < config.step2_max_iterations:
        candidates = _enumerate_candidates(
            current, als, platform, residuals, exclusions, allowed_tiles
        )
        best_candidate: _Move | _Swap | None = None
        best_cost = current_cost
        for candidate in candidates:
            candidate_cost = current_cost + delta_of(candidate)
            if candidate_cost < best_cost - min_gain:
                best_candidate = candidate
                best_cost = candidate_cost
        if best_candidate is None:
            break
        iteration += 1
        _record(trace, config, iteration, best_candidate, current, als, best_cost, True)
        _accept(current, best_candidate, residuals)
        # Resync from scratch so delta rounding (possible with fractional
        # token weights) never compounds; with integral weights this equals
        # best_cost.
        current_cost = full_cost()
    return current
