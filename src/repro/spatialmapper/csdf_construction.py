"""Construction of the mapped CSDF graph (the paper's Figure 3 artefact).

Once processes are placed and channels are routed, the application is
re-expressed as a single CSDF graph in which

* every data process becomes an actor whose per-phase behaviour comes from
  the chosen implementation (converted to time using the clock frequency of
  its tile),
* every pinned source/sink becomes a single-phase actor producing/consuming
  its per-iteration token count, and
* every router hop of every routed channel becomes a small actor with the
  router's 4-clock-cycle latency, consuming and producing one token per
  firing.

The feasibility analysis of step 4 (throughput, latency, buffer sizing) runs
on this graph.
"""

from __future__ import annotations

from repro.appmodel.library import ImplementationLibrary
from repro.csdf.actor import CSDFActor
from repro.csdf.edge import CSDFEdge
from repro.csdf.graph import CSDFGraph
from repro.csdf.phase import PhaseVector
from repro.exceptions import MappingError
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.process import Process, ProcessKind
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform


def _pinned_actor(process: Process, als: ApplicationLevelSpec, role: str) -> CSDFActor:
    """Single-phase actor for a pinned source or sink process."""
    return CSDFActor(
        name=process.name,
        execution_times_ns=PhaseVector([0.0]),
        wcet_cycles=PhaseVector([0.0]),
        tile=process.pinned_tile,
        role=role,
        metadata={"pinned": True},
    )


def _process_actor(
    process: Process,
    mapping: Mapping,
    platform: Platform,
) -> CSDFActor:
    """Actor for a mapped kernel process, using its chosen implementation."""
    assignment = mapping.assignment(process.name)
    if assignment.implementation is None:
        raise MappingError(
            f"process {process.name!r} has no implementation; cannot build the mapped CSDF"
        )
    tile = platform.tile(assignment.tile)
    return assignment.implementation.as_actor(
        tile.frequency_hz, actor_name=process.name, tile=tile.name, role="process"
    )


def _rates_for(
    process: Process,
    mapping: Mapping,
    channel_name: str,
    tokens_per_iteration: float,
    direction: str,
) -> PhaseVector:
    """Token rates of a process on one of its channels.

    Kernel processes use their implementation's per-port rates; pinned
    sources and sinks move the whole per-iteration token count in their
    single phase.
    """
    if process.is_pinned:
        return PhaseVector([tokens_per_iteration])
    assignment = mapping.assignment(process.name)
    if assignment.implementation is None:
        raise MappingError(f"process {process.name!r} has no implementation")
    if direction == "production":
        return assignment.implementation.production_rates(channel_name)
    return assignment.implementation.consumption_rates(channel_name)


def build_mapped_csdf(
    als: ApplicationLevelSpec,
    mapping: Mapping,
    platform: Platform,
    library: ImplementationLibrary | None = None,
    *,
    graph_name: str | None = None,
) -> CSDFGraph:
    """Build the CSDF graph of the mapped application (router actors included).

    Control processes and control channels are omitted: they are not part of
    the data stream (paper, section 4.1) and Figure 3 omits them as well.
    Channels must already be routed; unrouted channels raise
    :class:`~repro.exceptions.MappingError`.
    """
    graph = CSDFGraph(graph_name or f"{als.name}__mapped")

    # Actors for all data processes.
    for process in als.kpn.processes:
        if process.kind is ProcessKind.CONTROL:
            continue
        if process.kind is ProcessKind.SOURCE:
            graph.add_actor(_pinned_actor(process, als, "source"))
        elif process.kind is ProcessKind.SINK:
            graph.add_actor(_pinned_actor(process, als, "sink"))
        else:
            graph.add_actor(_process_actor(process, mapping, platform))

    # Edges (with router actors) for all data channels.
    for channel in als.kpn.data_channels():
        if not mapping.is_routed(channel.name):
            raise MappingError(
                f"channel {channel.name!r} is not routed; run step 3 before building the "
                "mapped CSDF graph"
            )
        route = mapping.route(channel.name)
        source_process = als.kpn.process(channel.source)
        target_process = als.kpn.process(channel.target)
        production = _rates_for(
            source_process, mapping, channel.name, channel.tokens_per_iteration, "production"
        )
        consumption = _rates_for(
            target_process, mapping, channel.name, channel.tokens_per_iteration, "consumption"
        )

        if route.hops == 0:
            graph.add_edge(
                CSDFEdge(
                    name=f"{channel.name}__local",
                    source=channel.source,
                    target=channel.target,
                    production_rates=production,
                    consumption_rates=consumption,
                    metadata={"channel": channel.name, "segment": 0, "last": True},
                )
            )
            continue

        # One router actor per hop; the hop from path[i] to path[i+1] is
        # attributed to the router it arrives at (path[i+1]).
        previous_actor = channel.source
        previous_rates = production
        for hop_index in range(route.hops):
            arrival = route.path[hop_index + 1]
            router = platform.noc.router(arrival)
            actor_name = f"{channel.name}__r{hop_index}_{router.name}"
            graph.add_actor(
                CSDFActor(
                    name=actor_name,
                    execution_times_ns=PhaseVector([router.latency_ns]),
                    wcet_cycles=PhaseVector([float(router.latency_cycles)]),
                    tile=None,
                    role="router",
                    metadata={"channel": channel.name, "position": arrival},
                )
            )
            graph.add_edge(
                CSDFEdge(
                    name=f"{channel.name}__seg{hop_index}",
                    source=previous_actor,
                    target=actor_name,
                    production_rates=previous_rates,
                    consumption_rates=PhaseVector([1]),
                    metadata={"channel": channel.name, "segment": hop_index, "last": False},
                )
            )
            previous_actor = actor_name
            previous_rates = PhaseVector([1])
        graph.add_edge(
            CSDFEdge(
                name=f"{channel.name}__seg{route.hops}",
                source=previous_actor,
                target=channel.target,
                production_rates=previous_rates,
                consumption_rates=consumption,
                metadata={"channel": channel.name, "segment": route.hops, "last": True},
            )
        )
    return graph


def consumer_buffer_edges(graph: CSDFGraph) -> dict[str, str]:
    """Map each KPN channel to the edge entering its consuming actor.

    These are the edges whose buffer capacities correspond to the B_i
    annotations of Figure 3 (the buffers the consuming tile must reserve).
    """
    result: dict[str, str] = {}
    for edge in graph.edges:
        if edge.metadata.get("last"):
            result[edge.metadata["channel"]] = edge.name
    return result
