"""Composite region scoring for the admission pipeline's selection stage.

Fill level (the maximum of slot, memory and link utilisation) is a coarse
desirability signal: two half-full regions look identical even when one has
exhausted exactly the tile type the application needs, or has no link
headroom left for its channel demands.  Picking such a region wastes a full
mapper run before the pipeline falls back.  This module replaces the
least-filled-first ordering with a *composite score* per candidate region:

``score(r) = w_fill * fill(r)
           + w_residual * scarcity(r)      # per-tile-type residual demand
           + w_pressure * pressure(r)      # channel demand vs link headroom
           + w_feedback * penalty(r, s)    # decaying rejection memory``

* ``scarcity`` distributes one slot of demand per mappable process over the
  tile types its implementations cover (see
  :func:`~repro.spatialmapper.desirability.tile_type_demands` — an
  inflexible process is exclusive demand, a flexible one dilutes) and takes
  the worst ratio of demand to free slots of that type inside the region:
  the binding tile type is what decides whether the mapper can succeed.
* ``pressure`` estimates routing pressure as the application's aggregate
  channel demand (bits/s at its required period) over the region's
  remaining internal link headroom.
* ``penalty`` consults a :class:`RejectionMemory`: a decaying, per-region
  memory of the *shapes* of recently rejected applications.  A region that
  just failed to map a similar shape is demoted — or excluded outright when
  the penalty crosses ``exclude_threshold`` — so the pipeline stops paying
  for mapper runs the recent past already proved hopeless.

With :meth:`RegionScorePolicy.fill_only` (all extra weights zero, no
feedback) the composite score *is* the fill level and the ordering is
bit-identical to the historic least-filled-first stage — pinned by the
admission-control differential tests.

Shape fingerprints (:func:`shape_fingerprint`) are canonical digests of an
application's structure — per-process kind/pin/implementation options and
per-channel demands, as sorted multisets — deliberately independent of
process and channel *names*, so a renamed copy of an application hits the
same memory entry (pinned by property test).

:class:`RejectionMemory` updates follow the same journaled-transaction
discipline as :class:`~repro.platform.state.PlatformState` and
:class:`~repro.interregion.budgets.CorridorBudgets`: per-thread transaction
stacks, first-touch snapshots, commit folds into the enclosing scope, and
rollback restores the memory bit-identically — a feedback update made
inside an aborted batch admission leaves no trace.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.exceptions import PlatformError
from repro.kpn.als import ApplicationLevelSpec
from repro.spatialmapper.desirability import tile_type_demands

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.appmodel.library import ImplementationLibrary
    from repro.platform.regions import Region
    from repro.platform.state import PlatformState

__all__ = [
    "RegionScorePolicy",
    "RegionScorer",
    "RejectionMemory",
    "shape_fingerprint",
]

#: A canonical application-shape digest (see :func:`shape_fingerprint`).
ShapeKey = tuple


def shape_fingerprint(
    als: ApplicationLevelSpec, library: "ImplementationLibrary"
) -> ShapeKey:
    """Canonical digest of an application's *shape*, stable under renaming.

    Two applications that differ only in process/channel names (and in
    nothing the mapper can observe) produce equal fingerprints: the digest
    is built from sorted multisets of per-process signatures — kind, pinned
    tile, and the sorted (tile type, memory, cycles) triples of the
    process's implementations — and per-channel signatures (bits per
    iteration plus the endpoints' pinned tiles), together with the QoS
    period.  Names never enter the digest, so a region that rejected
    ``radio_3`` also demotes for an identically-shaped ``radio_7``.
    """
    process_signatures = []
    for process in als.kpn.processes:
        implementations = tuple(
            sorted(
                (
                    implementation.tile_type,
                    implementation.memory_bytes,
                    implementation.total_wcet_cycles,
                )
                for implementation in library.implementations_for(process.name)
            )
        )
        process_signatures.append(
            (process.kind.value, process.pinned_tile or "", implementations)
        )
    channel_signatures = []
    for channel in als.kpn.data_channels():
        source = als.kpn.process(channel.source)
        target = als.kpn.process(channel.target)
        channel_signatures.append(
            (
                channel.bits_per_iteration,
                source.pinned_tile or "",
                target.pinned_tile or "",
            )
        )
    return (
        als.period_ns,
        tuple(sorted(process_signatures)),
        tuple(sorted(channel_signatures)),
    )


# --------------------------------------------------------------------------- #
# Rejection-feedback memory
# --------------------------------------------------------------------------- #
class MemoryTransaction:
    """Undo journal of one :meth:`RejectionMemory.transaction` scope.

    Snapshots, on first touch, the whole per-region weight table of every
    touched region plus the decay clock.  ``rollback`` replays the
    snapshots; ``commit`` folds them into the enclosing open transaction,
    exactly like :class:`~repro.platform.state.StateTransaction`.
    """

    __slots__ = ("_memory", "_undo", "_seen", "closed", "rolled_back")

    def __init__(self, memory: "RejectionMemory") -> None:
        self._memory = memory
        # Entries: ("region", name, {shape: weight} | None) | ("clock", int).
        self._undo: list[tuple] = []
        self._seen: set[str] = set()
        self.closed = False
        self.rolled_back = False

    def commit(self) -> None:
        """Keep every feedback change; fold the journal into the parent."""
        if self.closed:
            if self.rolled_back:
                raise PlatformError("feedback transaction was already rolled back")
            return
        self.closed = True
        stack = self._memory._txn_stack()
        enclosing = stack[: stack.index(self)] if self in stack else stack
        open_enclosing = [txn for txn in enclosing if not txn.closed]
        for entry in self._undo:
            for txn in reversed(open_enclosing):
                if entry[0] == "clock":
                    if not any(e[0] == "clock" for e in txn._undo):
                        txn._undo.append(entry)
                elif entry[1] not in txn._seen:
                    txn._seen.add(entry[1])
                    txn._undo.append(entry)
                break
        self._undo = []

    def rollback(self) -> None:
        """Undo every feedback change made inside the transaction."""
        if self.closed:
            if self.rolled_back:
                return
            raise PlatformError("feedback transaction was already committed")
        memory = self._memory
        for entry in reversed(self._undo):
            if entry[0] == "clock":
                memory._clock = entry[1]
            else:
                _, name, weights = entry
                if weights is None:
                    memory._weights.pop(name, None)
                else:
                    memory._weights[name] = dict(weights)
        self._undo.clear()
        self.closed = True
        self.rolled_back = True


class RejectionMemory:
    """Decaying per-region memory of recently rejected application shapes.

    Every pipeline decision advances a decay clock (:meth:`tick`); every
    in-region mapping failure records one unit of weight against
    ``(region, shape)`` (:meth:`record`).  :meth:`penalty` reads the current
    weight: ``sum(recorded) * decay ** (ticks since recorded)`` — recent
    rejections weigh heavily, old ones fade geometrically and are pruned
    below ``min_weight``.  Decay is driven by *decisions*, not wall time,
    so replaying the same event stream always yields the same penalties
    (determinism is what keeps the serial and threaded engines
    decision-identical).

    Parameters
    ----------
    decay:
        Per-tick multiplicative decay factor in (0, 1).
    min_weight:
        Entries whose weight decays below this are dropped.
    """

    def __init__(self, decay: float = 0.7, min_weight: float = 0.05) -> None:
        if not 0.0 < decay < 1.0:
            raise PlatformError("rejection-memory decay must be in (0, 1)")
        if min_weight <= 0.0:
            raise PlatformError("rejection-memory min_weight must be positive")
        self.decay = decay
        self.min_weight = min_weight
        #: region name -> {shape fingerprint: (weight, clock it was current at)}.
        self._weights: dict[str, dict[ShapeKey, tuple[float, int]]] = {}
        self._clock = 0
        self._transactions: dict[int, list[MemoryTransaction]] = {}

    # -- transactions ---------------------------------------------------- #
    def _txn_stack(self) -> list[MemoryTransaction]:
        return self._transactions.setdefault(threading.get_ident(), [])

    @contextmanager
    def transaction(self) -> Iterator[MemoryTransaction]:
        """Open a journaled scope for tentative feedback updates.

        Commits on normal exit (unless rolled back inside the block), rolls
        back and re-raises on an exception; nested scopes fold into their
        parent on commit, mirroring :meth:`PlatformState.transaction`.
        """
        txn = MemoryTransaction(self)
        stack = self._txn_stack()
        stack.append(txn)
        try:
            yield txn
        except BaseException:
            if not txn.closed:
                txn.rollback()
            raise
        else:
            if not txn.closed:
                txn.commit()
        finally:
            stack.remove(txn)
            if not stack:
                self._transactions.pop(threading.get_ident(), None)

    def _journal_region(self, region_name: str) -> None:
        for txn in reversed(self._transactions.get(threading.get_ident(), ())):
            if txn.closed:
                continue
            if region_name not in txn._seen:
                txn._seen.add(region_name)
                weights = self._weights.get(region_name)
                txn._undo.append(
                    ("region", region_name, None if weights is None else dict(weights))
                )
            return

    def _journal_clock(self) -> None:
        for txn in reversed(self._transactions.get(threading.get_ident(), ())):
            if txn.closed:
                continue
            if not any(entry[0] == "clock" for entry in txn._undo):
                txn._undo.append(("clock", self._clock))
            return

    # -- updates ---------------------------------------------------------- #
    def tick(self) -> None:
        """Advance the decay clock by one decision.

        Stored weights decay lazily (they carry the clock value they were
        current at), so a tick is O(1); pruning happens on the next touch
        of each entry.
        """
        self._journal_clock()
        self._clock += 1

    def record(self, region_name: str, shape: ShapeKey, weight: float = 1.0) -> None:
        """Record one rejection of ``shape`` by ``region_name``."""
        if weight <= 0.0:
            raise PlatformError("rejection weights must be positive")
        self._journal_region(region_name)
        entries = self._weights.setdefault(region_name, {})
        current = self._decayed(entries.get(shape))
        entries[shape] = (current + weight, self._clock)

    # -- queries ---------------------------------------------------------- #
    def _decayed(self, entry: tuple[float, int] | None) -> float:
        if entry is None:
            return 0.0
        weight, stamp = entry
        return weight * self.decay ** (self._clock - stamp)

    def penalty(self, region_name: str, shape: ShapeKey) -> float:
        """Current decayed rejection weight of ``shape`` in ``region_name``.

        Reading prunes entries that decayed below ``min_weight`` (pruning
        is journaled, so a read inside a transaction still rolls back
        bit-identically).
        """
        entries = self._weights.get(region_name)
        if entries is None:
            return 0.0
        entry = entries.get(shape)
        if entry is None:
            return 0.0
        weight = self._decayed(entry)
        if weight < self.min_weight:
            self._journal_region(region_name)
            del entries[shape]
            if not entries:
                del self._weights[region_name]
            return 0.0
        return weight

    def fingerprint(self) -> tuple:
        """Exact digest of the memory (for rollback bit-identity tests).

        Entries are normalised to their decayed weight at the current
        clock, so two states that answer every :meth:`penalty` query
        identically digest identically.  Entries below ``min_weight``
        (pruned lazily on read) are omitted for the same reason.
        """
        parts: list[tuple] = []
        for region_name in sorted(self._weights):
            entries = tuple(
                sorted(
                    (shape, round(self._decayed(entry), 12))
                    for shape, entry in self._weights[region_name].items()
                    if self._decayed(entry) >= self.min_weight
                )
            )
            if entries:
                parts.append((region_name, entries))
        return tuple(parts)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._weights.values())


# --------------------------------------------------------------------------- #
# The scorer
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RegionScorePolicy:
    """Weights of the composite region score (lower score = try first)."""

    fill_weight: float = 1.0
    residual_weight: float = 0.5
    pressure_weight: float = 0.5
    feedback_weight: float = 1.0
    #: Feedback penalty at (or above) which a region is excluded from the
    #: candidate list outright instead of merely demoted.
    exclude_threshold: float = 3.0

    @classmethod
    def fill_only(cls) -> "RegionScorePolicy":
        """The neutral policy: the composite score *is* the fill level.

        With this policy (and no feedback memory) the scorer reproduces the
        historic least-filled-first ordering bit-identically.
        """
        return cls(
            fill_weight=1.0,
            residual_weight=0.0,
            pressure_weight=0.0,
            feedback_weight=0.0,
            exclude_threshold=float("inf"),
        )


class RegionScorer:
    """Scores candidate regions for the pipeline's selection stage.

    Parameters
    ----------
    policy:
        Score weights; defaults to the full composite policy.
    feedback:
        Optional :class:`RejectionMemory`.  Without it the feedback term is
        zero and no region is ever excluded.
    """

    def __init__(
        self,
        policy: RegionScorePolicy | None = None,
        feedback: RejectionMemory | None = None,
    ) -> None:
        self.policy = policy or RegionScorePolicy()
        self.feedback = feedback

    @classmethod
    def adaptive(
        cls,
        policy: RegionScorePolicy | None = None,
        *,
        decay: float = 0.7,
        min_weight: float = 0.05,
    ) -> "RegionScorer":
        """A scorer with the composite policy and a fresh rejection memory."""
        return cls(policy, RejectionMemory(decay=decay, min_weight=min_weight))

    # ------------------------------------------------------------------ #
    def shape_of(
        self, als: ApplicationLevelSpec, library: "ImplementationLibrary"
    ) -> ShapeKey | None:
        """The application's shape fingerprint (``None`` without feedback)."""
        if self.feedback is None:
            return None
        return shape_fingerprint(als, library)

    def excludes(self, region_name: str, shape: ShapeKey | None) -> bool:
        """Whether rejection feedback rules the region out entirely."""
        if self.feedback is None or shape is None:
            return False
        return self.feedback.penalty(region_name, shape) >= self.policy.exclude_threshold

    def score(
        self,
        als: ApplicationLevelSpec,
        library: "ImplementationLibrary",
        region: "Region",
        state: "PlatformState",
        *,
        shape: ShapeKey | None = None,
    ) -> float:
        """Composite score of one candidate region (lower = more desirable)."""
        policy = self.policy
        total = 0.0
        if policy.fill_weight:
            total += policy.fill_weight * region.view(state).fill_level()
        if policy.residual_weight:
            total += policy.residual_weight * self._scarcity(als, library, region, state)
        if policy.pressure_weight:
            total += policy.pressure_weight * self._routing_pressure(als, region, state)
        if policy.feedback_weight and self.feedback is not None and shape is not None:
            total += policy.feedback_weight * self.feedback.penalty(region.name, shape)
        return total

    # ------------------------------------------------------------------ #
    def _scarcity(
        self,
        als: ApplicationLevelSpec,
        library: "ImplementationLibrary",
        region: "Region",
        state: "PlatformState",
    ) -> float:
        """Worst per-tile-type ratio of slot demand to residual supply.

        Demand per type comes from
        :func:`~repro.spatialmapper.desirability.tile_type_demands`; supply
        is the free process slots on the region's tiles of that type.  The
        ``+ 1`` smoothing keeps the ratio finite when a demanded type has
        no free slot left (the region may still qualify through another of
        a flexible process's types) while still ranking it far behind a
        region with real headroom.
        """
        demands = tile_type_demands(als, library)
        if not demands:
            return 0.0
        free_by_type: dict[str, int] = {}
        platform = region.platform
        for tile_name in region.processing_tile_names():
            type_name = platform.tile(tile_name).type_name
            free_by_type[type_name] = free_by_type.get(
                type_name, 0
            ) + state.free_process_slots(tile_name)
        return max(
            demand / (free_by_type.get(type_name, 0) + 1.0)
            for type_name, demand in demands.items()
        )

    def _routing_pressure(
        self,
        als: ApplicationLevelSpec,
        region: "Region",
        state: "PlatformState",
    ) -> float:
        """Aggregate channel demand over the region's remaining link headroom."""
        demand = sum(
            channel.bits_per_iteration for channel in als.kpn.data_channels()
        ) * (1e9 / als.period_ns)
        if demand <= 0.0:
            return 0.0
        headroom = 0.0
        noc = region.platform.noc
        for link_name in region.link_names:
            capacity = noc.link_by_name(link_name).capacity_bits_per_s
            headroom += capacity - state.link_load_bits_per_s(link_name)
        return demand / max(headroom, 1.0)
