"""O(1) residual-capacity bookkeeping for an in-progress mapping.

Steps 1 and 2 of the mapper repeatedly ask "does tile T still have a free
slot / enough memory for this implementation, given the running applications
*and* the choices made so far in this mapping attempt?".  Re-deriving that
from the mapping on every query makes the candidate loops quadratic; the
tracker seeds each tile's residual from the platform state's cached
aggregates (an O(1) query per tile) and then updates it incrementally as
processes are placed, moved or swapped.
"""

from __future__ import annotations

from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.state import PlatformState


class ResidualTracker:
    """Free process slots and memory per tile, updated as a mapping evolves."""

    __slots__ = ("_free_slots", "_free_memory")

    def __init__(self, platform: Platform, state: PlatformState | None = None) -> None:
        self._free_slots: dict[str, int] = {}
        self._free_memory: dict[str, int] = {}
        for tile in platform.tiles:
            if state is not None:
                self._free_slots[tile.name] = state.free_process_slots(tile.name)
                self._free_memory[tile.name] = state.free_memory_bytes(tile.name)
            else:
                self._free_slots[tile.name] = tile.resources.max_processes
                self._free_memory[tile.name] = tile.resources.memory_bytes

    @classmethod
    def for_mapping(
        cls,
        platform: Platform,
        state: PlatformState | None,
        mapping: Mapping,
    ) -> "ResidualTracker":
        """A tracker that already accounts for every placement in ``mapping``.

        Pinned processes carry no implementation but still occupy a slot on
        their pinned tile, matching how the mapper has always counted them.
        """
        tracker = cls(platform, state)
        for assignment in mapping.assignments:
            memory = (
                assignment.implementation.memory_bytes
                if assignment.implementation is not None
                else 0
            )
            tracker.place(assignment.tile, memory)
        return tracker

    # ------------------------------------------------------------------ #
    def free_slots(self, tile_name: str) -> int:
        """Free process slots on the tile, counting in-progress placements."""
        return self._free_slots[tile_name]

    def free_memory(self, tile_name: str) -> int:
        """Free memory on the tile, counting in-progress placements."""
        return self._free_memory[tile_name]

    def place(self, tile_name: str, memory_bytes: int) -> None:
        """Account for a process placed on the tile.

        Tiles unknown to the platform (e.g. a pinned tile of a foreign
        specification) are ignored: they can never be queried, because
        queries only ever name tiles of the platform.
        """
        if tile_name in self._free_slots:
            self._free_slots[tile_name] -= 1
            self._free_memory[tile_name] -= memory_bytes

    def unplace(self, tile_name: str, memory_bytes: int) -> None:
        """Account for a process removed from the tile."""
        if tile_name in self._free_slots:
            self._free_slots[tile_name] += 1
            self._free_memory[tile_name] += memory_bytes

    def move(self, source_tile: str, target_tile: str, memory_bytes: int) -> None:
        """Account for a process moving between tiles."""
        self.unplace(source_tile, memory_bytes)
        self.place(target_tile, memory_bytes)
