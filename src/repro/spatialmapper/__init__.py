"""The run-time spatial mapper — the paper's core contribution.

The mapper decomposes the NP-complete spatial-mapping problem (a Generalised
Assignment Problem once tile heterogeneity is considered) into four
hierarchical steps with iterative refinement:

1. :mod:`~repro.spatialmapper.step1_implementation` — choose an
   implementation (and thereby a tile type) per process, ordered by
   *desirability*, with a first-fit packing onto concrete tiles;
2. :mod:`~repro.spatialmapper.step2_tile_assignment` — improve the concrete
   tile assignment by local search over moves and same-type swaps, using the
   Manhattan-distance communication estimate;
3. :mod:`~repro.spatialmapper.step3_routing` — route channels, heaviest
   first, over NoC links with sufficient residual capacity;
4. :mod:`~repro.spatialmapper.step4_feasibility` — build the mapped CSDF
   graph (Figure 3), verify the QoS constraints by dataflow analysis and
   compute buffer capacities.

Any step that fails emits :class:`~repro.spatialmapper.feedback.Feedback`
which the :class:`~repro.spatialmapper.mapper.SpatialMapper` feeds back into
earlier steps (exclusion of implementations or tiles) and retries, keeping the
best feasible mapping found.
"""

from repro.spatialmapper.cache import CacheStats, MapperCache
from repro.spatialmapper.config import MapperConfig, Step2Strategy
from repro.spatialmapper.desirability import desirability, assignment_options, tile_type_demands
from repro.spatialmapper.feedback import Feedback, FeedbackKind, ExclusionSet
from repro.spatialmapper.region_score import (
    RegionScorePolicy,
    RegionScorer,
    RejectionMemory,
    shape_fingerprint,
)
from repro.spatialmapper.rescue import RescueOutcome, rescue_search, rescue_seed
from repro.spatialmapper.trace import Step2Iteration, Step2Trace, MapperTrace
from repro.spatialmapper.step1_implementation import select_implementations
from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment
from repro.spatialmapper.step3_routing import route_channels
from repro.spatialmapper.step4_feasibility import check_feasibility
from repro.spatialmapper.csdf_construction import build_mapped_csdf
from repro.spatialmapper.mapper import SpatialMapper

__all__ = [
    "CacheStats",
    "MapperCache",
    "MapperConfig",
    "Step2Strategy",
    "desirability",
    "assignment_options",
    "tile_type_demands",
    "RegionScorePolicy",
    "RegionScorer",
    "RejectionMemory",
    "shape_fingerprint",
    "Feedback",
    "FeedbackKind",
    "ExclusionSet",
    "RescueOutcome",
    "rescue_search",
    "rescue_seed",
    "Step2Iteration",
    "Step2Trace",
    "MapperTrace",
    "select_implementations",
    "refine_tile_assignment",
    "route_channels",
    "check_feasibility",
    "build_mapped_csdf",
    "SpatialMapper",
]
