"""Step 4: check the application's QoS constraints on the mapped CSDF graph.

The mapped graph built by :mod:`repro.spatialmapper.csdf_construction` is
analysed with the dataflow machinery of :mod:`repro.csdf.analysis`:

* the steady-state period of the self-timed execution must not exceed the
  required period (throughput constraint);
* if a latency bound is specified, the worst iteration latency under periodic
  source releases must not exceed it;
* the buffer capacities needed to sustain the period are computed and must
  fit into the memory of the consuming tiles.

Any violation produces feedback identifying a culprit (the bottleneck process
or the overflowing tile), which the outer refinement loop of the mapper turns
into an exclusion for the next attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.appmodel.library import ImplementationLibrary
from repro.csdf.analysis.budget import AnalysisBudget, AnalysisEngine
from repro.csdf.graph import CSDFGraph
from repro.csdf.repetition import repetition_vector
from repro.exceptions import DeadlockError, InconsistentGraphError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.mapping import Mapping
from repro.mapping.result import FeasibilityReport
from repro.platform.platform import Platform
from repro.platform.state import PlatformState
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.csdf_construction import build_mapped_csdf, consumer_buffer_edges
from repro.spatialmapper.feedback import Feedback, FeedbackKind


@dataclass
class Step4Result:
    """Outcome of step 4: the analysis report, the mapped graph and feedback."""

    mapping: Mapping
    report: FeasibilityReport
    mapped_csdf: CSDFGraph | None = None
    feedback: list[Feedback] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """Whether all QoS constraints are satisfied."""
        return self.report.satisfied


def _bottleneck_process(
    graph: CSDFGraph, als: ApplicationLevelSpec, mapping: Mapping
) -> tuple[str | None, str | None]:
    """The kernel process with the largest workload per iteration and its tile type."""
    try:
        repetitions = repetition_vector(graph)
    except InconsistentGraphError:
        return None, None
    worst_process: str | None = None
    worst_load = -1.0
    for process in als.kpn.mappable_processes():
        if not graph.has_actor(process.name):
            continue
        actor = graph.actor(process.name)
        cycles_per_iteration = repetitions[actor.name] / actor.phases
        load = actor.total_execution_time_ns() * cycles_per_iteration
        if load > worst_load:
            worst_load = load
            worst_process = process.name
    if worst_process is None:
        return None, None
    assignment = mapping.assignment(worst_process)
    tile_type = assignment.implementation.tile_type if assignment.implementation else None
    return worst_process, tile_type


def check_feasibility(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    library: ImplementationLibrary | None = None,
    *,
    state: PlatformState | None = None,
    config: MapperConfig | None = None,
    analysis: AnalysisEngine | None = None,
    budget: AnalysisBudget | None = None,
) -> Step4Result:
    """Run the step-4 dataflow feasibility check on a routed mapping.

    ``analysis`` is the shared :class:`~repro.csdf.analysis.budget.AnalysisEngine`
    all simulations go through (early exit, verdict cache, budgets); when
    omitted a fresh engine is built from ``config``, which preserves the
    analysis behaviour but starts with a cold cache.  ``budget`` optionally
    charges every analysis call of this check (cache hits at their stored
    cost) against one caller-owned ledger — the rescue lane's anytime
    cut-off rides on it.
    """
    config = config or MapperConfig()
    if analysis is None:
        analysis = AnalysisEngine.from_config(config)
    report = FeasibilityReport(required_period_ns=als.period_ns)
    result = Step4Result(mapping=mapping.copy(), report=report)

    try:
        graph = build_mapped_csdf(als, mapping, platform, library)
    except Exception as error:  # malformed mapping (unrouted channel, missing implementation)
        report.reason = f"could not build the mapped CSDF graph: {error}"
        result.feedback.append(
            Feedback(kind=FeedbackKind.INADHERENT, step=4, message=report.reason)
        )
        return result
    result.mapped_csdf = graph

    # ------------------------------------------------------------------ #
    # Throughput
    # ------------------------------------------------------------------ #
    try:
        achieved = analysis.minimal_period_ns(
            graph, iterations=config.analysis_iterations, budget=budget
        )
    except (DeadlockError, InconsistentGraphError) as error:
        report.reason = f"dataflow analysis failed: {error}"
        result.feedback.append(
            Feedback(kind=FeedbackKind.THROUGHPUT_VIOLATED, step=4, message=report.reason)
        )
        return result
    report.achieved_period_ns = achieved
    if achieved > als.period_ns * (1 + 1e-9):
        process, tile_type = _bottleneck_process(graph, als, mapping)
        report.reason = (
            f"throughput violated: achievable period {achieved:.1f} ns exceeds the required "
            f"{als.period_ns:.1f} ns (bottleneck: {process})"
        )
        result.feedback.append(
            Feedback(
                kind=FeedbackKind.THROUGHPUT_VIOLATED,
                step=4,
                message=report.reason,
                culprit_process=process,
                culprit_tile_type=tile_type,
            )
        )
        return result

    # ------------------------------------------------------------------ #
    # Buffer capacities
    # ------------------------------------------------------------------ #
    try:
        if config.minimize_buffers:
            capacities = analysis.minimize_buffer_capacities(
                graph, als.period_ns, iterations=config.analysis_iterations, budget=budget
            )
        else:
            capacities = analysis.sufficient_buffer_capacities(
                graph, als.period_ns, iterations=config.analysis_iterations, budget=budget
            )
    except DeadlockError as error:
        report.reason = f"buffer analysis failed: {error}"
        result.feedback.append(
            Feedback(kind=FeedbackKind.THROUGHPUT_VIOLATED, step=4, message=report.reason)
        )
        return result
    report.buffer_capacities = capacities
    channel_buffers = consumer_buffer_edges(graph)
    for channel_name, edge_name in channel_buffers.items():
        result.mapping.set_buffer_capacity(channel_name, capacities[edge_name])

    # Buffers live in the memory of the consuming tile; check they fit.
    overflow = _buffer_overflows(result.mapping, als, platform, state, capacities, channel_buffers)
    if overflow:
        tile_name, needed, available = overflow
        report.reason = (
            f"buffer overflow on tile {tile_name!r}: {needed} bytes of stream buffers needed "
            f"but only {available} bytes available"
        )
        result.feedback.append(
            Feedback(
                kind=FeedbackKind.BUFFER_OVERFLOW,
                step=4,
                message=report.reason,
                culprit_tile=tile_name,
            )
        )
        return result

    # ------------------------------------------------------------------ #
    # Latency
    # ------------------------------------------------------------------ #
    if als.qos.max_latency_ns is not None:
        sources = [a.name for a in graph.actors_with_role("source")]
        sinks = [a.name for a in graph.actors_with_role("sink")]
        if len(sources) == 1 and len(sinks) == 1:
            latency = analysis.end_to_end_latency_ns(
                graph,
                sources[0],
                sinks[0],
                iterations=config.analysis_iterations,
                source_period_ns=als.period_ns,
                budget=budget,
            )
            report.latency_ns = latency
            if latency > als.qos.max_latency_ns * (1 + 1e-9):
                report.reason = (
                    f"latency violated: {latency:.1f} ns exceeds the bound of "
                    f"{als.qos.max_latency_ns:.1f} ns"
                )
                result.feedback.append(
                    Feedback(
                        kind=FeedbackKind.LATENCY_VIOLATED, step=4, message=report.reason
                    )
                )
                return result

    report.satisfied = True
    report.reason = "all QoS constraints satisfied"
    return result


def _buffer_overflows(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    state: PlatformState | None,
    capacities: dict[str, int],
    channel_buffers: dict[str, str],
) -> tuple[str, int, int] | None:
    """First tile whose memory cannot hold its implementations plus stream buffers."""
    per_tile_buffer_bytes: dict[str, int] = {}
    for channel_name, edge_name in channel_buffers.items():
        channel = als.kpn.channel(channel_name)
        consumer = als.kpn.process(channel.target)
        if consumer.is_pinned:
            # The sink's buffer is fixed by its own specification (paper, 4.4).
            continue
        tile_name = mapping.tile_of(channel.target)
        token_bytes = max(channel.token_size_bits // 8, 1)
        per_tile_buffer_bytes[tile_name] = (
            per_tile_buffer_bytes.get(tile_name, 0) + capacities[edge_name] * token_bytes
        )
    for tile_name, buffer_bytes in per_tile_buffer_bytes.items():
        tile = platform.tile(tile_name)
        used_existing = state.used_memory_bytes(tile_name) if state else 0
        used_implementations = sum(
            mapping.assignment(p).implementation.memory_bytes
            for p in mapping.processes_on(tile_name)
            if mapping.assignment(p).implementation is not None
        )
        available = tile.resources.memory_bytes - used_existing - used_implementations
        if buffer_bytes > available:
            return tile_name, buffer_bytes, available
    return None
