"""Step 3: assign channels to paths through the NoC.

Channels are sorted by non-increasing throughput requirement and routed one
by one; each channel gets a shortest path between the routers of its endpoint
tiles over only those links that still have enough residual capacity
(considering both the allocations of already-running applications and the
channels routed earlier in this step).  Sorting heavy channels first increases
the probability that a demanding channel still finds a short path (paper,
section 3, step 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import RoutingError
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.mapping.assignment import ChannelRoute
from repro.mapping.mapping import Mapping
from repro.platform.platform import Platform
from repro.platform.routing import capacity_aware_shortest_path
from repro.platform.state import LinkAllocation, PlatformState
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.feedback import Feedback, FeedbackKind
from repro.units import NS_PER_S


@dataclass
class Step3Result:
    """Outcome of step 3: the mapping with routes plus any feedback raised."""

    mapping: Mapping
    feedback: list[Feedback] = field(default_factory=list)
    link_loads_bits_per_s: dict[str, float] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """Whether every data channel received a route."""
        return not self.feedback


def channel_throughput_bits_per_s(channel: Channel, period_ns: float) -> float:
    """Guaranteed throughput a channel needs, in bits per second."""
    return channel.bits_per_iteration * NS_PER_S / period_ns


def _endpoint_tile(als: ApplicationLevelSpec, mapping: Mapping, process_name: str) -> str | None:
    """Tile hosting a channel endpoint, or ``None`` when it is not placed yet."""
    process = als.kpn.process(process_name)
    if process.is_pinned and process.pinned_tile is not None:
        return process.pinned_tile
    if mapping.is_assigned(process_name):
        return mapping.tile_of(process_name)
    return None


def route_channels(
    mapping: Mapping,
    als: ApplicationLevelSpec,
    platform: Platform,
    *,
    state: PlatformState | None = None,
    config: MapperConfig | None = None,
    allowed_positions: frozenset | None = None,
) -> Step3Result:
    """Route every data channel of the application and return the updated mapping.

    Channels between processes sharing a tile are recorded as local routes
    (a single-router path, zero hops).  Channels that cannot be routed with
    sufficient guaranteed throughput produce
    :attr:`~repro.spatialmapper.feedback.FeedbackKind.ROUTING_FAILED`
    feedback naming the channel and its endpoint tiles.
    ``allowed_positions`` confines the path search to a region's routers, so
    region-scoped mappings only ever reserve region-internal links.

    Rather than copying the per-link load dictionary, the tentative
    reservations of this step are journaled directly into the platform state
    inside a :meth:`~repro.platform.state.PlatformState.transaction` that is
    rolled back before returning: the capacity-aware path search reads the
    live O(1) load view, and the state is left bit-identical for the caller
    (committing real reservations is the resource manager's job).
    """
    config = config or MapperConfig()
    result_mapping = mapping.copy()
    result_mapping.clear_routes()
    result = Step3Result(mapping=result_mapping)

    scratch = state if state is not None else PlatformState(platform)
    loads_view = scratch.link_loads_view()
    period_ns = als.period_ns

    channels = sorted(
        als.kpn.data_channels(),
        key=lambda c: (-channel_throughput_bits_per_s(c, period_ns), c.name),
    )
    with scratch.transaction() as txn:
        for channel in channels:
            source_tile = _endpoint_tile(als, result_mapping, channel.source)
            target_tile = _endpoint_tile(als, result_mapping, channel.target)
            if source_tile is None or target_tile is None:
                result.feedback.append(
                    Feedback(
                        kind=FeedbackKind.ROUTING_FAILED,
                        step=3,
                        message=(
                            f"channel {channel.name!r} cannot be routed: endpoint process not placed"
                        ),
                        culprit_channel=channel.name,
                    )
                )
                continue
            required = channel_throughput_bits_per_s(channel, period_ns)
            source_position = platform.tile(source_tile).position
            target_position = platform.tile(target_tile).position
            try:
                path = capacity_aware_shortest_path(
                    platform.noc,
                    source_position,
                    target_position,
                    required_bits_per_s=required,
                    link_loads_bits_per_s=loads_view,
                    allowed_positions=allowed_positions,
                )
            except RoutingError as error:
                result.feedback.append(
                    Feedback(
                        kind=FeedbackKind.ROUTING_FAILED,
                        step=3,
                        message=f"channel {channel.name!r}: {error}",
                        culprit_channel=channel.name,
                        culprit_process=channel.source,
                        culprit_tile=source_tile,
                    )
                )
                continue
            route = ChannelRoute(
                channel=channel.name,
                source_tile=source_tile,
                target_tile=target_tile,
                path=path,
                required_bits_per_s=required,
            )
            result_mapping.add_route(route)
            for a, b in zip(path, path[1:]):
                link = platform.noc.link(a, b)
                scratch.allocate_link(
                    LinkAllocation(
                        application=als.name,
                        channel=channel.name,
                        link=link.name,
                        bits_per_s=required,
                    )
                )

        result.link_loads_bits_per_s = {
            name: load for name, load in loads_view.items() if load
        }
        txn.rollback()
    return result
