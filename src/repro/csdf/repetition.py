"""Repetition vectors and rate consistency of CSDF graphs.

A CSDF graph is *consistent* when there is a repetition vector ``r`` such
that, when every actor ``a`` fires ``r[a]`` times (i.e. completes
``r[a] / phases(a)`` full phase cycles), the number of tokens on every edge
returns to its initial value.  Consistency is a prerequisite for a graph to
execute indefinitely with bounded memory; the spatial mapper refuses to
analyse inconsistent graphs (they indicate a modelling error).

Following the standard CSDF treatment we solve the balance equations on
whole phase cycles: if ``q[a]`` is the number of *phase cycles* actor ``a``
completes per graph iteration, then for every edge ``e`` from ``a`` to ``b``::

    q[a] * total_production(e) == q[b] * total_consumption(e)

The per-firing repetition vector is then ``r[a] = q[a] * phases(a)``.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm

from repro.csdf.graph import CSDFGraph
from repro.exceptions import InconsistentGraphError


def cycle_vector(graph: CSDFGraph) -> dict[str, int]:
    """Return the number of full phase cycles each actor completes per iteration.

    Raises
    ------
    InconsistentGraphError
        If the balance equations have no solution (rate-inconsistent graph).
    """
    if len(graph) == 0:
        raise InconsistentGraphError(f"graph {graph.name!r} has no actors")

    ratios: dict[str, Fraction | None] = {name: None for name in graph.actor_names}

    # Process connected components seeded from each unvisited actor.
    for seed in graph.actor_names:
        if ratios[seed] is not None:
            continue
        ratios[seed] = Fraction(1)
        stack = [seed]
        while stack:
            current = stack.pop()
            current_ratio = ratios[current]
            assert current_ratio is not None
            for edge in graph.output_edges(current):
                if edge.total_production == 0 and edge.total_consumption == 0:
                    continue
                if edge.total_production == 0 or edge.total_consumption == 0:
                    raise InconsistentGraphError(
                        f"edge {edge.name!r} produces or consumes zero tokens per cycle; "
                        "the graph cannot be rate-consistent"
                    )
                implied = current_ratio * Fraction(edge.total_production) / Fraction(
                    edge.total_consumption
                )
                _assign(ratios, edge.target, implied, edge.name, stack)
            for edge in graph.input_edges(current):
                if edge.total_production == 0 and edge.total_consumption == 0:
                    continue
                if edge.total_production == 0 or edge.total_consumption == 0:
                    raise InconsistentGraphError(
                        f"edge {edge.name!r} produces or consumes zero tokens per cycle; "
                        "the graph cannot be rate-consistent"
                    )
                implied = current_ratio * Fraction(edge.total_consumption) / Fraction(
                    edge.total_production
                )
                _assign(ratios, edge.source, implied, edge.name, stack)

    # Scale to the smallest integer solution.
    denominators = [ratio.denominator for ratio in ratios.values() if ratio is not None]
    scale = lcm(*denominators) if denominators else 1
    scaled = {name: int(ratio * scale) for name, ratio in ratios.items() if ratio is not None}
    numerators = [value for value in scaled.values() if value > 0]
    if not numerators:
        raise InconsistentGraphError(f"graph {graph.name!r} has a degenerate repetition vector")
    from math import gcd

    divisor = numerators[0]
    for value in numerators[1:]:
        divisor = gcd(divisor, value)
    return {name: value // divisor for name, value in scaled.items()}


def _assign(
    ratios: dict[str, Fraction | None],
    actor: str,
    implied: Fraction,
    edge_name: str,
    stack: list[str],
) -> None:
    """Record the cycle ratio implied for ``actor`` or detect an inconsistency."""
    existing = ratios.get(actor)
    if existing is None:
        ratios[actor] = implied
        stack.append(actor)
    elif existing != implied:
        raise InconsistentGraphError(
            f"rate inconsistency detected at edge {edge_name!r}: actor {actor!r} would "
            f"need cycle ratios {existing} and {implied}"
        )


def repetition_vector(graph: CSDFGraph) -> dict[str, int]:
    """Return the per-firing repetition vector of a consistent CSDF graph.

    Entry ``r[a]`` is the number of firings (phase executions) of actor ``a``
    per graph iteration.
    """
    cycles = cycle_vector(graph)
    return {name: cycles[name] * graph.actor(name).phases for name in cycles}


def is_consistent(graph: CSDFGraph) -> bool:
    """Whether the graph has a valid repetition vector."""
    try:
        cycle_vector(graph)
    except InconsistentGraphError:
        return False
    return True
