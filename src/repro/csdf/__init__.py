"""Cyclo-Static Data Flow (CSDF) models and analyses.

The paper uses CSDF graphs [Bilsen et al., 1996] as the fine-grained
specification of process *implementations* and of the fully mapped
application (Figure 3): actors are labelled with a worst-case execution time
per phase and edges with per-phase token production and consumption rates.
Feasibility of a spatial mapping (step 4 of the algorithm) is decided by a
dataflow analysis of the mapped CSDF graph.

This package provides the graph model (:mod:`repro.csdf.actor`,
:mod:`repro.csdf.edge`, :mod:`repro.csdf.graph`), repetition-vector /
consistency analysis (:mod:`repro.csdf.repetition`) and the analyses used by
step 4 (:mod:`repro.csdf.analysis`).
"""

from repro.csdf.phase import PhaseVector, expand_phase_spec
from repro.csdf.actor import CSDFActor
from repro.csdf.edge import CSDFEdge
from repro.csdf.graph import CSDFGraph
from repro.csdf.repetition import repetition_vector, is_consistent
from repro.csdf.builder import CSDFBuilder

__all__ = [
    "PhaseVector",
    "expand_phase_spec",
    "CSDFActor",
    "CSDFEdge",
    "CSDFGraph",
    "repetition_vector",
    "is_consistent",
    "CSDFBuilder",
]
