"""Throughput analysis of CSDF graphs.

Two complementary estimates are provided:

* :func:`processor_bound_period_ns` — an analytic lower bound on the
  achievable iteration period: per actor, the total execution time of all its
  firings in one graph iteration (an actor cannot execute two firings at the
  same time).  This bound is cheap and is used by the mapper's early steps to
  discard hopeless implementation choices.
* :func:`minimal_period_ns` — the steady-state period measured by self-timed
  simulation, which accounts for data dependencies, phase interleavings and
  bounded buffers.  This is the value step 4 of the mapper compares against
  the application's required period.
"""

from __future__ import annotations

from repro.csdf.analysis.simulation import simulate
from repro.csdf.graph import CSDFGraph
from repro.csdf.repetition import repetition_vector
from repro.exceptions import DeadlockError


def processor_bound_period_ns(graph: CSDFGraph) -> float:
    """Lower bound on the iteration period: the busiest actor's workload per iteration."""
    repetitions = repetition_vector(graph)
    bound = 0.0
    for actor in graph.actors:
        cycles_per_iteration = repetitions[actor.name] / actor.phases
        workload = actor.total_execution_time_ns() * cycles_per_iteration
        bound = max(bound, workload)
    return bound


def minimal_period_ns(graph: CSDFGraph, iterations: int = 10, warmup: int | None = None) -> float:
    """Steady-state iteration period of the self-timed execution (ns).

    Raises :class:`~repro.exceptions.DeadlockError` when the graph deadlocks
    before completing a single iteration.
    """
    result = simulate(graph, iterations=iterations)
    if result.deadlocked and result.completed_iterations == 0:
        raise DeadlockError(
            f"graph {graph.name!r} deadlocks at t={result.deadlock_time_ns} ns"
        )
    return result.steady_state_period_ns(warmup)


def is_period_sustainable(
    graph: CSDFGraph,
    period_ns: float,
    iterations: int = 10,
    tolerance: float = 1e-9,
) -> bool:
    """Whether the graph can sustain one iteration every ``period_ns`` nanoseconds.

    The check runs the graph with its sources released periodically at
    ``period_ns`` and verifies that (a) it does not deadlock, and (b) the
    backlog does not grow: the completion time of the last simulated
    iteration stays within one period of the ideal schedule.
    """
    if period_ns <= 0:
        raise ValueError("period_ns must be positive")
    result = simulate(graph, iterations=iterations, source_period_ns=period_ns)
    if result.deadlocked:
        return False
    if result.completed_iterations < iterations:
        return False
    finishes = result.iteration_finish_times_ns
    # Under a sustainable period, iteration k finishes at most (latency + k * period);
    # compare the last iterations against the first to detect an unbounded backlog.
    reference = finishes[0]
    slack = period_ns * (1 + tolerance)
    for k, finish in enumerate(finishes):
        ideal = reference + k * period_ns
        if finish > ideal + slack:
            return False
    return True
