"""Throughput analysis of CSDF graphs.

Two complementary estimates are provided:

* :func:`processor_bound_period_ns` — an analytic lower bound on the
  achievable iteration period: per actor, the total execution time of all its
  firings in one graph iteration (an actor cannot execute two firings at the
  same time).  This bound is cheap and is used by the mapper's early steps to
  discard hopeless implementation choices.
* :func:`minimal_period_ns` — the steady-state period measured by self-timed
  simulation, which accounts for data dependencies, phase interleavings and
  bounded buffers.  This is the value step 4 of the mapper compares against
  the application's required period.
"""

from __future__ import annotations

from repro.csdf.analysis.simulation import simulate
from repro.csdf.graph import CSDFGraph
from repro.csdf.repetition import repetition_vector
from repro.exceptions import DeadlockError


def processor_bound_period_ns(graph: CSDFGraph) -> float:
    """Lower bound on the iteration period: the busiest actor's workload per iteration."""
    repetitions = repetition_vector(graph)
    bound = 0.0
    for actor in graph.actors:
        cycles_per_iteration = repetitions[actor.name] / actor.phases
        workload = actor.total_execution_time_ns() * cycles_per_iteration
        bound = max(bound, workload)
    return bound


def minimal_period_ns(graph: CSDFGraph, iterations: int = 10, warmup: int | None = None) -> float:
    """Steady-state iteration period of the self-timed execution (ns).

    Raises :class:`~repro.exceptions.DeadlockError` when the graph deadlocks
    before completing a single iteration.
    """
    result = simulate(graph, iterations=iterations)
    if result.deadlocked and result.completed_iterations == 0:
        raise DeadlockError(
            f"graph {graph.name!r} deadlocks at t={result.deadlock_time_ns} ns"
        )
    return result.steady_state_period_ns(warmup)


def is_period_sustainable(
    graph: CSDFGraph,
    period_ns: float,
    iterations: int = 10,
    tolerance: float = 1e-9,
    *,
    early_exit: bool = False,
    budget=None,
) -> bool:
    """Whether the graph can sustain one iteration every ``period_ns`` nanoseconds.

    The check runs the graph with its sources released periodically at
    ``period_ns`` and verifies that (a) it does not deadlock, and (b) the
    backlog does not grow: shifting every iteration finish back by its ideal
    offset (``finish[k] - k * period``), the spread between the latest and
    earliest shifted finish must stay within one period.  The earliest
    shifted finish — not iteration 0's — is the latency reference, so a
    warmup transient that delays the first iteration cannot mask a later
    backlog.

    With ``early_exit`` the simulation aborts the instant the spread is
    exceeded (the spread over a prefix only grows as more iterations are
    observed, so the first violation already decides the verdict) and stops
    early on an exact state cycle (from which the remaining iterations
    provably replay the observed spread).  Both exits are answer-preserving:
    the verdict is identical to the full run's.

    ``budget`` is an optional :class:`~repro.csdf.analysis.budget.AnalysisBudget`
    charged with the simulated events of the run.
    """
    if period_ns <= 0:
        raise ValueError("period_ns must be positive")
    slack = period_ns * (1 + tolerance)

    monitor = None
    if early_exit:
        shifted_min = [float("inf")]
        shifted_max = [float("-inf")]

        def monitor(k: int, finish_ns: float) -> bool:
            shifted = finish_ns - k * period_ns
            if shifted < shifted_min[0]:
                shifted_min[0] = shifted
            if shifted > shifted_max[0]:
                shifted_max[0] = shifted
            return shifted_max[0] - shifted_min[0] <= slack

    result = simulate(
        graph,
        iterations=iterations,
        source_period_ns=period_ns,
        iteration_monitor=monitor,
        cycle_exit=early_exit,
    )
    if budget is not None:
        budget.charge_events(result.simulated_events)
    if result.aborted:
        # "monitor" aborts on the first spread violation (verdict False);
        # "cycle" proves the remaining iterations repeat the already-checked
        # spread without deadlocking (verdict True).
        return result.abort_reason == "cycle"
    if result.deadlocked:
        return False
    if result.completed_iterations < iterations:
        return False
    finishes = result.iteration_finish_times_ns
    shifted = [finish - k * period_ns for k, finish in enumerate(finishes)]
    return max(shifted) - min(shifted) <= slack
