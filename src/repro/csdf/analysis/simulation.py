"""Self-timed execution of CSDF graphs.

The simulator executes a CSDF graph under *self-timed* semantics: every actor
fires as soon as it has sufficient input tokens (for its current phase) and
sufficient space on its bounded output buffers, and each firing occupies the
actor for the phase's execution time (no auto-concurrency — an actor models a
kernel running on a single tile and can only execute one firing at a time).

The simulator supports two refinements needed by the feasibility analysis of
the spatial mapper:

* **periodic sources** — actors can be constrained to start their k-th graph
  iteration no earlier than ``k * period``, modelling an A/D converter that
  delivers one OFDM symbol every 4 us;
* **bounded buffers** — edges with a finite ``capacity`` exert back-pressure.

The result object records every firing, per-edge maximum buffer occupancy,
iteration completion times, the steady-state period estimate and deadlock
information.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.csdf.graph import CSDFGraph
from repro.csdf.repetition import repetition_vector
from repro.exceptions import DeadlockError
from repro.kpn.process import ProcessKind  # noqa: F401  (re-exported for convenience in tests)


@dataclass(frozen=True)
class FiringRecord:
    """One completed firing of an actor."""

    actor: str
    firing_index: int
    phase_index: int
    start_ns: float
    finish_ns: float


@dataclass
class SimulationResult:
    """Outcome of a self-timed simulation."""

    graph_name: str
    iterations_requested: int
    repetitions: dict[str, int]
    firings: dict[str, list[FiringRecord]]
    max_occupancy: dict[str, int]
    iteration_finish_times_ns: list[float] = field(default_factory=list)
    deadlocked: bool = False
    deadlock_time_ns: float | None = None
    end_time_ns: float = 0.0

    @property
    def completed_iterations(self) -> int:
        """Number of full graph iterations that completed."""
        return len(self.iteration_finish_times_ns)

    def firings_of(self, actor: str) -> list[FiringRecord]:
        """All firings of the given actor, in order."""
        return self.firings.get(actor, [])

    def steady_state_period_ns(self, warmup_iterations: int | None = None) -> float:
        """Average iteration period after discarding a warm-up prefix.

        Raises :class:`~repro.exceptions.DeadlockError` when no complete
        iteration was executed (e.g. because the graph deadlocked early).
        """
        finishes = self.iteration_finish_times_ns
        if not finishes:
            raise DeadlockError(
                f"graph {self.graph_name!r}: no complete iteration was executed"
            )
        if len(finishes) == 1:
            return finishes[0]
        if warmup_iterations is None:
            warmup_iterations = len(finishes) // 2
        warmup_iterations = min(warmup_iterations, len(finishes) - 2)
        warmup_iterations = max(warmup_iterations, 0)
        span = finishes[-1] - finishes[warmup_iterations]
        intervals = len(finishes) - 1 - warmup_iterations
        if intervals <= 0:
            return finishes[-1] - finishes[-2]
        return span / intervals

    def iteration_latency_ns(self, source: str, sink: str, iteration: int) -> float:
        """Latency of one iteration from the source's first start to the sink's last finish."""
        source_rep = self.repetitions[source]
        sink_rep = self.repetitions[sink]
        source_firings = self.firings_of(source)
        sink_firings = self.firings_of(sink)
        first = iteration * source_rep
        last = (iteration + 1) * sink_rep - 1
        if first >= len(source_firings) or last >= len(sink_firings):
            raise DeadlockError(
                f"iteration {iteration} did not complete for actors {source!r}/{sink!r}"
            )
        return sink_firings[last].finish_ns - source_firings[first].start_ns


class SelfTimedSimulator:
    """Event-driven self-timed simulator for CSDF graphs.

    Parameters
    ----------
    graph:
        The graph to execute.  Must be rate-consistent.
    iterations:
        Number of graph iterations to execute (each actor ``a`` fires
        ``iterations * repetition_vector[a]`` times).
    source_period_ns:
        Optional period constraint applied to *source* actors (actors without
        input edges, or the explicit set in ``periodic_actors``): the firings
        belonging to iteration ``k`` may not start before ``k * period``.
    periodic_actors:
        Names of the actors the period constraint applies to.  Defaults to
        all source actors when a period is given.
    """

    def __init__(
        self,
        graph: CSDFGraph,
        iterations: int = 10,
        *,
        source_period_ns: float | None = None,
        periodic_actors: tuple[str, ...] | None = None,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        if source_period_ns is not None and source_period_ns <= 0:
            raise ValueError("source_period_ns must be positive")
        self._graph = graph
        self._iterations = iterations
        self._repetitions = repetition_vector(graph)
        self._source_period_ns = source_period_ns
        if source_period_ns is None:
            self._periodic_actors: frozenset[str] = frozenset()
        elif periodic_actors is not None:
            unknown = [a for a in periodic_actors if not graph.has_actor(a)]
            if unknown:
                raise ValueError(f"unknown periodic actors: {unknown}")
            self._periodic_actors = frozenset(periodic_actors)
        else:
            self._periodic_actors = frozenset(a.name for a in graph.sources())

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the graph and return the simulation result."""
        graph = self._graph
        repetitions = self._repetitions
        target = {name: repetitions[name] * self._iterations for name in repetitions}

        tokens: dict[str, int] = {e.name: e.initial_tokens for e in graph.edges}
        max_occupancy: dict[str, int] = {e.name: e.initial_tokens for e in graph.edges}
        phase: dict[str, int] = {name: 0 for name in graph.actor_names}
        fired: dict[str, int] = {name: 0 for name in graph.actor_names}
        busy: dict[str, bool] = {name: False for name in graph.actor_names}
        firings: dict[str, list[FiringRecord]] = {name: [] for name in graph.actor_names}

        inputs = {name: graph.input_edges(name) for name in graph.actor_names}
        outputs = {name: graph.output_edges(name) for name in graph.actor_names}

        # (finish_time, sequence, actor, phase_index, start_time)
        pending: list[tuple[float, int, str, int, float]] = []
        sequence = 0
        now = 0.0
        deadlocked = False
        deadlock_time: float | None = None

        def can_start(actor_name: str) -> bool:
            if busy[actor_name] or fired[actor_name] >= target[actor_name]:
                return False
            if actor_name in self._periodic_actors and self._source_period_ns is not None:
                iteration_index = fired[actor_name] // repetitions[actor_name]
                if now + 1e-12 < iteration_index * self._source_period_ns:
                    return False
            current_phase = phase[actor_name]
            for edge in inputs[actor_name]:
                needed = edge.consumption_rates.at(current_phase)
                if tokens[edge.name] + 1e-9 < needed:
                    return False
            for edge in outputs[actor_name]:
                if edge.capacity is None:
                    continue
                produced = edge.production_rates.at(current_phase)
                if tokens[edge.name] + produced > edge.capacity + 1e-9:
                    return False
            return True

        def start(actor_name: str) -> None:
            nonlocal sequence
            current_phase = phase[actor_name]
            for edge in inputs[actor_name]:
                tokens[edge.name] -= int(edge.consumption_rates.at(current_phase))
            # Space for the tokens produced by this firing is reserved at the
            # start (that is what the capacity check above admits), so the
            # occupancy statistics must account for it here — otherwise the
            # reported maxima would not be sufficient buffer capacities.
            for edge in outputs[actor_name]:
                projected = tokens[edge.name] + int(edge.production_rates.at(current_phase))
                if projected > max_occupancy[edge.name]:
                    max_occupancy[edge.name] = projected
            duration = graph.actor(actor_name).execution_time_ns(current_phase)
            busy[actor_name] = True
            sequence += 1
            heapq.heappush(pending, (now + duration, sequence, actor_name, current_phase, now))

        def finish(actor_name: str, finished_phase: int, start_time: float, finish_time: float) -> None:
            for edge in outputs[actor_name]:
                produced = int(edge.production_rates.at(finished_phase))
                tokens[edge.name] += produced
                if tokens[edge.name] > max_occupancy[edge.name]:
                    max_occupancy[edge.name] = tokens[edge.name]
            firings[actor_name].append(
                FiringRecord(
                    actor=actor_name,
                    firing_index=fired[actor_name],
                    phase_index=finished_phase,
                    start_ns=start_time,
                    finish_ns=finish_time,
                )
            )
            fired[actor_name] += 1
            phase[actor_name] = (finished_phase + 1) % graph.actor(actor_name).phases
            busy[actor_name] = False

        all_done = lambda: all(fired[name] >= target[name] for name in fired)  # noqa: E731

        while not all_done():
            started_any = True
            while started_any:
                started_any = False
                for actor_name in graph.actor_names:
                    if can_start(actor_name):
                        start(actor_name)
                        started_any = True
            if pending:
                finish_time, _, actor_name, finished_phase, start_time = heapq.heappop(pending)
                now = finish_time
                finish(actor_name, finished_phase, start_time, finish_time)
                continue
            # Nothing running and nothing can start.  Either every remaining
            # actor is a periodic source waiting for its next release, or the
            # graph is deadlocked.
            next_release = self._next_source_release(fired, repetitions, target)
            if next_release is not None and next_release > now:
                now = next_release
                continue
            deadlocked = True
            deadlock_time = now
            break

        iteration_finishes = self._iteration_finish_times(firings, repetitions, target)
        return SimulationResult(
            graph_name=graph.name,
            iterations_requested=self._iterations,
            repetitions=dict(repetitions),
            firings=firings,
            max_occupancy=max_occupancy,
            iteration_finish_times_ns=iteration_finishes,
            deadlocked=deadlocked,
            deadlock_time_ns=deadlock_time,
            end_time_ns=now,
        )

    # ------------------------------------------------------------------ #
    def _next_source_release(
        self,
        fired: dict[str, int],
        repetitions: dict[str, int],
        target: dict[str, int],
    ) -> float | None:
        """Earliest future release time of any periodic source, or ``None``."""
        if self._source_period_ns is None:
            return None
        releases = []
        for actor_name in self._periodic_actors:
            if fired[actor_name] >= target[actor_name]:
                continue
            iteration_index = fired[actor_name] // repetitions[actor_name]
            releases.append(iteration_index * self._source_period_ns)
        if not releases:
            return None
        return min(releases)

    def _iteration_finish_times(
        self,
        firings: dict[str, list[FiringRecord]],
        repetitions: dict[str, int],
        target: dict[str, int],
    ) -> list[float]:
        """Completion time of each fully finished graph iteration."""
        completed = self._iterations
        for actor_name, records in firings.items():
            completed = min(completed, len(records) // repetitions[actor_name])
        finishes: list[float] = []
        for k in range(completed):
            finish = 0.0
            for actor_name, records in firings.items():
                last = (k + 1) * repetitions[actor_name] - 1
                finish = max(finish, records[last].finish_ns)
            finishes.append(finish)
        return finishes


def simulate(
    graph: CSDFGraph,
    iterations: int = 10,
    *,
    source_period_ns: float | None = None,
    periodic_actors: tuple[str, ...] | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SelfTimedSimulator` and run it."""
    simulator = SelfTimedSimulator(
        graph,
        iterations,
        source_period_ns=source_period_ns,
        periodic_actors=periodic_actors,
    )
    return simulator.run()
