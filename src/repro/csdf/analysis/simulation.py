"""Self-timed execution of CSDF graphs.

The simulator executes a CSDF graph under *self-timed* semantics: every actor
fires as soon as it has sufficient input tokens (for its current phase) and
sufficient space on its bounded output buffers, and each firing occupies the
actor for the phase's execution time (no auto-concurrency — an actor models a
kernel running on a single tile and can only execute one firing at a time).

The simulator supports two refinements needed by the feasibility analysis of
the spatial mapper:

* **periodic sources** — actors can be constrained to start their k-th graph
  iteration no earlier than ``k * period``, modelling an A/D converter that
  delivers one OFDM symbol every 4 us;
* **bounded buffers** — edges with a finite ``capacity`` exert back-pressure.

The result object records every firing, per-edge maximum buffer occupancy,
iteration completion times, the steady-state period estimate and deadlock
information.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from repro.csdf.graph import CSDFGraph
from repro.csdf.repetition import repetition_vector
from repro.exceptions import DeadlockError
from repro.kpn.process import ProcessKind  # noqa: F401  (re-exported for convenience in tests)


class FiringRecord(NamedTuple):
    """One completed firing of an actor.

    A ``NamedTuple`` rather than a dataclass: the simulator creates one
    record per firing on the mapper's admission hot path, and tuple
    construction is several times cheaper than a frozen-dataclass ``__init__``.
    """

    actor: str
    firing_index: int
    phase_index: int
    start_ns: float
    finish_ns: float


@dataclass
class SimulationResult:
    """Outcome of a self-timed simulation."""

    graph_name: str
    iterations_requested: int
    repetitions: dict[str, int]
    firings: dict[str, list[FiringRecord]]
    max_occupancy: dict[str, int]
    iteration_finish_times_ns: list[float] = field(default_factory=list)
    deadlocked: bool = False
    deadlock_time_ns: float | None = None
    end_time_ns: float = 0.0
    #: Number of firing-completion events the simulator processed — the
    #: currency of the analysis budget (see :mod:`repro.csdf.analysis.budget`).
    simulated_events: int = 0
    #: Whether the run stopped before executing all requested iterations
    #: because an early-exit condition fired (never set by deadlocks).
    aborted: bool = False
    #: Why the run aborted: ``"monitor"`` (the iteration monitor vetoed) or
    #: ``"cycle"`` (an exact state repeat proved the rest of the run).
    abort_reason: str | None = None

    @property
    def completed_iterations(self) -> int:
        """Number of full graph iterations that completed."""
        return len(self.iteration_finish_times_ns)

    def firings_of(self, actor: str) -> list[FiringRecord]:
        """All firings of the given actor, in order."""
        return self.firings.get(actor, [])

    def steady_state_period_ns(self, warmup_iterations: int | None = None) -> float:
        """Average iteration period after discarding a warm-up prefix.

        Raises :class:`~repro.exceptions.DeadlockError` when no complete
        iteration was executed (e.g. because the graph deadlocked early).
        """
        finishes = self.iteration_finish_times_ns
        if not finishes:
            raise DeadlockError(
                f"graph {self.graph_name!r}: no complete iteration was executed"
            )
        if len(finishes) == 1:
            return finishes[0]
        if warmup_iterations is None:
            warmup_iterations = len(finishes) // 2
        warmup_iterations = min(warmup_iterations, len(finishes) - 2)
        warmup_iterations = max(warmup_iterations, 0)
        span = finishes[-1] - finishes[warmup_iterations]
        intervals = len(finishes) - 1 - warmup_iterations
        if intervals <= 0:
            return finishes[-1] - finishes[-2]
        return span / intervals

    def iteration_latency_ns(self, source: str, sink: str, iteration: int) -> float:
        """Latency of one iteration from the source's first start to the sink's last finish."""
        source_rep = self.repetitions[source]
        sink_rep = self.repetitions[sink]
        source_firings = self.firings_of(source)
        sink_firings = self.firings_of(sink)
        first = iteration * source_rep
        last = (iteration + 1) * sink_rep - 1
        if first >= len(source_firings) or last >= len(sink_firings):
            raise DeadlockError(
                f"iteration {iteration} did not complete for actors {source!r}/{sink!r}"
            )
        return sink_firings[last].finish_ns - source_firings[first].start_ns


class SelfTimedSimulator:
    """Event-driven self-timed simulator for CSDF graphs.

    Parameters
    ----------
    graph:
        The graph to execute.  Must be rate-consistent.
    iterations:
        Number of graph iterations to execute (each actor ``a`` fires
        ``iterations * repetition_vector[a]`` times).
    source_period_ns:
        Optional period constraint applied to *source* actors (actors without
        input edges, or the explicit set in ``periodic_actors``): the firings
        belonging to iteration ``k`` may not start before ``k * period``.
    periodic_actors:
        Names of the actors the period constraint applies to.  Defaults to
        all source actors when a period is given.
    iteration_monitor:
        Optional ``(iteration_index, finish_ns) -> bool`` hook, called the
        moment each graph iteration completes (with the same finish time the
        post-hoc ``iteration_finish_times_ns`` would report).  Returning
        ``False`` aborts the run (``aborted=True, abort_reason="monitor"``);
        the throughput check uses this to stop the instant the backlog
        criterion is violated.
    cycle_exit:
        When ``True``, the simulator snapshots its complete relative state at
        every iteration boundary and stops (``abort_reason="cycle"``) as soon
        as a state repeats exactly: from a repeated state the execution
        replays the observed cycle shifted in time, so the occupancy maxima
        and the per-iteration backlog spread of the remaining iterations are
        already known (see ARCHITECTURE.md, "Analysis budget & simulation
        cache" for the soundness argument, including why the target-truncated
        tail of the full run cannot exceed the recorded maxima).
    """

    def __init__(
        self,
        graph: CSDFGraph,
        iterations: int = 10,
        *,
        source_period_ns: float | None = None,
        periodic_actors: tuple[str, ...] | None = None,
        iteration_monitor: Callable[[int, float], bool] | None = None,
        cycle_exit: bool = False,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        if source_period_ns is not None and source_period_ns <= 0:
            raise ValueError("source_period_ns must be positive")
        self._graph = graph
        self._iterations = iterations
        self._repetitions = repetition_vector(graph)
        self._source_period_ns = source_period_ns
        self._iteration_monitor = iteration_monitor
        self._cycle_exit = cycle_exit
        if source_period_ns is None:
            self._periodic_actors: frozenset[str] = frozenset()
        elif periodic_actors is not None:
            unknown = [a for a in periodic_actors if not graph.has_actor(a)]
            if unknown:
                raise ValueError(f"unknown periodic actors: {unknown}")
            self._periodic_actors = frozenset(periodic_actors)
        else:
            self._periodic_actors = frozenset(a.name for a in graph.sources())

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the graph and return the simulation result.

        The loop works on integer-indexed actors/edges with per-phase rate
        tables precomputed once, so the inner readiness checks are plain list
        lookups.  The scan discipline is identical to a naive fixpoint over
        ``graph.actor_names`` (same order, same tie-breaking), so results are
        bit-identical to the straightforward implementation.
        """
        graph = self._graph
        repetitions = self._repetitions
        names = list(graph.actor_names)
        actor_count = len(names)
        actor_range = range(actor_count)
        reps = [repetitions[name] for name in names]
        target = [repetitions[name] * self._iterations for name in names]

        edges = list(graph.edges)
        edge_index = {edge.name: i for i, edge in enumerate(edges)}
        tokens: list[int] = [edge.initial_tokens for edge in edges]
        max_occupancy: list[int] = [edge.initial_tokens for edge in edges]

        period = self._source_period_ns
        periodic = [period is not None and name in self._periodic_actors for name in names]

        # Per actor and phase: input needs (edge, threshold, consumed), output
        # productions (edge, produced), capacity checks (edge, produced, cap)
        # and firing durations.
        phase_counts: list[int] = []
        in_needs: list[list[tuple[tuple[int, float, int], ...]]] = []
        out_rates: list[list[tuple[tuple[int, int], ...]]] = []
        out_caps: list[list[tuple[tuple[int, int, float], ...]]] = []
        durations: list[list[float]] = []
        for name in names:
            actor = graph.actor(name)
            inputs = graph.input_edges(name)
            outputs = graph.output_edges(name)
            phase_counts.append(actor.phases)
            per_in, per_out, per_cap, per_dur = [], [], [], []
            for p in range(actor.phases):
                per_in.append(
                    tuple(
                        (edge_index[e.name], e.consumption_rates.at(p), int(e.consumption_rates.at(p)))
                        for e in inputs
                    )
                )
                per_out.append(
                    tuple((edge_index[e.name], int(e.production_rates.at(p))) for e in outputs)
                )
                per_cap.append(
                    tuple(
                        (edge_index[e.name], int(e.production_rates.at(p)), e.capacity)
                        for e in outputs
                        if e.capacity is not None
                    )
                )
                per_dur.append(actor.execution_time_ns(p))
            in_needs.append(per_in)
            out_rates.append(per_out)
            out_caps.append(per_cap)
            durations.append(per_dur)

        phase = [0] * actor_count
        fired = [0] * actor_count
        busy = [False] * actor_count
        firings: list[list[FiringRecord]] = [[] for _ in actor_range]
        remaining = sum(target)

        # A *start* consumes tokens and reserves output space but produces
        # nothing, so on a graph without bounded buffers a start can never
        # enable another actor: after a finish event only the finished actor,
        # the consumers of its output edges and (because time advanced) the
        # periodic sources can newly become ready.  Restricting the readiness
        # scan to that precomputed set — in actor order, like the full scan —
        # yields the exact same start sequence at a fraction of the cost.
        #
        # Bounded buffers add back-pressure: a start frees space on its
        # *bounded* input edges, which can newly enable their producers.
        # That wake-up relation is the only extra enablement a bounded graph
        # has, so the affected-set discipline extends to bounded graphs by
        # seeding the same initial set and, whenever an actor starts, adding
        # the producers of its bounded input edges to the candidates of the
        # running scan.  Candidates are visited in actor order per pass until
        # a pass starts nothing — the identical order and quiescence rule as
        # the naive full fixpoint, so results stay bit-identical while the
        # scan only ever touches actors whose readiness can have changed.
        bounded = any(edge.capacity is not None for edge in edges)
        actor_index = {name: a for a, name in enumerate(names)}
        periodic_indices = [a for a in actor_range if periodic[a]]
        affected: list[tuple[int, ...]] = []
        bounded_producers: list[tuple[int, ...]] = []
        for name in names:
            enabled = {actor_index[name]}
            for edge in graph.output_edges(name):
                enabled.add(actor_index[edge.target])
            enabled.update(periodic_indices)
            affected.append(tuple(sorted(enabled)))
            bounded_producers.append(
                tuple(
                    sorted(
                        {
                            actor_index[edge.source]
                            for edge in graph.input_edges(name)
                            if edge.capacity is not None
                        }
                    )
                )
            )

        # (finish_time, sequence, actor, phase_index, start_time)
        pending: list[tuple[float, int, int, int, float]] = []
        heappush, heappop = heapq.heappush, heapq.heappop
        sequence = 0
        now = 0.0
        deadlocked = False
        deadlock_time: float | None = None
        events = 0
        aborted = False
        abort_reason: str | None = None

        # Online iteration-boundary tracking (only when an early-exit hook is
        # active): the event processed when ``min(fired // reps)`` advances is
        # by construction the latest-finishing firing of the completed
        # iteration, so ``now`` at that moment equals the post-hoc
        # ``iteration_finish_times_ns`` entry bit for bit.
        monitor = self._iteration_monitor
        cycle_exit = self._cycle_exit
        track_iterations = monitor is not None or cycle_exit
        online_completed = 0
        seen_states: set[tuple] | None = set() if cycle_exit else None

        def try_start(a: int) -> bool:
            """Start actor ``a`` if it is ready; returns whether it started."""
            nonlocal sequence
            if busy[a] or fired[a] >= target[a]:
                return False
            if periodic[a] and now + 1e-12 < (fired[a] // reps[a]) * period:
                return False
            p = phase[a]
            for e, threshold, _consumed in in_needs[a][p]:
                if tokens[e] + 1e-9 < threshold:
                    return False
            for e, produced, cap in out_caps[a][p]:
                if tokens[e] + produced > cap + 1e-9:
                    return False
            # Start the firing: consume inputs now; space for the tokens
            # produced by this firing is reserved at the start (that is what
            # the capacity check admits), so the occupancy statistics must
            # account for it here — otherwise the reported maxima would not
            # be sufficient buffer capacities.
            for e, _threshold, consumed in in_needs[a][p]:
                tokens[e] -= consumed
            for e, produced in out_rates[a][p]:
                projected = tokens[e] + produced
                if projected > max_occupancy[e]:
                    max_occupancy[e] = projected
            busy[a] = True
            sequence += 1
            heappush(pending, (now + durations[a][p], sequence, a, p, now))
            return True

        candidate = [False] * actor_count
        marked: list[int] = []

        def scan_candidates(initial) -> None:
            """Fixpoint readiness scan over the affected candidates (bounded graphs).

            Candidates are visited in actor order per pass, exactly like the
            naive scan over every actor; actors outside the candidate set
            cannot start (their readiness is unchanged since the last
            quiescent scan), so skipping them cannot change the start
            sequence.  A start wakes the producers of the started actor's
            bounded input edges — the only actors whose readiness a start
            can improve.
            """
            for b in initial:
                if not candidate[b]:
                    candidate[b] = True
                    marked.append(b)
            started_any = True
            while started_any:
                started_any = False
                for a in actor_range:
                    if candidate[a] and try_start(a):
                        started_any = True
                        for b in bounded_producers[a]:
                            if not candidate[b]:
                                candidate[b] = True
                                marked.append(b)
            for b in marked:
                candidate[b] = False
            marked.clear()

        # Initial admission at t = 0 considers every actor.
        if bounded:
            scan_candidates(actor_range)
        else:
            for a in actor_range:
                try_start(a)

        while remaining:
            if pending:
                finish_time, _, a, finished_phase, start_time = heappop(pending)
                now = finish_time
                events += 1
                for e, produced in out_rates[a][finished_phase]:
                    tokens[e] += produced
                    if tokens[e] > max_occupancy[e]:
                        max_occupancy[e] = tokens[e]
                firings[a].append(
                    FiringRecord(names[a], fired[a], finished_phase, start_time, finish_time)
                )
                fired[a] += 1
                phase[a] = (finished_phase + 1) % phase_counts[a]
                busy[a] = False
                remaining -= 1
                crossed_boundary = False
                if track_iterations and fired[a] % reps[a] == 0:
                    completed_now = min(fired[b] // reps[b] for b in actor_range)
                    while online_completed < completed_now:
                        k = online_completed
                        online_completed += 1
                        crossed_boundary = True
                        if monitor is not None and monitor(k, now) is False:
                            aborted = True
                            abort_reason = "monitor"
                            break
                if aborted:
                    break
                if bounded:
                    scan_candidates(affected[a])
                else:
                    for b in affected[a]:
                        try_start(b)
                if crossed_boundary and cycle_exit and remaining:
                    state = self._relative_state(
                        phase, fired, reps, online_completed, tokens,
                        pending, now, periodic_indices, period,
                    )
                    if state in seen_states:
                        aborted = True
                        abort_reason = "cycle"
                        break
                    seen_states.add(state)
                continue
            # Nothing running and nothing can start.  Either every remaining
            # actor is a periodic source waiting for its next release, or the
            # graph is deadlocked.
            next_release = self._next_source_release(names, fired, reps, target)
            if next_release is not None and next_release > now:
                now = next_release
                if bounded:
                    scan_candidates(periodic_indices)
                else:
                    for b in periodic_indices:
                        try_start(b)
                continue
            deadlocked = True
            deadlock_time = now
            break

        firings_by_name = {names[a]: firings[a] for a in actor_range}
        occupancy_by_name = {edge.name: max_occupancy[i] for i, edge in enumerate(edges)}
        iteration_finishes = self._iteration_finish_times(firings_by_name, repetitions)
        return SimulationResult(
            graph_name=graph.name,
            iterations_requested=self._iterations,
            repetitions=dict(repetitions),
            firings=firings_by_name,
            max_occupancy=occupancy_by_name,
            iteration_finish_times_ns=iteration_finishes,
            deadlocked=deadlocked,
            deadlock_time_ns=deadlock_time,
            end_time_ns=now,
            simulated_events=events,
            aborted=aborted,
            abort_reason=abort_reason,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _relative_state(
        phase: list[int],
        fired: list[int],
        reps: list[int],
        completed: int,
        tokens: list[int],
        pending: list[tuple[float, int, int, int, float]],
        now: float,
        periodic_indices: list[int],
        period: float | None,
    ) -> tuple:
        """The simulator's complete state at an iteration boundary, made
        time- and iteration-shift invariant.

        Everything the continuation of the run depends on is captured
        relative to ``now`` and to the number of completed iterations: actor
        phases, firing counts as lags behind the boundary, edge token counts,
        in-flight firings as (time-to-finish, actor, phase) in heap pop order
        (position encodes the sequence tie-break), and the periodic sources'
        next-release offsets.  Two boundaries with equal states therefore
        continue identically, shifted in time — which is what licenses the
        cycle early-exit.
        """
        in_flight = tuple(
            (entry[0] - now, entry[2], entry[3])
            for entry in sorted(pending, key=lambda entry: (entry[0], entry[1]))
        )
        releases = (
            tuple((fired[a] // reps[a]) * period - now for a in periodic_indices)
            if period is not None
            else ()
        )
        return (
            tuple(phase),
            tuple(fired[a] - completed * reps[a] for a in range(len(fired))),
            tuple(tokens),
            in_flight,
            releases,
        )

    # ------------------------------------------------------------------ #
    def _next_source_release(
        self,
        names: list[str],
        fired: list[int],
        reps: list[int],
        target: list[int],
    ) -> float | None:
        """Earliest future release time of any periodic source, or ``None``."""
        if self._source_period_ns is None:
            return None
        releases = []
        for a, name in enumerate(names):
            if name not in self._periodic_actors:
                continue
            if fired[a] >= target[a]:
                continue
            iteration_index = fired[a] // reps[a]
            releases.append(iteration_index * self._source_period_ns)
        if not releases:
            return None
        return min(releases)

    def _iteration_finish_times(
        self,
        firings: dict[str, list[FiringRecord]],
        repetitions: dict[str, int],
    ) -> list[float]:
        """Completion time of each fully finished graph iteration."""
        completed = self._iterations
        for actor_name, records in firings.items():
            completed = min(completed, len(records) // repetitions[actor_name])
        finishes: list[float] = []
        for k in range(completed):
            finish = 0.0
            for actor_name, records in firings.items():
                last = (k + 1) * repetitions[actor_name] - 1
                finish = max(finish, records[last].finish_ns)
            finishes.append(finish)
        return finishes


def simulate(
    graph: CSDFGraph,
    iterations: int = 10,
    *,
    source_period_ns: float | None = None,
    periodic_actors: tuple[str, ...] | None = None,
    iteration_monitor: Callable[[int, float], bool] | None = None,
    cycle_exit: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SelfTimedSimulator` and run it."""
    simulator = SelfTimedSimulator(
        graph,
        iterations,
        source_period_ns=source_period_ns,
        periodic_actors=periodic_actors,
        iteration_monitor=iteration_monitor,
        cycle_exit=cycle_exit,
    )
    return simulator.run()
