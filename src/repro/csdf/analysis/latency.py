"""End-to-end latency analysis of CSDF graphs."""

from __future__ import annotations

from repro.csdf.analysis.simulation import simulate
from repro.csdf.graph import CSDFGraph
from repro.exceptions import CSDFError, DeadlockError


def end_to_end_latency_ns(
    graph: CSDFGraph,
    source: str | None = None,
    sink: str | None = None,
    iterations: int = 10,
    source_period_ns: float | None = None,
    *,
    budget=None,
) -> float:
    """Worst observed iteration latency from ``source`` to ``sink``.

    The latency of iteration ``k`` is the time from the start of the source's
    first firing of that iteration to the finish of the sink's last firing of
    the same iteration; the maximum over all fully simulated iterations is
    returned (the first iterations are typically the slowest because the
    pipeline is still filling, which makes the maximum a safe figure for a
    latency-constraint check).

    When ``source``/``sink`` are omitted they default to the unique source /
    sink actor of the graph; an error is raised when that is ambiguous.
    """
    if source is None:
        sources = graph.sources()
        if len(sources) != 1:
            raise CSDFError(
                f"graph {graph.name!r} has {len(sources)} source actors; specify one explicitly"
            )
        source = sources[0].name
    if sink is None:
        sinks = graph.sinks()
        if len(sinks) != 1:
            raise CSDFError(
                f"graph {graph.name!r} has {len(sinks)} sink actors; specify one explicitly"
            )
        sink = sinks[0].name
    graph.actor(source)
    graph.actor(sink)

    result = simulate(graph, iterations=iterations, source_period_ns=source_period_ns)
    if budget is not None:
        budget.charge_events(result.simulated_events)
    if result.completed_iterations == 0:
        raise DeadlockError(f"graph {graph.name!r} completed no iteration")
    worst = 0.0
    for k in range(result.completed_iterations):
        worst = max(worst, result.iteration_latency_ns(source, sink, k))
    return worst
