"""Budgeted, cached dataflow analysis: the simulation-budget layer of step 4.

After the process-parallel drain removed the GIL ceiling, profiles show the
admission path is simulation-bound: ``minimize_buffer_capacities`` runs an
independent full-restart binary search per edge, each probe simulating every
iteration even when backlog divergence is obvious after two.  This module is
the shared layer that makes those simulations stop paying for work they
don't need:

* :class:`AnalysisBudget` — a per-call ceiling on simulated events and
  probes.  Budgets default to *unlimited*; a finite budget degrades the
  buffer minimisation gracefully to the (always sustainable) sufficient
  capacities instead of failing.  Cache hits charge the *stored* cost of the
  entry they reuse, so the budget trajectory — and therefore every decision
  taken under a finite budget — is identical whether the cache is cold or
  warm.  That is what keeps the serial, threaded and process executors
  bit-identical even with budgets configured.
* :class:`SimulationCache` — an LRU over simulation verdicts keyed by
  ``(kind, structural fingerprint, capacity vector, period, iterations)``.
  Invalidation follows the :class:`~repro.spatialmapper.cache.MapperCache`
  discipline: the key *is* the invalidation (a structurally different graph
  or capacity vector can never match), and the LRU bound retires superseded
  entries.  Values are name-free (indexed by actor/edge insertion position),
  so equivalent mapped graphs of renamed applications share entries.
* :class:`AnalysisEngine` — the façade step 4 and the mapper call instead of
  the raw analysis functions.  It adds early-exit simulation, caching,
  gain-ordered budgeted buffer minimisation with a monotone warm-start
  ledger, and the observability counters surfaced by ``MapperTrace`` and
  ``EngineTelemetry``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.csdf.analysis.buffers import (
    _lower_bound_capacity,
    apply_buffer_capacities,
    probe_order,
    sufficient_buffer_capacities,
)
from repro.csdf.analysis.latency import end_to_end_latency_ns
from repro.csdf.analysis.simulation import simulate
from repro.csdf.analysis.throughput import is_period_sustainable
from repro.csdf.graph import CSDFGraph
from repro.exceptions import DeadlockError


class AnalysisBudget:
    """A ceiling on the simulation work one analysis call may spend.

    ``None`` limits mean unlimited (the default everywhere).  The budget is
    charged *after* each simulation with that simulation's event count — a
    run is never torn down halfway — and checked *before* the next probe
    starts, which keeps the probe sequence deterministic.  Cache hits charge
    the stored cost of the entry they reuse (see module docstring).
    """

    __slots__ = ("max_events", "max_probes", "events_used", "probes_used")

    def __init__(
        self, max_events: int | None = None, max_probes: int | None = None
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be positive or None")
        if max_probes is not None and max_probes < 1:
            raise ValueError("max_probes must be positive or None")
        self.max_events = max_events
        self.max_probes = max_probes
        self.events_used = 0
        self.probes_used = 0

    @property
    def exhausted(self) -> bool:
        """Whether either ceiling has been reached."""
        if self.max_events is not None and self.events_used >= self.max_events:
            return True
        if self.max_probes is not None and self.probes_used >= self.max_probes:
            return True
        return False

    def charge_events(self, events: int) -> None:
        """Account for one simulation's events (real or replayed from cache)."""
        self.events_used += events

    def charge_probe(self) -> None:
        """Account for one buffer-minimisation probe."""
        self.probes_used += 1


@dataclass
class _CacheEntry:
    """One memoised verdict plus the simulated-event cost that produced it."""

    value: object
    cost: int


@dataclass
class SimulationCacheStats:
    """Hit/miss counters of a :class:`SimulationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SimulationCache:
    """Thread-safe LRU over simulation verdicts.

    Keys carry the verdict kind, the graph's structural fingerprint, its
    capacity vector and the analysis parameters; values are immutable
    name-free records, so no cloning is needed on hit (unlike the mapper
    cache's mutable results).
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = SimulationCacheStats()

    def lookup(self, key: tuple) -> _CacheEntry | None:
        """The entry for ``key``, or ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def store(self, key: tuple, value: object, cost: int) -> None:
        """Memoise a verdict with its simulated-event cost."""
        with self._lock:
            self._entries[key] = _CacheEntry(value=value, cost=cost)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class AnalysisEngine:
    """Cached, budgeted, early-exiting front end to the dataflow analyses.

    One engine is shared per admission pipeline (and per drain worker): its
    cache accumulates verdicts across probes, refinement iterations and
    admission requests, and its counters are the source of the
    ``simulations_run`` / ``simulated_events`` / ``cache_hits`` /
    ``budget_exhausted`` observability surfaced in traces and telemetry.

    Decision identity: with unlimited budgets every method returns exactly
    what the underlying uncached analysis returns (early exits are
    answer-preserving; cache entries replay previous answers of the very
    same question).  With finite budgets, results remain deterministic and
    cache-warmth independent because hits charge their stored cost.
    """

    def __init__(
        self,
        *,
        cache_size: int = 256,
        early_exit: bool = True,
        event_budget: int | None = None,
        probe_budget: int | None = None,
    ) -> None:
        self.early_exit = early_exit
        self.event_budget = event_budget
        self.probe_budget = probe_budget
        self.cache: SimulationCache | None = (
            SimulationCache(cache_size) if cache_size else None
        )
        self._lock = threading.Lock()
        self.simulations_run = 0
        self.simulated_events = 0
        self.cache_hits = 0
        self.budget_exhausted = 0

    @classmethod
    def from_config(cls, config) -> "AnalysisEngine":
        """Build an engine from a :class:`~repro.spatialmapper.config.MapperConfig`."""
        return cls(
            cache_size=getattr(config, "analysis_cache_size", 256),
            early_exit=getattr(config, "analysis_early_exit", True),
            event_budget=getattr(config, "analysis_event_budget", None),
            probe_budget=getattr(config, "analysis_probe_budget", None),
        )

    def budget(self) -> AnalysisBudget:
        """A fresh per-call budget with this engine's configured ceilings."""
        return AnalysisBudget(self.event_budget, self.probe_budget)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, int]:
        """Current counter values (monotone; diff two snapshots for a delta)."""
        with self._lock:
            return {
                "simulations_run": self.simulations_run,
                "simulated_events": self.simulated_events,
                "cache_hits": self.cache_hits,
                "budget_exhausted": self.budget_exhausted,
            }

    def publish_metrics(self, registry, counters: dict[str, int] | None = None) -> None:
        """Publish analysis counters (default: a fresh snapshot) into a registry.

        Callers that account per-run deltas (the workload engine) pass the
        delta dict; the counter names match the snapshot keys under the
        ``analysis.`` prefix.
        """
        for key, value in (counters if counters is not None else self.snapshot()).items():
            registry.count(f"analysis.{key}", float(value))

    def _count_simulation(self, events: int) -> None:
        with self._lock:
            self.simulations_run += 1
            self.simulated_events += events

    def _count_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def _count_exhaustion(self) -> None:
        with self._lock:
            self.budget_exhausted += 1

    # ------------------------------------------------------------------ #
    # Cached analyses
    # ------------------------------------------------------------------ #
    def _lookup(self, key: tuple, budget: AnalysisBudget | None) -> _CacheEntry | None:
        if self.cache is None:
            return None
        entry = self.cache.lookup(key)
        if entry is None:
            return None
        self._count_hit()
        if budget is not None:
            budget.charge_events(entry.cost)
        return entry

    def _store(self, key: tuple, value: object, cost: int) -> None:
        if self.cache is not None:
            self.cache.store(key, value, cost)

    def minimal_period_ns(
        self,
        graph: CSDFGraph,
        iterations: int = 10,
        warmup: int | None = None,
        *,
        budget: AnalysisBudget | None = None,
    ) -> float:
        """Cached :func:`~repro.csdf.analysis.throughput.minimal_period_ns`."""
        key = (
            "minimal_period",
            graph.structural_fingerprint(),
            graph.capacity_vector(),
            iterations,
            warmup,
        )
        entry = self._lookup(key, budget)
        if entry is None:
            result = simulate(graph, iterations=iterations)
            cost = result.simulated_events
            self._count_simulation(cost)
            if budget is not None:
                budget.charge_events(cost)
            if result.deadlocked and result.completed_iterations == 0:
                value = ("deadlock", f"graph deadlocks at t={result.deadlock_time_ns} ns")
            else:
                value = ("ok", result.steady_state_period_ns(warmup))
            self._store(key, value, cost)
            entry = _CacheEntry(value=value, cost=cost)
        kind, payload = entry.value
        if kind == "deadlock":
            raise DeadlockError(f"graph {graph.name!r}: {payload}")
        return payload

    def is_period_sustainable(
        self,
        graph: CSDFGraph,
        period_ns: float,
        iterations: int = 10,
        tolerance: float = 1e-9,
        *,
        budget: AnalysisBudget | None = None,
    ) -> bool:
        """Cached, early-exiting sustainability verdict."""
        key = (
            "sustainable",
            graph.structural_fingerprint(),
            graph.capacity_vector(),
            period_ns,
            iterations,
            tolerance,
        )
        entry = self._lookup(key, budget)
        if entry is not None:
            return entry.value
        tally = AnalysisBudget()
        verdict = is_period_sustainable(
            graph,
            period_ns,
            iterations=iterations,
            tolerance=tolerance,
            early_exit=self.early_exit,
            budget=tally,
        )
        self._count_simulation(tally.events_used)
        if budget is not None:
            budget.charge_events(tally.events_used)
        self._store(key, verdict, tally.events_used)
        return verdict

    def sufficient_buffer_capacities(
        self,
        graph: CSDFGraph,
        period_ns: float | None = None,
        iterations: int = 10,
        *,
        budget: AnalysisBudget | None = None,
    ) -> dict[str, int]:
        """Cached sufficient capacities (values keyed back to edge names)."""
        key = (
            "sufficient",
            graph.structural_fingerprint(),
            graph.capacity_vector(),
            period_ns,
            iterations,
        )
        entry = self._lookup(key, budget)
        if entry is None:
            tally = AnalysisBudget()
            try:
                capacities = sufficient_buffer_capacities(
                    graph,
                    period_ns,
                    iterations=iterations,
                    early_exit=self.early_exit,
                    budget=tally,
                )
            except DeadlockError as error:
                self._count_simulation(tally.events_used)
                if budget is not None:
                    budget.charge_events(tally.events_used)
                self._store(key, ("deadlock", str(error)), tally.events_used)
                raise
            self._count_simulation(tally.events_used)
            if budget is not None:
                budget.charge_events(tally.events_used)
            value = ("ok", tuple(capacities[edge.name] for edge in graph.edges))
            self._store(key, value, tally.events_used)
            entry = _CacheEntry(value=value, cost=tally.events_used)
        kind, payload = entry.value
        if kind == "deadlock":
            raise DeadlockError(payload)
        return {edge.name: payload[i] for i, edge in enumerate(graph.edges)}

    def end_to_end_latency_ns(
        self,
        graph: CSDFGraph,
        source: str | None = None,
        sink: str | None = None,
        iterations: int = 10,
        source_period_ns: float | None = None,
        *,
        budget: AnalysisBudget | None = None,
    ) -> float:
        """Cached worst iteration latency between two actors."""
        names = graph.actor_names
        key = (
            "latency",
            graph.structural_fingerprint(),
            graph.capacity_vector(),
            names.index(source) if source is not None else None,
            names.index(sink) if sink is not None else None,
            iterations,
            source_period_ns,
        )
        entry = self._lookup(key, budget)
        if entry is None:
            tally = AnalysisBudget()
            try:
                latency = end_to_end_latency_ns(
                    graph,
                    source,
                    sink,
                    iterations=iterations,
                    source_period_ns=source_period_ns,
                    budget=tally,
                )
            except DeadlockError as error:
                self._count_simulation(tally.events_used)
                if budget is not None:
                    budget.charge_events(tally.events_used)
                self._store(key, ("deadlock", str(error)), tally.events_used)
                raise
            self._count_simulation(tally.events_used)
            if budget is not None:
                budget.charge_events(tally.events_used)
            value = ("ok", latency)
            self._store(key, value, tally.events_used)
            entry = _CacheEntry(value=value, cost=tally.events_used)
        kind, payload = entry.value
        if kind == "deadlock":
            raise DeadlockError(payload)
        return payload

    # ------------------------------------------------------------------ #
    # Budgeted buffer minimisation
    # ------------------------------------------------------------------ #
    def minimize_buffer_capacities(
        self,
        graph: CSDFGraph,
        period_ns: float,
        iterations: int = 8,
        edges: tuple[str, ...] | None = None,
        *,
        budget: AnalysisBudget | None = None,
    ) -> dict[str, int]:
        """Budgeted, cached, warm-started buffer minimisation.

        Identical to the functional
        :func:`~repro.csdf.analysis.buffers.minimize_buffer_capacities` with
        ``order="gain"`` as long as the budget lasts, and provably no worse
        than the sufficient capacities once it runs out:

        * one bounded graph is mutated in place; each probe swaps only the
          probed edge's capacity (capacity-only ``replace_edge``, so the
          cached structural fingerprint survives every probe);
        * edges are processed by descending potential gain (``high - low``),
          so an exhausted budget leaves the least reduction unexplored;
        * a per-call monotone ledger of proven (un)sustainable capacity
          vectors answers dominated probes without simulating: any vector
          pointwise at or above a sustainable one is sustainable, any vector
          pointwise at or below an unsustainable one is unsustainable —
          the same monotonicity the binary search itself rests on;
        * probes the ledger cannot answer go through the
          :class:`SimulationCache`, charging their (stored or fresh) event
          cost against the per-call :class:`AnalysisBudget`.

        When the budget exhausts mid-search, the edge under search keeps the
        smallest capacity already *proven* sustainable and every unprocessed
        edge keeps its sufficient capacity, so the returned vector always
        sustains ``period_ns``.

        ``budget`` overrides the engine's per-call budget with one the caller
        owns — the rescue lane uses this to charge all its feasibility checks
        against a single shared ledger.
        """
        if budget is None:
            budget = self.budget()
        capacities = self.sufficient_buffer_capacities(
            graph, period_ns, iterations=iterations, budget=budget
        )
        if edges is None:
            edges = tuple(capacities.keys())
        edges = probe_order(graph, capacities, edges, "gain")
        edge_names = [edge.name for edge in graph.edges]

        bounded = apply_buffer_capacities(graph, capacities)
        ledger_sustainable: list[tuple[int, ...]] = []
        ledger_unsustainable: list[tuple[int, ...]] = []

        def vector_with(edge_name: str, capacity: int) -> tuple[int, ...]:
            return tuple(
                capacity if name == edge_name else capacities[name]
                for name in edge_names
            )

        def probe(edge_name: str, candidate: int) -> bool:
            vector = vector_with(edge_name, candidate)
            for proven in ledger_sustainable:
                if all(v >= p for v, p in zip(vector, proven)):
                    return True
            for proven in ledger_unsustainable:
                if all(v <= p for v, p in zip(vector, proven)):
                    return False
            bounded.replace_edge(bounded.edge(edge_name).with_capacity(candidate))
            verdict = self.is_period_sustainable(
                bounded, period_ns, iterations=iterations, budget=budget
            )
            (ledger_sustainable if verdict else ledger_unsustainable).append(vector)
            return verdict

        exhausted = False
        for edge_name in edges:
            low = _lower_bound_capacity(graph, edge_name)
            high = capacities[edge_name]
            if high <= low:
                capacities[edge_name] = low
                bounded.replace_edge(bounded.edge(edge_name).with_capacity(low))
                continue
            best = high
            while low <= high:
                if budget.exhausted:
                    exhausted = True
                    break
                budget.charge_probe()
                candidate = (low + high) // 2
                if probe(edge_name, candidate):
                    best = candidate
                    high = candidate - 1
                else:
                    low = candidate + 1
            capacities[edge_name] = best
            bounded.replace_edge(bounded.edge(edge_name).with_capacity(best))
            if exhausted:
                break
        if exhausted:
            self._count_exhaustion()
        return capacities


__all__ = [
    "AnalysisBudget",
    "AnalysisEngine",
    "SimulationCache",
    "SimulationCacheStats",
]
