"""Analyses of CSDF graphs: self-timed simulation, throughput, buffers, latency.

These analyses implement step 4 of the paper's spatial-mapping algorithm: the
mapped application (processes plus router actors, Figure 3) is checked against
its QoS constraints and the buffer capacities B_i are computed.  The buffer
computation is a functional substitute for the analysis of Wiggers et al.
(DAC 2007) referenced by the paper, built on a conservative self-timed
execution of the graph (see DESIGN.md, "Substitutions").
"""

from repro.csdf.analysis.simulation import (
    FiringRecord,
    SimulationResult,
    SelfTimedSimulator,
    simulate,
)
from repro.csdf.analysis.throughput import (
    minimal_period_ns,
    is_period_sustainable,
    processor_bound_period_ns,
)
from repro.csdf.analysis.buffers import (
    sufficient_buffer_capacities,
    minimize_buffer_capacities,
    apply_buffer_capacities,
    probe_order,
)
from repro.csdf.analysis.latency import end_to_end_latency_ns
from repro.csdf.analysis.budget import (
    AnalysisBudget,
    AnalysisEngine,
    SimulationCache,
    SimulationCacheStats,
)

__all__ = [
    "FiringRecord",
    "SimulationResult",
    "SelfTimedSimulator",
    "simulate",
    "minimal_period_ns",
    "is_period_sustainable",
    "processor_bound_period_ns",
    "sufficient_buffer_capacities",
    "minimize_buffer_capacities",
    "apply_buffer_capacities",
    "probe_order",
    "end_to_end_latency_ns",
    "AnalysisBudget",
    "AnalysisEngine",
    "SimulationCache",
    "SimulationCacheStats",
]
