"""Buffer-capacity computation for CSDF graphs.

Step 4 of the paper's algorithm computes, for the mapped application, the
buffer capacities ``B_i`` (Figure 3) that the consuming tiles must reserve.
The paper delegates this to the analysis of Wiggers et al. (DAC 2007); this
module provides a functional substitute built on the self-timed simulator:

* :func:`sufficient_buffer_capacities` observes the maximum buffer occupancy
  while the graph executes with its sources released at the required period
  and unbounded buffers.  Granting each channel its observed maximum is
  sufficient to sustain the period (the bounded execution can then follow the
  same schedule as the unbounded one).
* :func:`minimize_buffer_capacities` additionally shrinks each capacity by
  binary search, re-validating the throughput with bounded buffers after each
  trial.  This yields smaller (though not necessarily globally minimal)
  capacities and is used by the ablation benchmarks.
"""

from __future__ import annotations

from repro.csdf.analysis.simulation import simulate
from repro.csdf.analysis.throughput import is_period_sustainable
from repro.csdf.graph import CSDFGraph
from repro.exceptions import DeadlockError


def _lower_bound_capacity(graph: CSDFGraph, edge_name: str) -> int:
    """Smallest capacity that does not structurally block a single firing."""
    edge = graph.edge(edge_name)
    bound = max(edge.production_rates.max(), edge.consumption_rates.max(), 1)
    return int(max(bound, edge.initial_tokens))


def sufficient_buffer_capacities(
    graph: CSDFGraph,
    period_ns: float | None = None,
    iterations: int = 10,
    *,
    early_exit: bool = False,
    budget=None,
) -> dict[str, int]:
    """Per-edge buffer capacities sufficient to sustain ``period_ns``.

    When ``period_ns`` is ``None`` the graph runs fully self-timed (maximum
    throughput); otherwise the sources are released once per period, which is
    the configuration relevant for the mapper's feasibility check.

    With ``early_exit`` the simulation stops once its state repeats at an
    iteration boundary: from there the execution replays the observed cycle,
    so the occupancy maxima have stabilised and further iterations cannot
    raise them.  The returned capacities are identical to the full run's.
    ``budget`` is an optional
    :class:`~repro.csdf.analysis.budget.AnalysisBudget` charged with the
    run's simulated events.

    Raises :class:`~repro.exceptions.DeadlockError` if the graph cannot
    complete a single iteration even with unbounded buffers.
    """
    unbounded = graph.copy(f"{graph.name}__unbounded")
    for edge in graph.edges:
        if edge.capacity is not None:
            unbounded.replace_edge(edge.with_capacity(None))
    result = simulate(
        unbounded,
        iterations=iterations,
        source_period_ns=period_ns,
        cycle_exit=early_exit,
    )
    if budget is not None:
        budget.charge_events(result.simulated_events)
    if result.deadlocked and result.completed_iterations == 0:
        raise DeadlockError(
            f"graph {graph.name!r} cannot complete an iteration even with unbounded buffers"
        )
    capacities: dict[str, int] = {}
    for edge in graph.edges:
        observed = result.max_occupancy.get(edge.name, 0)
        capacities[edge.name] = max(observed, _lower_bound_capacity(graph, edge.name))
    return capacities


def apply_buffer_capacities(graph: CSDFGraph, capacities: dict[str, int]) -> CSDFGraph:
    """Return a copy of ``graph`` with the given per-edge buffer capacities."""
    bounded = graph.copy(f"{graph.name}__bounded")
    for edge_name, capacity in capacities.items():
        edge = graph.edge(edge_name)
        bounded.replace_edge(edge.with_capacity(int(capacity)))
    return bounded


def probe_order(
    graph: CSDFGraph,
    capacities: dict[str, int],
    edges: tuple[str, ...],
    order: str,
) -> tuple[str, ...]:
    """Edge processing order of the buffer minimisation.

    ``"graph"`` keeps insertion order; ``"gain"`` sorts by descending search
    range (``high - low``, ties broken by insertion order), so the edges
    with the most capacity to win are shrunk first — the order the budgeted
    scheduler uses so that an exhausted probe budget leaves the least
    reduction on the table.
    """
    if order == "graph":
        return edges
    if order != "gain":
        raise ValueError(f"unknown probe order {order!r}")
    position = {name: i for i, name in enumerate(edges)}
    return tuple(
        sorted(
            edges,
            key=lambda name: (
                -(capacities[name] - _lower_bound_capacity(graph, name)),
                position[name],
            ),
        )
    )


def minimize_buffer_capacities(
    graph: CSDFGraph,
    period_ns: float,
    iterations: int = 8,
    edges: tuple[str, ...] | None = None,
    *,
    order: str = "graph",
    early_exit: bool = False,
) -> dict[str, int]:
    """Shrink buffer capacities while keeping ``period_ns`` sustainable.

    Starting from :func:`sufficient_buffer_capacities`, each edge capacity is
    reduced by binary search, one edge at a time, in :func:`probe_order`
    order.  The result is a per-edge capacity vector under which
    :func:`~repro.csdf.analysis.throughput.is_period_sustainable` still holds.

    One bounded graph is built up front and each probe swaps only the probed
    edge's capacity (a capacity-only ``replace_edge``), instead of copying
    the whole graph per trial; the probe sequence and the resulting vector
    are unchanged.
    """
    capacities = sufficient_buffer_capacities(graph, period_ns, iterations=iterations)
    if edges is None:
        edges = tuple(capacities.keys())
    edges = probe_order(graph, capacities, edges, order)

    bounded = apply_buffer_capacities(graph, capacities)
    for edge_name in edges:
        low = _lower_bound_capacity(graph, edge_name)
        high = capacities[edge_name]
        if high <= low:
            capacities[edge_name] = low
            bounded.replace_edge(bounded.edge(edge_name).with_capacity(low))
            continue
        best = high
        while low <= high:
            candidate = (low + high) // 2
            bounded.replace_edge(bounded.edge(edge_name).with_capacity(candidate))
            if is_period_sustainable(
                bounded, period_ns, iterations=iterations, early_exit=early_exit
            ):
                best = candidate
                high = candidate - 1
            else:
                low = candidate + 1
        capacities[edge_name] = best
        bounded.replace_edge(bounded.edge(edge_name).with_capacity(best))
    return capacities
