"""Phase vectors: per-phase values of cyclo-static actors and edges.

The paper (Table 1) uses the compact notation ``<x^n, y^m>`` for ``n + m``
phases where the first ``n`` phases carry value ``x`` and the last ``m``
phases value ``y``, e.g. ``<8^2, (8,0)^8>`` for the input rates of the
ARM prefix-removal implementation.  :func:`expand_phase_spec` expands such a
compact specification (given as Python tuples) into a flat tuple of values,
and :class:`PhaseVector` wraps the flat tuple with cyclic indexing, totals
and equality semantics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence


def expand_phase_spec(spec: Sequence) -> tuple[float, ...]:
    """Expand a compact phase specification into a flat tuple of per-phase values.

    The specification is a sequence whose elements are either

    * a number ``x`` — one phase with value ``x``;
    * a pair ``(x, n)`` with ``n`` an ``int`` repetition count — ``n`` phases
      with value ``x`` (the paper's ``x^n``); or
    * a pair ``((x, y, ...), n)`` — the inner pattern repeated ``n`` times
      (the paper's ``(x, y)^n``).

    Examples
    --------
    >>> expand_phase_spec([(8, 2), ((8, 0), 8)])[:6]
    (8, 8, 8, 0, 8, 0)
    >>> expand_phase_spec([64, 0, 0])
    (64, 0, 0)
    """
    values: list[float] = []
    for element in spec:
        if isinstance(element, (int, float)):
            values.append(element)
            continue
        if not isinstance(element, (tuple, list)) or len(element) != 2:
            raise ValueError(f"invalid phase specification element {element!r}")
        pattern, count = element
        if not isinstance(count, int) or count < 0:
            raise ValueError(f"repetition count must be a non-negative int, got {count!r}")
        if isinstance(pattern, (int, float)):
            values.extend([pattern] * count)
        elif isinstance(pattern, (tuple, list)):
            for _ in range(count):
                values.extend(pattern)
        else:
            raise ValueError(f"invalid phase pattern {pattern!r}")
    return tuple(float(v) if isinstance(v, float) else v for v in values)


class PhaseVector:
    """An immutable per-phase vector of non-negative numbers.

    Instances behave like read-only sequences with *cyclic* indexing helpers:
    phase ``k`` of an actor with ``n`` phases uses entry ``k mod n``.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[float] | Sequence) -> None:
        vals = tuple(values)
        if not vals:
            raise ValueError("a phase vector must have at least one phase")
        for v in vals:
            if not isinstance(v, (int, float)):
                raise ValueError(f"phase values must be numbers, got {v!r}")
            if v < 0:
                raise ValueError(f"phase values must be non-negative, got {v!r}")
        self._values = vals

    @classmethod
    def from_spec(cls, spec: Sequence) -> "PhaseVector":
        """Build a phase vector from a compact specification (see :func:`expand_phase_spec`)."""
        return cls(expand_phase_spec(spec))

    @classmethod
    def constant(cls, value: float, phases: int = 1) -> "PhaseVector":
        """A vector with ``phases`` identical entries."""
        if phases < 1:
            raise ValueError("a phase vector must have at least one phase")
        return cls((value,) * phases)

    # -- sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PhaseVector):
            return self._values == other._values
        if isinstance(other, (tuple, list)):
            return self._values == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        return f"PhaseVector({list(self._values)!r})"

    # -- helpers -----------------------------------------------------------
    @property
    def values(self) -> tuple[float, ...]:
        """The flat per-phase values."""
        return self._values

    @property
    def phases(self) -> int:
        """Number of phases."""
        return len(self._values)

    def at(self, phase_index: int) -> float:
        """Value at (cyclic) phase ``phase_index``."""
        return self._values[phase_index % len(self._values)]

    def total(self) -> float:
        """Sum over one full cycle of phases."""
        return sum(self._values)

    def max(self) -> float:
        """Maximum per-phase value."""
        return max(self._values)

    def is_zero(self) -> bool:
        """Whether all phases are zero."""
        return all(v == 0 for v in self._values)

    def repeated(self, times: int) -> "PhaseVector":
        """A new vector with the phase pattern repeated ``times`` times."""
        if times < 1:
            raise ValueError("repetition count must be at least 1")
        return PhaseVector(self._values * times)

    def scaled(self, factor: float) -> "PhaseVector":
        """A new vector with every value multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return PhaseVector(tuple(v * factor for v in self._values))

    def compact_str(self) -> str:
        """Render in the paper's run-length notation, e.g. ``<8^2, 0^3>``."""
        parts: list[str] = []
        index = 0
        values = self._values
        while index < len(values):
            value = values[index]
            run = 1
            while index + run < len(values) and values[index + run] == value:
                run += 1
            rendered = f"{value:g}"
            parts.append(rendered if run == 1 else f"{rendered}^{run}")
            index += run
        return "<" + ", ".join(parts) + ">"
