"""Convenience builder for CSDF graphs.

Constructing a CSDF graph directly from :class:`~repro.csdf.actor.CSDFActor`
and :class:`~repro.csdf.edge.CSDFEdge` objects is verbose; the builder offers
a compact fluent interface that is used heavily in tests, examples and the
synthetic workload generator.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.csdf.actor import CSDFActor
from repro.csdf.edge import CSDFEdge
from repro.csdf.graph import CSDFGraph
from repro.csdf.phase import PhaseVector
from repro.units import cycles_to_ns


class CSDFBuilder:
    """Fluent builder for :class:`~repro.csdf.graph.CSDFGraph` instances.

    Example
    -------
    >>> graph = (
    ...     CSDFBuilder("pipeline")
    ...     .actor("a", [10.0])
    ...     .actor("b", [5.0, 5.0])
    ...     .edge("a", "b", production=[2], consumption=[1, 1])
    ...     .build()
    ... )
    >>> len(graph)
    2
    """

    def __init__(self, name: str) -> None:
        self._graph = CSDFGraph(name)
        self._edge_counter = 0

    def actor(
        self,
        name: str,
        execution_times_ns: Sequence[float] | PhaseVector,
        *,
        wcet_cycles: Sequence[float] | PhaseVector | None = None,
        frequency_hz: float | None = None,
        tile: str | None = None,
        role: str = "process",
        metadata: dict | None = None,
    ) -> "CSDFBuilder":
        """Add an actor with the given per-phase execution times (ns)."""
        self._graph.add_actor(
            CSDFActor(
                name=name,
                execution_times_ns=PhaseVector(execution_times_ns),
                wcet_cycles=PhaseVector(wcet_cycles) if wcet_cycles is not None else None,
                frequency_hz=frequency_hz,
                tile=tile,
                role=role,
                metadata=metadata or {},
            )
        )
        return self

    def actor_from_cycles(
        self,
        name: str,
        wcet_cycles: Sequence[float] | PhaseVector,
        frequency_hz: float,
        *,
        tile: str | None = None,
        role: str = "process",
        metadata: dict | None = None,
    ) -> "CSDFBuilder":
        """Add an actor whose execution times are given in clock cycles at ``frequency_hz``."""
        cycles = PhaseVector(wcet_cycles)
        times = PhaseVector(tuple(cycles_to_ns(c, frequency_hz) for c in cycles))
        self._graph.add_actor(
            CSDFActor(
                name=name,
                execution_times_ns=times,
                wcet_cycles=cycles,
                frequency_hz=frequency_hz,
                tile=tile,
                role=role,
                metadata=metadata or {},
            )
        )
        return self

    def edge(
        self,
        source: str,
        target: str,
        *,
        production: Sequence[float] | PhaseVector = (1,),
        consumption: Sequence[float] | PhaseVector = (1,),
        initial_tokens: int = 0,
        capacity: int | None = None,
        name: str | None = None,
        metadata: dict | None = None,
    ) -> "CSDFBuilder":
        """Add an edge from ``source`` to ``target``."""
        if name is None:
            self._edge_counter += 1
            name = f"e{self._edge_counter}_{source}_{target}"
        self._graph.add_edge(
            CSDFEdge(
                name=name,
                source=source,
                target=target,
                production_rates=PhaseVector(production),
                consumption_rates=PhaseVector(consumption),
                initial_tokens=initial_tokens,
                capacity=capacity,
                metadata=metadata or {},
            )
        )
        return self

    def build(self) -> CSDFGraph:
        """Return the constructed graph."""
        return self._graph
