"""CSDF actors."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.csdf.phase import PhaseVector
from repro.exceptions import CSDFError


@dataclass(frozen=True)
class CSDFActor:
    """A cyclo-static dataflow actor.

    An actor executes in a fixed cyclic sequence of *phases*.  In each phase
    it consumes tokens from its input edges, computes for the phase's
    execution time, and produces tokens on its output edges.  Token rates are
    attached to the edges (they may differ per edge); the actor itself only
    carries the number of phases and the per-phase execution time.

    Parameters
    ----------
    name:
        Unique actor name within its graph.
    execution_times_ns:
        Per-phase execution time in nanoseconds.  The number of phases of the
        actor is the length of this vector.
    wcet_cycles:
        Optional per-phase worst-case execution time in clock cycles, kept for
        reporting (Table 1 / Figure 3 are expressed in clock cycles).  When
        provided it must have the same number of phases.
    frequency_hz:
        Optional clock frequency used to derive ``execution_times_ns`` from
        ``wcet_cycles`` (informational).
    tile:
        Optional name of the tile or router this actor models (set for mapped
        graphs, Figure 3).
    role:
        Free-form role tag, e.g. ``"process"``, ``"router"``, ``"source"``,
        ``"sink"``.  Used by reports and by the latency analysis to identify
        the ends of the pipeline.
    """

    name: str
    execution_times_ns: PhaseVector
    wcet_cycles: PhaseVector | None = None
    frequency_hz: float | None = None
    tile: str | None = None
    role: str = "process"
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise CSDFError("actor name must be a non-empty string")
        if not isinstance(self.execution_times_ns, PhaseVector):
            object.__setattr__(
                self, "execution_times_ns", PhaseVector(self.execution_times_ns)
            )
        if self.wcet_cycles is not None and not isinstance(self.wcet_cycles, PhaseVector):
            object.__setattr__(self, "wcet_cycles", PhaseVector(self.wcet_cycles))
        if self.wcet_cycles is not None and len(self.wcet_cycles) != len(
            self.execution_times_ns
        ):
            raise CSDFError(
                f"actor {self.name!r}: wcet_cycles has {len(self.wcet_cycles)} phases "
                f"but execution_times_ns has {len(self.execution_times_ns)}"
            )
        if self.frequency_hz is not None and self.frequency_hz <= 0:
            raise CSDFError(f"actor {self.name!r}: frequency must be positive")

    @property
    def phases(self) -> int:
        """Number of phases in the actor's cyclic schedule."""
        return len(self.execution_times_ns)

    def execution_time_ns(self, phase_index: int) -> float:
        """Execution time (ns) of the given (cyclic) phase."""
        return self.execution_times_ns.at(phase_index)

    def total_execution_time_ns(self) -> float:
        """Total execution time of one full phase cycle, in nanoseconds."""
        return self.execution_times_ns.total()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
