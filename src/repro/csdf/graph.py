"""The CSDF graph container."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.csdf.actor import CSDFActor
from repro.csdf.edge import CSDFEdge
from repro.csdf.phase import PhaseVector
from repro.exceptions import CSDFError


class CSDFGraph:
    """A cyclo-static dataflow graph: actors connected by token channels.

    The container enforces referential integrity and that edge rate vectors
    are compatible with the phase counts of their endpoint actors: the
    production-rate vector of an edge must have either one phase (constant
    rate) or exactly as many phases as the source actor, and likewise for the
    consumption rates and the target actor.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise CSDFError("CSDF graph name must be a non-empty string")
        self.name = name
        self._actors: dict[str, CSDFActor] = {}
        self._edges: dict[str, CSDFEdge] = {}
        self._fingerprint: tuple | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_actor(self, actor: CSDFActor) -> CSDFActor:
        """Add an actor; names must be unique."""
        if actor.name in self._actors:
            raise CSDFError(f"duplicate actor name {actor.name!r} in graph {self.name!r}")
        self._actors[actor.name] = actor
        self._fingerprint = None
        return actor

    def add_edge(self, edge: CSDFEdge) -> CSDFEdge:
        """Add an edge; endpoints must exist and rate vectors must be compatible.

        A rate vector with a single phase attached to a multi-phase actor is a
        shorthand for "the same rate in every phase"; it is expanded here so
        that per-cycle totals (used by the repetition vector) and per-phase
        rates (used by the simulator) always agree.
        """
        if edge.name in self._edges:
            raise CSDFError(f"duplicate edge name {edge.name!r} in graph {self.name!r}")
        for endpoint in (edge.source, edge.target):
            if endpoint not in self._actors:
                raise CSDFError(
                    f"edge {edge.name!r} references unknown actor {endpoint!r}"
                )
        source = self._actors[edge.source]
        target = self._actors[edge.target]
        if len(edge.production_rates) not in (1, source.phases):
            raise CSDFError(
                f"edge {edge.name!r}: production rates have {len(edge.production_rates)} "
                f"phases but source actor {source.name!r} has {source.phases}"
            )
        if len(edge.consumption_rates) not in (1, target.phases):
            raise CSDFError(
                f"edge {edge.name!r}: consumption rates have {len(edge.consumption_rates)} "
                f"phases but target actor {target.name!r} has {target.phases}"
            )
        edge = self._expand_constant_rates(edge, source.phases, target.phases)
        self._edges[edge.name] = edge
        self._fingerprint = None
        return edge

    @staticmethod
    def _expand_constant_rates(
        edge: CSDFEdge, source_phases: int, target_phases: int
    ) -> CSDFEdge:
        """Expand single-phase rate shorthands to the endpoint actors' phase counts."""
        production = edge.production_rates
        consumption = edge.consumption_rates
        if len(production) == 1 and source_phases > 1:
            production = PhaseVector.constant(production[0], source_phases)
        if len(consumption) == 1 and target_phases > 1:
            consumption = PhaseVector.constant(consumption[0], target_phases)
        if production is edge.production_rates and consumption is edge.consumption_rates:
            return edge
        return CSDFEdge(
            name=edge.name,
            source=edge.source,
            target=edge.target,
            production_rates=production,
            consumption_rates=consumption,
            initial_tokens=edge.initial_tokens,
            capacity=edge.capacity,
            metadata=dict(edge.metadata),
        )

    def add_actors(self, actors: Iterable[CSDFActor]) -> None:
        """Add several actors at once."""
        for actor in actors:
            self.add_actor(actor)

    def add_edges(self, edges: Iterable[CSDFEdge]) -> None:
        """Add several edges at once."""
        for edge in edges:
            self.add_edge(edge)

    def replace_edge(self, edge: CSDFEdge) -> CSDFEdge:
        """Replace an existing edge (same name) — used to set buffer capacities."""
        if edge.name not in self._edges:
            raise CSDFError(f"cannot replace unknown edge {edge.name!r}")
        existing = self._edges[edge.name]
        if (existing.source, existing.target) != (edge.source, edge.target):
            raise CSDFError(
                f"replacement for edge {edge.name!r} must keep the same endpoints"
            )
        edge = self._expand_constant_rates(
            edge, self._actors[edge.source].phases, self._actors[edge.target].phases
        )
        # Capacity is deliberately outside the structural fingerprint (it is a
        # separate cache-key component), so a capacity-only replacement — the
        # buffer minimizer's per-probe swap — keeps the cached digest valid.
        if not (
            existing.production_rates == edge.production_rates
            and existing.consumption_rates == edge.consumption_rates
            and existing.initial_tokens == edge.initial_tokens
        ):
            self._fingerprint = None
        self._edges[edge.name] = edge
        return edge

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def actors(self) -> tuple[CSDFActor, ...]:
        """All actors in insertion order."""
        return tuple(self._actors.values())

    @property
    def edges(self) -> tuple[CSDFEdge, ...]:
        """All edges in insertion order."""
        return tuple(self._edges.values())

    @property
    def actor_names(self) -> tuple[str, ...]:
        """Actor names in insertion order."""
        return tuple(self._actors.keys())

    def actor(self, name: str) -> CSDFActor:
        """Return the actor called ``name``."""
        try:
            return self._actors[name]
        except KeyError:
            raise CSDFError(f"unknown actor {name!r} in graph {self.name!r}") from None

    def edge(self, name: str) -> CSDFEdge:
        """Return the edge called ``name``."""
        try:
            return self._edges[name]
        except KeyError:
            raise CSDFError(f"unknown edge {name!r} in graph {self.name!r}") from None

    def has_actor(self, name: str) -> bool:
        """Whether an actor with the given name exists."""
        return name in self._actors

    def __contains__(self, name: str) -> bool:
        return self.has_actor(name)

    def __iter__(self) -> Iterator[CSDFActor]:
        return iter(self._actors.values())

    def __len__(self) -> int:
        return len(self._actors)

    def input_edges(self, actor_name: str) -> tuple[CSDFEdge, ...]:
        """Edges whose target is the given actor."""
        self.actor(actor_name)
        return tuple(e for e in self._edges.values() if e.target == actor_name)

    def output_edges(self, actor_name: str) -> tuple[CSDFEdge, ...]:
        """Edges whose source is the given actor."""
        self.actor(actor_name)
        return tuple(e for e in self._edges.values() if e.source == actor_name)

    def actors_with_role(self, role: str) -> tuple[CSDFActor, ...]:
        """All actors carrying the given role tag."""
        return tuple(a for a in self._actors.values() if a.role == role)

    def sources(self) -> tuple[CSDFActor, ...]:
        """Actors with no input edges."""
        return tuple(a for a in self._actors.values() if not self.input_edges(a.name))

    def sinks(self) -> tuple[CSDFActor, ...]:
        """Actors with no output edges."""
        return tuple(a for a in self._actors.values() if not self.output_edges(a.name))

    def structural_fingerprint(self) -> tuple:
        """A name-free digest of the graph's analysis-relevant structure.

        Two graphs with equal fingerprints behave identically under every
        dataflow analysis in :mod:`repro.csdf.analysis`: the fingerprint
        covers, in insertion order, each actor's phase execution times and
        role and each edge's endpoint *indices*, per-phase rates and initial
        tokens.  Graph and actor/edge *names* are excluded — a mapped graph
        rebuilt for a renamed application digests identically — and so are
        buffer capacities, which vary per probe and form a separate cache-key
        component (:meth:`capacity_vector`).

        The digest is cached on the instance and invalidated by structural
        mutations; a capacity-only :meth:`replace_edge` keeps it.
        """
        if self._fingerprint is None:
            index_of = {name: i for i, name in enumerate(self._actors)}
            actors = tuple(
                (actor.execution_times_ns.values, actor.role)
                for actor in self._actors.values()
            )
            edges = tuple(
                (
                    index_of[edge.source],
                    index_of[edge.target],
                    edge.production_rates.values,
                    edge.consumption_rates.values,
                    edge.initial_tokens,
                )
                for edge in self._edges.values()
            )
            self._fingerprint = (actors, edges)
        return self._fingerprint

    def capacity_vector(self) -> tuple[int | None, ...]:
        """Per-edge buffer capacities in insertion order (``None`` = unbounded)."""
        return tuple(edge.capacity for edge in self._edges.values())

    def copy(self, name: str | None = None) -> "CSDFGraph":
        """A shallow structural copy (actors and edges are immutable and shared)."""
        clone = CSDFGraph(name or self.name)
        clone.add_actors(self.actors)
        for edge in self.edges:
            clone.add_edge(edge)
        clone._fingerprint = self._fingerprint
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSDFGraph(name={self.name!r}, actors={len(self._actors)}, "
            f"edges={len(self._edges)})"
        )
