"""CSDF edges (token channels with per-phase rates)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.csdf.phase import PhaseVector
from repro.exceptions import CSDFError


@dataclass(frozen=True)
class CSDFEdge:
    """A directed token channel between two CSDF actors.

    Parameters
    ----------
    name:
        Unique edge name within the graph.
    source / target:
        Names of the producing and consuming actors.
    production_rates:
        Per-phase production rates, aligned with the *source* actor's phases.
    consumption_rates:
        Per-phase consumption rates, aligned with the *target* actor's phases.
    initial_tokens:
        Number of tokens present on the edge before execution starts.
    capacity:
        Optional buffer capacity (in tokens).  ``None`` models an unbounded
        FIFO; a bounded capacity introduces back-pressure in the self-timed
        simulation.  The B_i annotations of Figure 3 are such capacities.
    """

    name: str
    source: str
    target: str
    production_rates: PhaseVector
    consumption_rates: PhaseVector
    initial_tokens: int = 0
    capacity: int | None = None
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise CSDFError("edge name must be a non-empty string")
        if not self.source or not self.target:
            raise CSDFError(f"edge {self.name!r} must name a source and a target actor")
        if not isinstance(self.production_rates, PhaseVector):
            object.__setattr__(self, "production_rates", PhaseVector(self.production_rates))
        if not isinstance(self.consumption_rates, PhaseVector):
            object.__setattr__(self, "consumption_rates", PhaseVector(self.consumption_rates))
        if self.initial_tokens < 0:
            raise CSDFError(f"edge {self.name!r}: initial_tokens must be non-negative")
        if self.capacity is not None:
            if self.capacity <= 0:
                raise CSDFError(f"edge {self.name!r}: capacity must be positive or None")
            if self.initial_tokens > self.capacity:
                raise CSDFError(
                    f"edge {self.name!r}: initial tokens ({self.initial_tokens}) exceed "
                    f"capacity ({self.capacity})"
                )
        if self.production_rates.is_zero() and self.consumption_rates.is_zero():
            raise CSDFError(f"edge {self.name!r} never carries any tokens")

    @property
    def total_production(self) -> float:
        """Tokens produced per full phase cycle of the source actor."""
        return self.production_rates.total()

    @property
    def total_consumption(self) -> float:
        """Tokens consumed per full phase cycle of the target actor."""
        return self.consumption_rates.total()

    def is_self_loop(self) -> bool:
        """Whether source and target are the same actor (allowed in CSDF)."""
        return self.source == self.target

    def with_capacity(self, capacity: int | None) -> "CSDFEdge":
        """Return a copy of this edge with a different buffer capacity."""
        return CSDFEdge(
            name=self.name,
            source=self.source,
            target=self.target,
            production_rates=self.production_rates,
            consumption_rates=self.consumption_rates,
            initial_tokens=self.initial_tokens,
            capacity=capacity,
            metadata=dict(self.metadata),
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}: {self.source} -> {self.target}"
