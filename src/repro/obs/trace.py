"""Request-scoped tracing for the admission path.

The runtime grew four telemetry islands (lane counters, lock timings,
worker traffic, analysis counters) that answer *aggregate* questions; none
of them answers the production question "where did *this* request's 40 ms
go?".  This module is that answer: a :class:`Tracer` produces per-request
**span trees** keyed by a stable trace id (workload + ticket), with one
span per pipeline stage — queue wait, governor check, region selection,
cache lookup, the four mapper steps (the paper's algorithm is explicitly
staged, so stage-level spans map 1:1 onto it), commit, inter-region
planning, and, on the process executor, engine dispatch → worker decide →
engine fold.

Design constraints, in order:

* **Decision-inert.**  The tracer only ever observes; it never feeds a
  decision.  Sampling is a pure hash of the trace id (no shared RNG
  state), so an obs-on run makes bit-identical decisions to an obs-off
  run — the differential suites pin this.
* **Near-zero cost when disabled.**  A disabled tracer short-circuits on
  :attr:`Tracer.enabled`; hot call sites guard on it (or on a ``None``
  trace context) before touching any span machinery.
* **Cross-process.**  A :class:`TraceContext` is plain picklable data; the
  process executor ships it inside each job spec, workers record spans
  against their own monotonic clock, and the engine re-anchors the
  returned spans onto its own timeline (see :func:`reanchor_spans`), so a
  single tree spans both processes.

Span timestamps are ``time.perf_counter_ns()`` values: monotonic, but with
a per-process arbitrary epoch — which is exactly why worker spans must be
re-anchored before they can live in the engine's tree.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

__all__ = [
    "ObsConfig",
    "SpanRecord",
    "Span",
    "TraceContext",
    "Tracer",
    "NULL_TRACER",
    "reanchor_spans",
]


@dataclass(frozen=True)
class ObsConfig:
    """Tunables of the observability layer.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled, every tracer operation is a guarded
        no-op and the engine publishes no spans or metrics.
    sample_rate:
        Head-based sampling probability in ``[0, 1]``.  The sampling
        decision is a pure hash of ``(seed, trace_id)`` — deterministic,
        shared by every process of a run, and made once when the request
        is submitted (children inherit it via the trace context).
    seed:
        Salt of the sampling hash; two runs with equal seeds sample the
        same trace ids.
    metrics:
        Whether the engine also publishes the run's
        :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    enabled: bool = True
    sample_rate: float = 1.0
    seed: int = 0
    metrics: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")


@dataclass(frozen=True)
class SpanRecord:
    """One finished span — plain picklable data, the export unit.

    ``span_id`` / ``parent_id`` are strings of the form
    ``"<process>:<counter>"``, unique across the engine and every worker
    process of a run.  ``start_ns`` / ``end_ns`` are engine-timeline
    ``perf_counter_ns`` values *after* re-anchoring (worker-local before).
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    process: str
    start_ns: int
    end_ns: int
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration_ns(self) -> int:
        """Span duration in nanoseconds (never negative)."""
        return max(0, self.end_ns - self.start_ns)


@dataclass(frozen=True)
class TraceContext:
    """The cross-boundary handle of one sampled request's trace.

    Plain picklable data: the process executor ships it in each
    :class:`~repro.runtime.procdrain.JobSpec`, and a worker's spans parent
    onto :attr:`parent_span_id`.  An unsampled request has no context at
    all (``None`` travels instead), which is what keeps the disabled /
    unsampled path allocation-free.
    """

    trace_id: str
    parent_span_id: str | None = None

    def child(self, parent_span_id: str) -> "TraceContext":
        """The same trace, re-parented under ``parent_span_id``."""
        return TraceContext(self.trace_id, parent_span_id)


@dataclass
class Span:
    """One in-flight span; finished via :meth:`Tracer.end`."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    process: str
    start_ns: int
    attrs: dict[str, object] = field(default_factory=dict)

    def context(self) -> TraceContext:
        """A trace context whose children parent onto this span."""
        return TraceContext(self.trace_id, self.span_id)


class Tracer:
    """Produces, collects and hands out the spans of one process.

    Thread-safe: the engine's threaded executor runs one lane per worker
    thread, and all of them record spans through the engine's tracer.
    Finished spans accumulate in an internal buffer until :meth:`drain`
    hands them over (the engine drains once per run; a drain worker drains
    once per lane so each lane result carries exactly its own spans).
    """

    def __init__(self, config: ObsConfig | None = None, *, process: str = "engine") -> None:
        self.config = config or ObsConfig()
        self.process = process
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._next_id = 0

    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        """Whether this tracer records anything at all."""
        return self.config.enabled

    def sampled(self, trace_id: str) -> bool:
        """Head-based sampling verdict for one trace id.

        A pure, seeded hash — deterministic across runs and processes, and
        independent of any decision-bearing RNG.  ``sample_rate=1.0``
        traces everything, ``0.0`` nothing.
        """
        if not self.config.enabled:
            return False
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        digest = zlib.crc32(f"{self.config.seed}:{trace_id}".encode("utf-8"))
        return digest / 2**32 < rate

    def context_for(self, trace_id: str) -> TraceContext | None:
        """A root trace context for ``trace_id``, or ``None`` when unsampled."""
        if not self.sampled(trace_id):
            return None
        return TraceContext(trace_id)

    # ------------------------------------------------------------------ #
    def _span_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{self.process}:{self._next_id}"

    def start(
        self,
        name: str,
        trace: TraceContext,
        *,
        start_ns: int | None = None,
        attrs: dict[str, object] | None = None,
    ) -> Span:
        """Open a span under ``trace`` (caller guarantees the trace is sampled)."""
        return Span(
            trace_id=trace.trace_id,
            span_id=self._span_id(),
            parent_id=trace.parent_span_id,
            name=name,
            process=self.process,
            start_ns=start_ns if start_ns is not None else time.perf_counter_ns(),
            attrs=dict(attrs) if attrs else {},
        )

    def end(self, span: Span, *, end_ns: int | None = None) -> SpanRecord:
        """Finish a span and append it to the buffer."""
        record = SpanRecord(
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            process=span.process,
            start_ns=span.start_ns,
            end_ns=end_ns if end_ns is not None else time.perf_counter_ns(),
            attrs=tuple(sorted(span.attrs.items())),
        )
        with self._lock:
            self._spans.append(record)
        return record

    def record(
        self,
        name: str,
        trace: TraceContext,
        start_ns: int,
        end_ns: int,
        *,
        attrs: dict[str, object] | None = None,
    ) -> SpanRecord:
        """Append an already-timed span (e.g. rebuilt from mapper timestamps)."""
        record = SpanRecord(
            trace_id=trace.trace_id,
            span_id=self._span_id(),
            parent_id=trace.parent_span_id,
            name=name,
            process=self.process,
            start_ns=start_ns,
            end_ns=end_ns,
            attrs=tuple(sorted(attrs.items())) if attrs else (),
        )
        with self._lock:
            self._spans.append(record)
        return record

    def adopt(self, spans: list[SpanRecord] | tuple[SpanRecord, ...]) -> None:
        """Append foreign (already re-anchored) span records to the buffer."""
        if spans:
            with self._lock:
                self._spans.extend(spans)

    def drain(self) -> list[SpanRecord]:
        """Hand over (and clear) every span recorded since the last drain."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The shared disabled tracer: every guarded call site short-circuits on
#: its :attr:`~Tracer.enabled` being ``False``.
NULL_TRACER = Tracer(ObsConfig(enabled=False))


def reanchor_spans(
    spans: tuple[SpanRecord, ...] | list[SpanRecord],
    *,
    window_start_ns: int,
    window_end_ns: int,
) -> list[SpanRecord]:
    """Shift worker-clock spans onto the engine timeline.

    Worker ``perf_counter_ns`` values share the engine clock's *rate* but
    not its epoch.  The engine knows the real-time window the worker's
    work happened in — it stamped ``window_start_ns`` just before sending
    the dispatch frame and ``window_end_ns`` just after receiving the
    response — so the whole batch is shifted by one offset that puts its
    earliest span start at the window start, then clamped into the window
    (defensive: equal clock rates mean the batch always fits, but a clamp
    can never produce a span that escapes its dispatch window).  One
    shared offset preserves every relative distance between worker spans,
    so nesting and non-overlap survive re-anchoring bit-for-bit.
    """
    if not spans:
        return []
    offset = window_start_ns - min(span.start_ns for span in spans)
    anchored: list[SpanRecord] = []
    for span in spans:
        start = min(max(span.start_ns + offset, window_start_ns), window_end_ns)
        end = min(max(span.end_ns + offset, start), window_end_ns)
        anchored.append(
            SpanRecord(
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                process=span.process,
                start_ns=start,
                end_ns=end,
                attrs=span.attrs + (("reanchored", True),),
            )
        )
    return anchored
