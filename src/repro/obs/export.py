"""JSONL export of one run's spans and metrics, plus its validator.

The export is line-delimited JSON so it can be streamed, grepped and
tail-ed; every line carries ``kind`` and ``schema`` fields:

* ``{"kind": "meta", "schema": 1, "workload": ..., "process": "engine",
  "span_count": ..., "trace_count": ...}`` — exactly one, first line.
* ``{"kind": "span", "schema": 1, "trace_id": ..., "span_id": ...,
  "parent_id": ..., "name": ..., "process": ..., "start_ns": ...,
  "end_ns": ..., "attrs": {...}}`` — one per finished span.
* ``{"kind": "metric", "schema": 1, "metric": "counter"|"gauge"|
  "histogram", "name": ..., ...}`` — one per instrument.

:func:`validate_export` is the CI smoke's teeth: beyond JSON
well-formedness it checks referential integrity (every ``parent_id``
resolves to a span of the same trace), temporal sanity (``end >= start``),
and containment (every child span nests inside its parent's window —
which, for worker spans, is only true after re-anchoring, so the check
also proves the re-anchoring happened).
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .trace import SpanRecord

__all__ = ["SCHEMA_VERSION", "write_export", "validate_export", "read_export"]

SCHEMA_VERSION = 1

#: Slack allowed when checking that a child span nests inside its parent.
#: Sub-microsecond skew arises legitimately: a stage span's window is
#: stamped by separate ``perf_counter_ns`` calls from the span that wraps
#: it, and re-anchored worker spans are clamped to their dispatch window.
_NEST_SLACK_NS = 1_000


def write_export(
    path: str,
    spans: Iterable[SpanRecord],
    *,
    metrics: dict[str, dict[str, object]] | None = None,
    workload: str | None = None,
) -> int:
    """Write one run's observability artifact; returns the line count."""
    span_list = list(spans)
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        meta = {
            "kind": "meta",
            "schema": SCHEMA_VERSION,
            "workload": workload,
            "span_count": len(span_list),
            "trace_count": len({span.trace_id for span in span_list}),
        }
        handle.write(json.dumps(meta) + "\n")
        lines += 1
        for span in span_list:
            handle.write(json.dumps(_span_line(span)) + "\n")
            lines += 1
        if metrics is not None:
            for line in _metric_lines(metrics):
                handle.write(json.dumps(line) + "\n")
                lines += 1
    return lines


def _span_line(span: SpanRecord) -> dict[str, object]:
    return {
        "kind": "span",
        "schema": SCHEMA_VERSION,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "process": span.process,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "attrs": dict(span.attrs),
    }


def _metric_lines(
    metrics: dict[str, dict[str, object]],
) -> Iterable[dict[str, object]]:
    for name, value in sorted(metrics.get("counters", {}).items()):
        yield {
            "kind": "metric",
            "schema": SCHEMA_VERSION,
            "metric": "counter",
            "name": name,
            "value": value,
        }
    for name, value in sorted(metrics.get("gauges", {}).items()):
        yield {
            "kind": "metric",
            "schema": SCHEMA_VERSION,
            "metric": "gauge",
            "name": name,
            "value": value,
        }
    for name, data in sorted(metrics.get("histograms", {}).items()):
        yield {
            "kind": "metric",
            "schema": SCHEMA_VERSION,
            "metric": "histogram",
            "name": name,
            "bounds": data["bounds"],
            "buckets": data["buckets"],
            "sum": data["sum"],
            "count": data["count"],
        }


def read_export(
    source: str | IO[str],
) -> tuple[dict[str, object], list[SpanRecord], list[dict[str, object]]]:
    """Parse an export file into (meta, spans, metric lines)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_export(handle)
    meta: dict[str, object] = {}
    spans: list[SpanRecord] = []
    metrics: list[dict[str, object]] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.get("kind")
        if kind == "meta":
            meta = payload
        elif kind == "span":
            spans.append(
                SpanRecord(
                    trace_id=payload["trace_id"],
                    span_id=payload["span_id"],
                    parent_id=payload.get("parent_id"),
                    name=payload["name"],
                    process=payload["process"],
                    start_ns=payload["start_ns"],
                    end_ns=payload["end_ns"],
                    attrs=tuple(sorted(payload.get("attrs", {}).items())),
                )
            )
        elif kind == "metric":
            metrics.append(payload)
        else:
            raise ValueError(f"unknown export line kind: {kind!r}")
    return meta, spans, metrics


def validate_export(path: str) -> list[str]:
    """Validate an export file; returns a list of problems (empty = valid).

    Checks, per line: known ``kind`` and matching ``schema`` version; for
    spans: unique ids, resolvable parents within the same trace,
    ``end >= start``, and child windows nested inside their parent's
    window (within sub-microsecond stamp slack) — worker spans only pass
    the nesting check if the engine re-anchored them into their dispatch
    window.  The meta line's counts must match the body.
    """
    problems: list[str] = []
    try:
        meta, spans, metrics = read_export(path)
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        return [f"unparseable export: {exc}"]

    if not meta:
        problems.append("missing meta line")
    elif meta.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"meta schema {meta.get('schema')!r} != {SCHEMA_VERSION}"
        )
    if meta and meta.get("span_count") != len(spans):
        problems.append(
            f"meta span_count {meta.get('span_count')} != {len(spans)} spans"
        )
    if meta and meta.get("trace_count") != len({s.trace_id for s in spans}):
        problems.append("meta trace_count disagrees with span lines")

    by_id: dict[str, SpanRecord] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span_id {span.span_id}")
        by_id[span.span_id] = span
        if span.end_ns < span.start_ns:
            problems.append(f"span {span.span_id} ({span.name}): end < start")

    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id} ({span.name}): parent "
                f"{span.parent_id} not in export"
            )
            continue
        if parent.trace_id != span.trace_id:
            problems.append(
                f"span {span.span_id}: parent {span.parent_id} belongs to "
                f"another trace"
            )
            continue
        if (
            span.start_ns < parent.start_ns - _NEST_SLACK_NS
            or span.end_ns > parent.end_ns + _NEST_SLACK_NS
        ):
            problems.append(
                f"span {span.span_id} ({span.name}, {span.process}) escapes "
                f"parent {parent.span_id} ({parent.name}) window"
            )

    for line in metrics:
        if line.get("metric") not in ("counter", "gauge", "histogram"):
            problems.append(f"unknown metric kind {line.get('metric')!r}")
        elif line["metric"] == "histogram":
            if len(line.get("buckets", [])) != len(line.get("bounds", [])) + 1:
                problems.append(
                    f"histogram {line.get('name')!r}: bucket/bound mismatch"
                )
    return problems
