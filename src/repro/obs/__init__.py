"""Unified observability: request-scoped tracing plus a metrics registry.

The admission path's one answer to "where did this request's 40 ms go?":

* :mod:`~repro.obs.trace` — per-request span trees with cross-process
  propagation (engine dispatch → worker decide → engine fold) and
  deterministic head-based sampling.
* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  with one associative fold replacing the runtime's bespoke merge paths.
* :mod:`~repro.obs.export` — versioned JSONL export and its validator.
* :mod:`~repro.obs.report` — ``python -m repro.obs.report`` latency CLI.
"""

from .export import SCHEMA_VERSION, read_export, validate_export, write_export
from .metrics import DEFAULT_LATENCY_BUCKETS_S, Histogram, MetricsRegistry, fold_snapshots
from .trace import (
    NULL_TRACER,
    ObsConfig,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
    reanchor_spans,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "ObsConfig",
    "SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "fold_snapshots",
    "read_export",
    "reanchor_spans",
    "validate_export",
    "write_export",
]
