"""Render latency breakdowns from an observability export.

Usage::

    python -m repro.obs.report TRACE.jsonl [--top N] [--validate]

Reads a JSONL export produced by :func:`repro.obs.export.write_export`
and prints (a) a per-stage latency breakdown — one row per span name,
aggregated across every trace — and (b) the top-N slowest requests with
their dominant stage, so "where did this request's 40 ms go?" is one
command away from any exported run.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict

from ..reporting import format_table
from .export import read_export, validate_export
from .trace import SpanRecord

__all__ = ["stage_breakdown", "slowest_requests", "main"]


def _percentile(durations_ns: list[int], q: float) -> float:
    ordered = sorted(durations_ns)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def stage_breakdown(spans: list[SpanRecord]) -> list[tuple[str, int, float, float, float]]:
    """Per span-name aggregate: (name, count, total_ms, mean_ms, p95_ms)."""
    by_name: dict[str, list[int]] = defaultdict(list)
    for span in spans:
        by_name[span.name].append(span.duration_ns)
    rows = []
    for name, durations in by_name.items():
        total = sum(durations)
        rows.append(
            (
                name,
                len(durations),
                total / 1e6,
                total / len(durations) / 1e6,
                _percentile(durations, 0.95) / 1e6,
            )
        )
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows


def slowest_requests(
    spans: list[SpanRecord], top: int = 10
) -> list[tuple[str, float, str, float]]:
    """Top-N slowest root spans: (trace_id, total_ms, dominant stage, its ms).

    The dominant stage is the longest *leaf* span of the trace — leaves
    are where time is actually spent; interior spans merely contain them.
    """
    roots = [span for span in spans if span.parent_id is None]
    parents = {span.parent_id for span in spans if span.parent_id is not None}
    leaves_by_trace: dict[str, list[SpanRecord]] = defaultdict(list)
    for span in spans:
        if span.span_id not in parents:
            leaves_by_trace[span.trace_id].append(span)
    rows = []
    for root in sorted(roots, key=lambda span: span.duration_ns, reverse=True)[:top]:
        leaves = leaves_by_trace.get(root.trace_id, [])
        if leaves:
            dominant = max(leaves, key=lambda span: span.duration_ns)
            dominant_name, dominant_ms = dominant.name, dominant.duration_ns / 1e6
        else:
            dominant_name, dominant_ms = "-", 0.0
        rows.append(
            (root.trace_id, root.duration_ns / 1e6, dominant_name, dominant_ms)
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Per-stage latency breakdown of an obs JSONL export.",
    )
    parser.add_argument("export", help="path to a spans/metrics JSONL export")
    parser.add_argument(
        "--top", type=int, default=10, help="slowest requests to list (default 10)"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate the export against the schema and exit non-zero on problems",
    )
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate_export(args.export)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.export}: valid")

    meta, spans, _metrics = read_export(args.export)
    workload = meta.get("workload") or "?"
    print(
        f"Export {args.export!r}: workload={workload} "
        f"spans={len(spans)} traces={meta.get('trace_count', '?')}"
    )
    if not spans:
        return 0

    print(
        format_table(
            ["Stage", "Count", "Total", "Mean", "p95"],
            [
                (
                    name,
                    str(count),
                    f"{total_ms:.2f} ms",
                    f"{mean_ms:.3f} ms",
                    f"{p95_ms:.3f} ms",
                )
                for name, count, total_ms, mean_ms, p95_ms in stage_breakdown(spans)
            ],
            title="Per-stage latency breakdown",
            align_right=(1, 2, 3, 4),
        )
    )
    print(
        format_table(
            ["Trace", "Total", "Dominant stage", "Stage time"],
            [
                (trace_id, f"{total_ms:.2f} ms", stage, f"{stage_ms:.3f} ms")
                for trace_id, total_ms, stage, stage_ms in slowest_requests(
                    spans, args.top
                )
            ],
            title=f"Top {args.top} slowest requests",
            align_right=(1, 3),
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
