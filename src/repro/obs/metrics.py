"""Process-local metrics with one associative fold.

Before this module the runtime had five bespoke merge paths — lane
counters, region-lock timings, per-worker traffic stats, worker analysis
counters, and the governor snapshot — each with its own dict shape and its
own delta arithmetic scattered through ``engine.py``.  A
:class:`MetricsRegistry` replaces them with three instrument kinds and a
single :meth:`~MetricsRegistry.fold`:

* **counters** — monotone sums; fold adds.
* **gauges** — point-in-time levels; fold takes the max, *not* the last
  write, so folding is commutative (order-independence is property-tested).
* **histograms** — fixed-bucket latency distributions; fold adds
  bucket-wise and sums ``sum``/``count``.

All three folds are associative and commutative, which is what makes the
cross-process story trivial: a drain worker keeps its own registry, ships
``registry.snapshot()`` back in the response frame exactly like
``worker_stats``, and the engine folds it in — no special-casing per
metric family, no ordering requirements between workers.

Snapshots are plain ``dict``s of primitives: picklable for the worker
frames, JSON-able for the export file.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Histogram",
    "MetricsRegistry",
    "fold_snapshots",
]

#: Default latency buckets (seconds): 100 µs .. 10 s, roughly geometric.
#: Fixed buckets — never derived from observed data — so histograms from
#: different processes always fold bucket-to-bucket.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    10.0,
)


class Histogram:
    """A fixed-bucket histogram (upper-bound buckets plus overflow)."""

    __slots__ = ("bounds", "buckets", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding rank q.

        Overflow observations report the largest finite bound — a floor on
        the true value, good enough for the latency breakdowns this feeds.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, round(q * self.count))
        seen = 0
        for index, hits in enumerate(self.buckets):
            seen += hits
            if seen >= rank:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def as_dict(self) -> dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Counters, gauges and histograms for one process.

    Thread-safe (the threaded executor's lane workers publish
    concurrently).  Label sets ride inside the metric name —
    ``"engine.lane.admitted[region=r0_0]"`` — keeping snapshots flat
    dicts; :func:`split_name` recovers the labels for reporting.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # ------------------------------------------------------------------ #
    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram_for(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """A picklable/JSON-able copy of every instrument."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self._histograms.items()
                },
            }

    def fold(self, snapshot: dict[str, dict[str, object]]) -> None:
        """Merge a foreign snapshot in: the one cross-process merge path.

        Counter folds add, gauge folds take the max, histogram folds add
        bucket-wise — all associative and commutative, so worker snapshots
        may arrive in any order (property-tested).
        """
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in gauges.items():
                current = self._gauges.get(name)
                self._gauges[name] = value if current is None else max(current, value)
            for name, data in histograms.items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram(
                        tuple(data["bounds"])
                    )
                if tuple(data["bounds"]) != histogram.bounds:
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds mismatch on fold"
                    )
                for index, hits in enumerate(data["buckets"]):
                    histogram.buckets[index] += hits
                histogram.sum += data["sum"]
                histogram.count += data["count"]

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters) + len(self._gauges) + len(self._histograms)
            )


def fold_snapshots(
    snapshots: list[dict[str, dict[str, object]]],
) -> dict[str, dict[str, object]]:
    """Fold plain snapshot dicts without building registries (test helper)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.fold(snapshot)
    return registry.snapshot()


def split_name(name: str) -> tuple[str, dict[str, str]]:
    """Split ``"engine.lane.admitted[region=r0,lane=a]"`` into base + labels."""
    if not name.endswith("]") or "[" not in name:
        return name, {}
    base, _, label_part = name.partition("[")
    labels: dict[str, str] = {}
    for pair in label_part[:-1].split(","):
        if "=" in pair:
            key, _, value = pair.partition("=")
            labels[key] = value
    return base, labels
