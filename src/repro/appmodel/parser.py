"""Parser and formatter for the paper's compact phase notation.

Table 1 of the paper writes per-phase vectors in a run-length notation such as
``<8^2, (8,0)^8>``: two phases with value 8, followed by the pattern ``8, 0``
repeated eight times (16 phases), for 18 phases in total.  This module parses
such strings into flat tuples and renders flat tuples back into the compact
notation, so the implementation library can be written (and reported) exactly
as the paper prints it.

Values may be symbolic expressions in a single variable (the paper uses ``b``
for the mode-dependent output size of the demapper, e.g. ``73-b``); pass the
variable bindings to :func:`parse_phase_notation` to resolve them.
"""

from __future__ import annotations

import re

_TOKEN_PATTERN = re.compile(r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)|(?P<caret>\^)|(?P<atom>[^(),^<>\s][^(),^<>]*))")


def _evaluate_atom(text: str, variables: dict[str, float]) -> float:
    """Evaluate a numeric or simple symbolic atom such as ``73-b`` or ``b+2``."""
    text = text.strip()
    try:
        return float(text)
    except ValueError:
        pass
    # Restrict to a safe arithmetic subset: names, numbers, + - * / and spaces.
    if not re.fullmatch(r"[A-Za-z0-9_+\-*/. ]+", text):
        raise ValueError(f"invalid phase value expression {text!r}")
    names = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text))
    unknown = names - set(variables)
    if unknown:
        raise ValueError(
            f"expression {text!r} uses unbound variables {sorted(unknown)}; "
            "pass them via the variables mapping"
        )
    return float(eval(text, {"__builtins__": {}}, dict(variables)))  # noqa: S307


def parse_phase_notation(text: str, variables: dict[str, float] | None = None) -> tuple[float, ...]:
    """Parse a compact phase string like ``"<8^2, (8,0)^8>"`` into a flat tuple.

    Parameters
    ----------
    text:
        The notation.  Angle brackets are optional.
    variables:
        Bindings for symbolic values (e.g. ``{"b": 6}``).

    Examples
    --------
    >>> parse_phase_notation("<64, 0, 0>")
    (64.0, 0.0, 0.0)
    >>> parse_phase_notation("<8^2, (8,0)^8>")[:5]
    (8.0, 8.0, 8.0, 0.0, 8.0)
    >>> parse_phase_notation("<1^52, 73-b, 1^b>", {"b": 6})[52]
    67.0
    """
    variables = dict(variables or {})
    body = text.strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]
    if not body.strip():
        raise ValueError("empty phase notation")

    # Split top-level comma-separated elements (commas inside parentheses group patterns).
    elements: list[str] = []
    depth = 0
    current = ""
    for char in body:
        if char == "(":
            depth += 1
            current += char
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in {text!r}")
            current += char
        elif char == "," and depth == 0:
            elements.append(current)
            current = ""
        else:
            current += char
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in {text!r}")
    elements.append(current)

    values: list[float] = []
    for element in elements:
        element = element.strip()
        if not element:
            raise ValueError(f"empty element in phase notation {text!r}")
        if "^" in element:
            base_text, _, count_text = element.rpartition("^")
            count_value = _evaluate_atom(count_text, variables)
            if count_value < 0 or count_value != int(count_value):
                raise ValueError(f"repetition count must be a non-negative integer: {element!r}")
            count = int(count_value)
        else:
            base_text, count = element, 1
        base_text = base_text.strip()
        if base_text.startswith("(") and base_text.endswith(")"):
            inner = base_text[1:-1]
            pattern = tuple(
                _evaluate_atom(part, variables) for part in inner.split(",") if part.strip()
            )
            if not pattern:
                raise ValueError(f"empty pattern in {element!r}")
            values.extend(pattern * count)
        else:
            values.extend([_evaluate_atom(base_text, variables)] * count)
    return tuple(values)


def format_phase_notation(values: tuple[float, ...] | list[float]) -> str:
    """Render a flat phase tuple in the paper's run-length notation.

    Only plain runs are compressed (``x^n``); alternating patterns are left
    expanded, which is sufficient for reporting.
    """
    if not values:
        raise ValueError("cannot format an empty phase vector")
    parts: list[str] = []
    index = 0
    while index < len(values):
        value = values[index]
        run = 1
        while index + run < len(values) and values[index + run] == value:
            run += 1
        rendered = f"{value:g}"
        parts.append(rendered if run == 1 else f"{rendered}^{run}")
        index += run
    return "<" + ", ".join(parts) + ">"
