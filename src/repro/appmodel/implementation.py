"""Process implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.csdf.actor import CSDFActor
from repro.csdf.phase import PhaseVector
from repro.exceptions import ModelError
from repro.platform.resources import ResourceRequirement
from repro.units import cycles_to_ns

#: Port name used when an implementation declares a single rate vector for
#: all of its inputs (or outputs).
DEFAULT_PORT = "*"


@dataclass(frozen=True)
class Implementation:
    """One implementation of a process for a particular tile type.

    The implementation is described, as in Table 1 of the paper, by a CSDF
    actor: per-phase input token rates, output token rates and worst-case
    execution times, plus the average energy per graph iteration and the
    memory the implementation needs on its tile.

    Rates are stored per *port*.  A port is normally the name of the KPN
    channel the rate applies to; the special port :data:`DEFAULT_PORT` (``"*"``)
    provides a fallback used for every channel without an explicit entry,
    which keeps the common single-input/single-output case concise.

    Parameters
    ----------
    process:
        Name of the KPN process this implements.
    tile_type:
        Name of the tile type the implementation runs on.
    wcet_cycles:
        Per-phase worst-case execution time, in clock cycles of the tile type.
    input_rates / output_rates:
        Per-port, per-phase token rates.  Every vector must have the same
        number of phases as ``wcet_cycles`` (or exactly one phase, meaning a
        constant rate).
    energy_nj_per_iteration:
        Average energy consumed per graph iteration (nJ/symbol in Table 1).
    memory_bytes:
        Tile memory required by the implementation.
    name:
        Optional explicit name; defaults to ``"<process>@<tile_type>"``.
    """

    process: str
    tile_type: str
    wcet_cycles: PhaseVector
    input_rates: dict[str, PhaseVector] = field(default_factory=dict)
    output_rates: dict[str, PhaseVector] = field(default_factory=dict)
    energy_nj_per_iteration: float = 0.0
    memory_bytes: int = 0
    name: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.process:
            raise ModelError("implementation must name its process")
        if not self.tile_type:
            raise ModelError(f"implementation of {self.process!r} must name a tile type")
        if not isinstance(self.wcet_cycles, PhaseVector):
            object.__setattr__(self, "wcet_cycles", PhaseVector(self.wcet_cycles))
        normalised_inputs = {
            port: rates if isinstance(rates, PhaseVector) else PhaseVector(rates)
            for port, rates in self.input_rates.items()
        }
        normalised_outputs = {
            port: rates if isinstance(rates, PhaseVector) else PhaseVector(rates)
            for port, rates in self.output_rates.items()
        }
        object.__setattr__(self, "input_rates", normalised_inputs)
        object.__setattr__(self, "output_rates", normalised_outputs)
        for direction, table in (("input", normalised_inputs), ("output", normalised_outputs)):
            for port, rates in table.items():
                if len(rates) not in (1, self.phases):
                    raise ModelError(
                        f"implementation {self.qualified_name!r}: {direction} rates for port "
                        f"{port!r} have {len(rates)} phases, expected 1 or {self.phases}"
                    )
        if self.energy_nj_per_iteration < 0:
            raise ModelError(
                f"implementation {self.qualified_name!r}: energy must be non-negative"
            )
        if self.memory_bytes < 0:
            raise ModelError(
                f"implementation {self.qualified_name!r}: memory must be non-negative"
            )
        if not self.name:
            object.__setattr__(self, "name", self.qualified_name)

    # ------------------------------------------------------------------ #
    @property
    def qualified_name(self) -> str:
        """``"<process>@<tile_type>"``."""
        return f"{self.process}@{self.tile_type}"

    @property
    def phases(self) -> int:
        """Number of phases of the implementation's CSDF actor."""
        return len(self.wcet_cycles)

    @property
    def total_wcet_cycles(self) -> float:
        """Worst-case cycles of one full phase cycle (one graph iteration)."""
        return self.wcet_cycles.total()

    def consumption_rates(self, port: str) -> PhaseVector:
        """Consumption rates for a port, with per-phase length matching the actor."""
        return self._rates(self.input_rates, port, "input")

    def production_rates(self, port: str) -> PhaseVector:
        """Production rates for a port, with per-phase length matching the actor."""
        return self._rates(self.output_rates, port, "output")

    def _rates(self, table: dict[str, PhaseVector], port: str, direction: str) -> PhaseVector:
        rates = table.get(port, table.get(DEFAULT_PORT))
        if rates is None:
            raise ModelError(
                f"implementation {self.qualified_name!r} declares no {direction} rates for "
                f"port {port!r} and no default port"
            )
        if len(rates) == 1 and self.phases > 1:
            return PhaseVector.constant(rates[0], self.phases)
        return rates

    def resource_requirement(self) -> ResourceRequirement:
        """Tile resources the implementation needs."""
        return ResourceRequirement(
            memory_bytes=self.memory_bytes,
            compute_cycles_per_iteration=self.total_wcet_cycles,
        )

    def execution_times_ns(self, frequency_hz: float) -> PhaseVector:
        """Per-phase execution times in nanoseconds at the given tile frequency."""
        return PhaseVector(tuple(cycles_to_ns(c, frequency_hz) for c in self.wcet_cycles))

    def as_actor(
        self,
        frequency_hz: float,
        *,
        actor_name: str | None = None,
        tile: str | None = None,
        role: str = "process",
    ) -> CSDFActor:
        """Instantiate the implementation as a CSDF actor running at ``frequency_hz``."""
        return CSDFActor(
            name=actor_name or self.process,
            execution_times_ns=self.execution_times_ns(frequency_hz),
            wcet_cycles=self.wcet_cycles,
            frequency_hz=frequency_hz,
            tile=tile,
            role=role,
            metadata={"implementation": self.qualified_name},
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.qualified_name
