"""The implementation library: all known implementations, indexed."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.appmodel.implementation import Implementation
from repro.exceptions import ModelError


class ImplementationLibrary:
    """Indexes implementations by process and tile type.

    The library answers the two questions the spatial mapper keeps asking:

    * which implementations exist for process *p* (step 1 chooses among them)?
    * which implementation of *p* runs on tile type *t* (adequacy check)?
    """

    def __init__(self, implementations: Iterable[Implementation] = ()) -> None:
        self._by_process: dict[str, dict[str, Implementation]] = {}
        for implementation in implementations:
            self.add(implementation)

    def add(self, implementation: Implementation) -> Implementation:
        """Register an implementation.

        At most one implementation per (process, tile type) pair is allowed —
        the paper's model has a single entry per pair in Table 1.  Register a
        second one by giving the processes different names (e.g. a low-power
        variant modelled as a distinct process).
        """
        per_type = self._by_process.setdefault(implementation.process, {})
        if implementation.tile_type in per_type:
            raise ModelError(
                f"duplicate implementation for process {implementation.process!r} on tile "
                f"type {implementation.tile_type!r}"
            )
        per_type[implementation.tile_type] = implementation
        return implementation

    def add_all(self, implementations: Iterable[Implementation]) -> None:
        """Register several implementations."""
        for implementation in implementations:
            self.add(implementation)

    # ------------------------------------------------------------------ #
    def processes(self) -> tuple[str, ...]:
        """All processes that have at least one implementation."""
        return tuple(self._by_process.keys())

    def implementations(self) -> tuple[Implementation, ...]:
        """Every registered implementation."""
        return tuple(
            implementation
            for per_type in self._by_process.values()
            for implementation in per_type.values()
        )

    def implementations_for(self, process: str) -> tuple[Implementation, ...]:
        """All implementations of the given process (may be empty)."""
        return tuple(self._by_process.get(process, {}).values())

    def implementation_for(self, process: str, tile_type: str) -> Implementation:
        """The implementation of ``process`` on ``tile_type``; raises if absent."""
        try:
            return self._by_process[process][tile_type]
        except KeyError:
            raise ModelError(
                f"no implementation of process {process!r} for tile type {tile_type!r}"
            ) from None

    def has_implementation(self, process: str, tile_type: str) -> bool:
        """Whether an implementation of ``process`` exists for ``tile_type``."""
        return tile_type in self._by_process.get(process, {})

    def tile_types_for(self, process: str) -> tuple[str, ...]:
        """Tile types the process can run on."""
        return tuple(self._by_process.get(process, {}).keys())

    def cheapest_for(self, process: str) -> Implementation:
        """The implementation of ``process`` with the lowest energy per iteration."""
        candidates = self.implementations_for(process)
        if not candidates:
            raise ModelError(f"no implementations registered for process {process!r}")
        return min(candidates, key=lambda impl: impl.energy_nj_per_iteration)

    def restricted_to(self, tile_types: Iterable[str]) -> "ImplementationLibrary":
        """A new library containing only implementations for the given tile types."""
        allowed = set(tile_types)
        return ImplementationLibrary(
            impl for impl in self.implementations() if impl.tile_type in allowed
        )

    def __iter__(self) -> Iterator[Implementation]:
        return iter(self.implementations())

    def __len__(self) -> int:
        return len(self.implementations())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ImplementationLibrary(processes={len(self._by_process)}, "
            f"implementations={len(self.implementations())})"
        )
