"""Process implementations and the implementation library.

For a heterogeneous platform each process of a streaming application may have
several *implementations*, one per tile type it can run on (Table 1 of the
paper lists ARM and Montium implementations of the HiperLAN/2 processes).
An implementation carries the CSDF behaviour of the process on that tile type
(per-phase token rates and worst-case execution times), its average energy per
graph iteration and its memory requirement.  The
:class:`~repro.appmodel.library.ImplementationLibrary` indexes implementations
by process and tile type and is one of the two inputs of the spatial mapper
(the other being the platform state).
"""

from repro.appmodel.implementation import Implementation
from repro.appmodel.library import ImplementationLibrary
from repro.appmodel.parser import parse_phase_notation, format_phase_notation

__all__ = [
    "Implementation",
    "ImplementationLibrary",
    "parse_phase_notation",
    "format_phase_notation",
]
