"""Scenario events: application arrivals and departures.

Every event carries a *monotonic sequence number* assigned at construction.
:meth:`~repro.runtime.scenario.Scenario.sorted_events` breaks equal-time
ties by that number, so the replay order of merged event streams (e.g.
several arrival-process generators feeding one scenario) is deterministic
by construction instead of relying on the stability of one particular sort
over one particular insertion history.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.appmodel.library import ImplementationLibrary
from repro.kpn.als import ApplicationLevelSpec

_sequence = itertools.count()
_sequence_lock = threading.Lock()


def _next_sequence() -> int:
    """The next event sequence number (thread-safe, process-wide monotonic)."""
    with _sequence_lock:
        return next(_sequence)


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class of timed scenario events.

    ``seq`` is the creation-order tie-breaker for equal ``time_ns``; it is
    assigned automatically and excluded from equality comparisons.
    """

    time_ns: float
    seq: int = field(
        default_factory=_next_sequence, kw_only=True, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ValueError("event time must be non-negative")

    @property
    def order_key(self) -> tuple[float, int]:
        """Sort key: non-decreasing time, creation order within equal times."""
        return (self.time_ns, self.seq)


@dataclass(frozen=True)
class StartEvent(ScenarioEvent):
    """Request to start an application at a point in time.

    ``priority`` and ``deadline_ns`` flow into the admission queue when the
    scenario is played by the workload engine: higher priorities drain
    first, and a request still pending past its (absolute) deadline expires
    instead of admitting late.
    """

    als: ApplicationLevelSpec = None  # type: ignore[assignment]
    library: ImplementationLibrary | None = None
    priority: int = 0
    deadline_ns: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.als is None:
            raise ValueError("a start event needs an application specification")
        if self.deadline_ns is not None and self.deadline_ns < self.time_ns:
            raise ValueError("an admission deadline cannot precede the arrival")

    @property
    def application(self) -> str:
        """Name of the application being started."""
        return self.als.name


@dataclass(frozen=True)
class StopEvent(ScenarioEvent):
    """Request to stop a running application at a point in time."""

    application: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.application:
            raise ValueError("a stop event must name the application to stop")
