"""Scenario events: application arrivals and departures."""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.library import ImplementationLibrary
from repro.kpn.als import ApplicationLevelSpec


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class of timed scenario events."""

    time_ns: float

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ValueError("event time must be non-negative")


@dataclass(frozen=True)
class StartEvent(ScenarioEvent):
    """Request to start an application at a point in time."""

    als: ApplicationLevelSpec = None  # type: ignore[assignment]
    library: ImplementationLibrary | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.als is None:
            raise ValueError("a start event needs an application specification")

    @property
    def application(self) -> str:
        """Name of the application being started."""
        return self.als.name


@dataclass(frozen=True)
class StopEvent(ScenarioEvent):
    """Request to stop a running application at a point in time."""

    application: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.application:
            raise ValueError("a stop event must name the application to stop")
