"""Energy and utilisation accounting over run-time scenarios."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import NS_PER_S


@dataclass
class EnergyAccount:
    """Integrates application energy over a scenario timeline.

    Every admitted application contributes ``energy_per_iteration / period``
    (i.e. its average power) for the time span it is running.  The account is
    driven by the scenario player, which reports admissions, departures and
    the end of the scenario.
    """

    #: Running applications: name -> (start_time_ns, power_nj_per_ns).
    _active: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: Accumulated energy of finished application runs, in nanojoules.
    total_energy_nj: float = 0.0
    #: Per-application accumulated energy, in nanojoules.
    per_application_nj: dict[str, float] = field(default_factory=dict)

    def start(self, application: str, time_ns: float, energy_nj_per_iteration: float,
              period_ns: float) -> None:
        """Record the admission of an application."""
        power = energy_nj_per_iteration / period_ns
        self._active[application] = (time_ns, power)

    def stop(self, application: str, time_ns: float) -> None:
        """Record the departure of an application and integrate its energy."""
        if application not in self._active:
            return
        start_time, power = self._active.pop(application)
        energy = power * max(time_ns - start_time, 0.0)
        self.total_energy_nj += energy
        self.per_application_nj[application] = (
            self.per_application_nj.get(application, 0.0) + energy
        )

    def finish(self, time_ns: float) -> None:
        """Close the account at the end of the scenario (stops everything still active)."""
        for application in list(self._active.keys()):
            self.stop(application, time_ns)

    @property
    def total_energy_mj(self) -> float:
        """Total energy in millijoules."""
        return self.total_energy_nj / 1e6

    def average_power_mw(self, duration_ns: float) -> float:
        """Average power over a scenario duration, in milliwatts."""
        if duration_ns <= 0:
            return 0.0
        watts = self.total_energy_nj / 1e9 / (duration_ns / NS_PER_S)
        return watts * 1e3
