"""The discrete-event workload engine: one event loop, many region workers.

The paper's claim is that run-time spatial mapping is fast enough to make
admission decisions *online*.  Exercising that claim end to end needs a
driver that consumes timed arrival/departure events at scale — and, on a
region-sharded platform, one that actually drains independent regions in
parallel instead of cooperatively interleaving them.  This module is that
driver:

* :class:`WorkloadEngine` — a virtual-clock event loop.  It replays a
  :class:`~repro.runtime.scenario.Scenario` (or anything exposing
  ``sorted_events()`` / ``end_time_ns()``): departures stop running
  applications, arrivals are submitted to an
  :class:`~repro.runtime.queue.AdmissionQueue` (with their priorities and
  deadlines), and the queue is drained through a pluggable *region
  executor*.
* :class:`SerialRegionExecutor` / :class:`ThreadedRegionExecutor` /
  :class:`ProcessRegionExecutor` — the three drain back-ends.  All follow
  the same two-phase discipline; the threaded one runs phase 1 with one
  worker thread per region, each holding its region's lock
  (:class:`~repro.platform.regions.RegionLocks`) with the
  :class:`~repro.platform.regions.RegionOwnershipGuard` armed, so the
  per-thread transaction journals of
  :class:`~repro.platform.state.PlatformState` provably never interleave on
  the same keys; the process one ships each lane's region as a picklable
  snapshot to a worker *process* and folds the returned allocation deltas
  back on commit (see :mod:`repro.runtime.procdrain`), which is the one
  back-end the GIL cannot serialize.

The two-phase drain discipline
------------------------------

Each drain claims the ready requests and splits them into **region lanes**,
a **multi-region lane** and a **global lane**:

1. *Parallel phase* — a request pinned to a single region lane is decided
   with the pipeline restricted to exactly that region (``candidates=
   (region,)``): mapping, routing and the transactional commit all stay
   inside the shard, so lanes commute and any interleaving of workers
   yields the same decisions as any serial order.
2. *Multi-region lane* — with an inter-region planner attached, a request
   whose pinned tiles span several regions is planned over budgeted
   boundary corridors under the coordinator's **lock subset** (only the
   touched regions' locks), between the parallel phase and the residual
   global fallback.  A planner rejection falls through to phase 3.
3. *Serial phase* — requests no earlier lane can own (residual global-lane
   requests, duplicate application names, in-region rejections that
   deserve their cross-region fallback, planner rejections) run through
   the **full** pipeline on the engine's thread, in arrival order, after
   every worker has joined.

Finalisation (audit trail, running registry, queue settlement, energy
accounting) always happens on the engine's thread in arrival order, so the
serial and threaded executors are *decision-identical by construction* —
the differential tests pin exactly that.

Per-lane telemetry (admissions, rejections, expiries, parked retries) and
per-region lock wait/hold times are accumulated on the
:class:`EngineOutcome` (:attr:`EngineOutcome.telemetry`).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
import weakref
import zlib
from dataclasses import dataclass, field

from repro.exceptions import PlatformError
from repro.interregion.coordinator import InterRegionCoordinator
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    ObsConfig,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
    reanchor_spans,
)
from repro.platform.regions import (
    GLOBAL_LANE,
    Region,
    RegionLocks,
    RegionOwnershipGuard,
    RegionPartition,
)
from repro.platform.state import fingerprint_digest
from repro.runtime import procdrain
from repro.runtime.accounting import EnergyAccount
from repro.runtime.admission_control import GovernorDecision, LoadSheddingGovernor
from repro.runtime.events import StartEvent, StopEvent
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.pipeline import AdmissionPipeline
from repro.runtime.queue import AdmissionQueue, QueuedRequest, RequestStatus

#: Lane label of the engine's multi-region (inter-region planner) lane.
MULTI_REGION_LANE = "__multi__"

__all__ = [
    "WorkloadEngine",
    "EngineOutcome",
    "EngineRecord",
    "EngineTelemetry",
    "LaneCounters",
    "MULTI_REGION_LANE",
    "ProcessRegionExecutor",
    "SerialRegionExecutor",
    "ThreadedRegionExecutor",
]


# --------------------------------------------------------------------------- #
# Region executors
# --------------------------------------------------------------------------- #
@dataclass
class _RegionJob:
    """One phase-1 work item: decide a request strictly inside its lane region."""

    request: QueuedRequest
    region: Region
    decision: object | None = None
    error: BaseException | None = None
    #: Trace context of the request's root span (``None`` when unsampled):
    #: the decide span tree of whichever process runs this job hangs off it.
    trace: TraceContext | None = None

    def run(self, pipeline: AdmissionPipeline) -> None:
        """Run the region-restricted pipeline; failures are captured, not raised."""
        try:
            self.decision = pipeline.decide(
                self.request.als,
                self.request.library,
                candidates=(self.region,),
                trace=self.trace,
            )
        except Exception as error:  # surfaced (and re-raised) by the engine
            self.error = error


@dataclass
class _MultiRegionJob:
    """One multi-region lane work item: plan a spanning request over corridors.

    Runs on the engine's thread between the parallel and serial phases,
    holding only the lock subset of the regions the plan may touch.
    """

    request: QueuedRequest
    scope: tuple[str, ...]
    decision: object | None = None
    error: BaseException | None = None
    #: Trace context of the request's root span (the engine wraps the
    #: planner attempt in an ``interregion_plan`` span when set).
    trace: TraceContext | None = None

    def run(self, pipeline: AdmissionPipeline, coordinator: InterRegionCoordinator) -> None:
        """Plan under the coordinator's lock subset; failures are captured."""
        try:
            with coordinator.admission_lane(self.scope) as locked:
                self.decision = pipeline.decide_interregion(
                    self.request.als, self.request.library, scope=locked
                )
        except Exception as error:  # surfaced (and re-raised) by the engine
            self.error = error


class SerialRegionExecutor:
    """Drain lanes one after another on the calling thread.

    The reference discipline: lanes in sorted-name order, requests in order
    within each lane.  Because phase-1 work is confined to its lane's
    region, this order is immaterial to the decisions — which is exactly
    what makes the threaded executor safe to substitute.
    """

    def execute(
        self, lane_jobs: dict[str, list[_RegionJob]], pipeline: AdmissionPipeline
    ) -> None:
        """Run every lane's jobs; an error skips the rest of that lane only."""
        for lane in sorted(lane_jobs):
            for job in lane_jobs[lane]:
                job.run(pipeline)
                if job.error is not None:
                    break


class ThreadedRegionExecutor:
    """Drain lanes concurrently: one worker thread per region lane.

    Every worker holds its region's lock for the duration of its lane, and
    the :class:`~repro.platform.regions.RegionOwnershipGuard` is armed on
    the platform state while workers are in flight — a mutation outside the
    mutating thread's region raises instead of corrupting a sibling's
    journal.  Python threads do not parallelise the pure-Python mapper's
    CPU work, but the executor proves (and the guard enforces) that the
    journals, locks and caches are ready for workers that genuinely run
    concurrently — and the differential tests pin that draining this way is
    decision-identical to the serial executor.
    """

    def __init__(
        self,
        partition: RegionPartition,
        *,
        locks: RegionLocks | None = None,
        guard: bool = True,
    ) -> None:
        self.partition = partition
        self.locks = locks or RegionLocks(partition)
        self.guard: RegionOwnershipGuard | None = (
            RegionOwnershipGuard(partition, self.locks) if guard else None
        )

    def execute(
        self, lane_jobs: dict[str, list[_RegionJob]], pipeline: AdmissionPipeline
    ) -> None:
        """Run every lane's jobs, one worker per lane, and join them all."""
        if not lane_jobs:
            return
        # The default mapper is created lazily; materialise it before the
        # workers race on the first admission.
        pipeline.mapper_for(None)
        state = pipeline.state
        previous_guard = state.ownership_guard
        state.ownership_guard = self.guard
        try:
            threads = [
                threading.Thread(
                    target=self._run_lane,
                    args=(lane, lane_jobs[lane], pipeline),
                    name=f"region-worker-{lane}",
                    daemon=True,
                )
                for lane in sorted(lane_jobs)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            state.ownership_guard = previous_guard

    def _run_lane(
        self, lane: str, jobs: list[_RegionJob], pipeline: AdmissionPipeline
    ) -> None:
        """One worker: hold the lane's region lock, decide its jobs in order."""
        with self.locks.region_lane(lane):
            for job in jobs:
                job.run(pipeline)
                if job.error is not None:
                    break


class _DrainWorker:
    """Engine-side handle of one drain worker process (pipe + stats label)."""

    def __init__(self, index: int, context, settings_blob: bytes) -> None:
        self.name = f"region-drain-{index}"
        self.conn, child = context.Pipe()
        self.process = context.Process(
            target=procdrain.drain_worker,
            args=(child, settings_blob),
            name=self.name,
            daemon=True,
        )
        self.process.start()
        child.close()

    def stop(self, timeout_s: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate if it will not."""
        try:
            self.conn.send_bytes(procdrain.SHUTDOWN_FRAME)
        except (OSError, ValueError, BrokenPipeError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)


def _stop_workers(pool: list) -> None:
    """Module-level so a ``weakref.finalize`` can call it without resurrecting
    the executor."""
    for worker in pool:
        worker.stop()


class ProcessRegionExecutor:
    """Drain region lanes across *stateful* worker processes: snapshot once,
    deltas forever.

    The GIL-free counterpart of :class:`ThreadedRegionExecutor`.  Workers
    (:mod:`repro.runtime.procdrain`) keep the region-local state they last
    rebuilt **resident between drains**, so each drain the engine ships one
    of two per-lane frames:

    * a full :class:`~repro.platform.state.RegionSnapshot`
      (``SnapshotDispatch``) — the bootstrap and the explicit fallback;
    * a :class:`~repro.runtime.procdrain.DeltaDispatch` — the ordered
      :class:`~repro.platform.state.RegionDeltaOp` chain committed on the
      region since the worker's last acknowledged (seq, fingerprint-digest)
      watermark, read from the engine state's per-region
      :class:`~repro.platform.state.RegionJournal`.

    The delta path is taken exactly when the watermark bridges to the
    journal tip *and* the journal tip still matches the live region
    fingerprint; every full dispatch is **counted under its reason**
    (``full_bootstrap``, ``full_watermark_gap``, ``full_journal_stale``,
    ``full_resync``, ``full_disabled``) — there is no silent fallback.  A
    worker that cannot honour a delta (lost resident, base mismatch,
    broken chain) answers *resync* and is re-sent a counted full snapshot
    in a second pass before anything is folded.  All lanes routed to one
    worker travel batched in a single ``send_bytes`` round-trip
    (:class:`~repro.runtime.procdrain.WorkerDispatch`), with per-lane
    frames nested as their own pickle blobs for exact byte metering.

    The worker runs the ordinary ``decide(candidates=(region,))`` pipeline
    against its resident state and ships back, per admitted job, a
    serialized :class:`~repro.platform.state.AllocationDelta` (exactly the
    commit's journal records).  The engine process then *folds* each delta
    under the lane's region lock inside a region-scoped transaction — the
    existing transaction discipline — with the ownership guard armed.

    Stale decisions are handled explicitly, never silently committed:
    every worker response carries the digest of the region fingerprint its decision was
    based on, and the fold applies a delta only while the engine-side
    fingerprint still matches (within a lane the fingerprints chain across
    the lane's local commits, so a matching base proves the worker saw
    exactly the state the fold is about to mutate).  On a mismatch — or a
    delta the current state rejects — the job is re-decided on the engine
    process through the same region-restricted pipeline, and the worker's
    watermark is dropped (its resident diverged).  Finalisation stays on
    the engine thread in arrival order, so sheds and cancels settle
    exactly once, and decisions are identical to the serial executor's
    (the differential suites pin this across all three executors).

    Lanes are assigned to workers by a stable hash of the lane name, so a
    region's dispatches keep hitting the same worker and its resident
    state and region-scoped mapper-cache warmth accumulate.  ALS/library
    payloads are digested once on the engine side and shipped to each
    worker at most once per intern window (steady-state job specs carry
    digests only).  Workers are started lazily on the first drain (the
    pipeline is only known then), reused across drains and runs, and torn
    down by :meth:`close` (or the garbage collector / daemon flag as
    backstops).  Requires the pipeline's default mapper factory — a custom
    factory cannot cross the process boundary.

    Per-worker executor stats accumulate for the executor's lifetime; the
    engine reports per-run deltas in :attr:`EngineTelemetry.workers`:
    ``dispatches``/``requests``, ``delta_dispatches`` vs
    ``full_dispatches`` (with the per-reason fallback counters),
    ``snapshot_bytes`` (full-dispatch frames out),
    ``delta_dispatch_bytes`` (delta frames out), ``delta_bytes`` (worker
    deltas in), ``dispatch_bytes_saved`` (estimated: last full frame of
    the lane minus the delta frame that replaced it), plus
    ``stale_redecides`` and ``worker_wall_s``.

    ``delta_dispatch=False`` pins the executor to the PR 6 full-snapshot
    protocol (every dispatch counted ``full_disabled``) — the comparison
    baseline of the dispatch-bytes benchmark.  ``journal_capacity`` bounds
    each region's op window; a worker idle longer than the window falls
    back to one counted full snapshot.
    """

    def __init__(
        self,
        partition: RegionPartition,
        *,
        workers: int | None = None,
        locks: RegionLocks | None = None,
        guard: bool = True,
        start_method: str | None = None,
        delta_dispatch: bool = True,
        journal_capacity: int = 512,
    ) -> None:
        self.partition = partition
        self.locks = locks or RegionLocks(partition)
        self.guard: RegionOwnershipGuard | None = (
            RegionOwnershipGuard(partition, self.locks) if guard else None
        )
        self.workers = max(
            1,
            workers
            if workers is not None
            else min(len(partition), os.cpu_count() or 1),
        )
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        #: The multiprocessing start method workers are launched with
        #: (``"fork"`` where available, else ``"spawn"``) — recorded by the
        #: benchmarks so artifacts state which protocol path they measured.
        self.start_method = start_method
        self.delta_dispatch = delta_dispatch
        self.journal_capacity = journal_capacity
        self._context = multiprocessing.get_context(start_method)
        self._pool: list[_DrainWorker] | None = None
        self._finalizer: weakref.finalize | None = None
        self._stats: dict[str, dict[str, float]] = {}
        #: (worker name, lane) -> (journal seq, fingerprint digest) the
        #: resident state was last acknowledged at.  Dropped whenever a
        #: lane's fold was not clean, and wholesale on pool teardown.
        self._watermarks: dict[tuple[str, str], tuple[int, bytes]] = {}
        #: Per-worker digests already shipped (the engine-side half of the
        #: worker intern table; cleared in lockstep via ``clear_interned``).
        self._sent_digests: dict[str, set[bytes]] = {}
        #: id(payload object) -> (pinned object, digest, blob): pickling
        #: and hashing happen once per live ALS/library object, not per
        #: dispatch.  Pinning the object keeps the id stable.
        self._payloads: dict[int, tuple[object, bytes, bytes]] = {}
        #: Last full-dispatch frame size per lane — the honest baseline the
        #: ``dispatch_bytes_saved`` estimate is computed against.
        self._last_full_bytes: dict[str, int] = {}
        #: Lifetime totals of worker-side step-4 analysis counters (each
        #: lane result ships its per-lane delta); the engine reports per-run
        #: deltas, exactly like :meth:`worker_stats`.
        self._analysis_totals: dict[str, int] = {}
        #: ticket -> open engine-side ``dispatch`` span of the current round.
        self._dispatch_spans: dict[int, Span] = {}
        #: The tracer of the pipeline currently draining (installed by
        #: :meth:`execute`; dispatch frames and folds record spans on it).
        self._tracer: Tracer = NULL_TRACER

    # -- worker pool lifecycle ------------------------------------------- #
    def _ensure_pool(self, pipeline: AdmissionPipeline) -> list[_DrainWorker]:
        """Start the worker pool on first use (the pipeline defines the world)."""
        if self._pool is not None:
            return self._pool
        if not pipeline._uses_default_factory:
            raise PlatformError(
                "ProcessRegionExecutor requires the pipeline's default mapper "
                "factory: a custom factory cannot cross the process boundary"
            )
        scorer = pipeline.region_scorer
        settings = procdrain.WorkerSettings(
            platform=pipeline.platform,
            partition=pipeline.partition,
            library=pipeline.library,
            config=pipeline.config,
            require_feasible=pipeline.require_feasible,
            cache_size=pipeline.cache.maxsize if pipeline.cache is not None else 0,
            scorer_policy=scorer.policy if scorer is not None else None,
            scorer_has_feedback=scorer is not None and scorer.feedback is not None,
            obs=pipeline.tracer.config if pipeline.tracer.enabled else None,
        )
        settings_blob = procdrain.dump_frame(settings)
        # A fresh pool has empty intern tables, and unlike stale watermarks
        # (which the resync protocol detects and repairs), a stale shipped-
        # digest window has no self-validating fallback — a blob withheld
        # from a worker that never saw it is a protocol error.  Drop it here
        # rather than only in close(), so any restart path is safe.
        self._sent_digests.clear()
        pool = [
            _DrainWorker(index, self._context, settings_blob)
            for index in range(self.workers)
        ]
        self._pool = pool
        self._finalizer = weakref.finalize(self, _stop_workers, pool)
        return pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a fresh pool starts on reuse).

        Worker resident states and intern tables die with the processes, so
        the engine-side watermarks and shipped-digest windows are dropped
        with them — a fresh pool bootstraps every lane with a counted full
        snapshot.
        """
        self._pool = None
        self._watermarks.clear()
        self._sent_digests.clear()
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    def __enter__(self) -> "ProcessRegionExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_stats(self) -> dict[str, dict[str, float]]:
        """Cumulative per-worker executor stats (copied; engine takes deltas)."""
        return {name: dict(values) for name, values in self._stats.items()}

    def worker_analysis(self) -> dict[str, int]:
        """Cumulative worker-side analysis counters (copied; engine takes deltas)."""
        return dict(self._analysis_totals)

    def publish_metrics(
        self, registry: MetricsRegistry, stats: dict[str, dict[str, float]] | None = None
    ) -> None:
        """Publish per-worker executor stats (default: lifetime totals) as counters."""
        for worker, values in (stats if stats is not None else self.worker_stats()).items():
            for key, value in values.items():
                registry.count(f"executor.{key}[worker={worker}]", float(value))

    def _stats_for(self, worker_name: str) -> dict[str, float]:
        return self._stats.setdefault(
            worker_name,
            {
                "dispatches": 0,
                "requests": 0,
                "snapshot_bytes": 0,
                "delta_dispatch_bytes": 0,
                "delta_bytes": 0,
                "delta_dispatches": 0,
                "full_dispatches": 0,
                "full_bootstrap": 0,
                "full_disabled": 0,
                "full_journal_stale": 0,
                "full_watermark_gap": 0,
                "full_resync": 0,
                "dispatch_bytes_saved": 0,
                "stale_redecides": 0,
                "worker_wall_s": 0.0,
            },
        )

    def _worker_for(self, pool: list[_DrainWorker], lane: str) -> _DrainWorker:
        """Stable lane-to-worker assignment (cache warmth over balance)."""
        return pool[zlib.crc32(lane.encode("utf-8")) % len(pool)]

    # -- dispatch assembly ---------------------------------------------- #
    def _payload_for(self, payload: object) -> tuple[bytes, bytes]:
        """(digest, blob) of one ALS/library object, pickled and hashed once.

        Keyed by object identity with the object pinned in the cache entry,
        so a request re-dispatched across drains (parked retries) reuses
        the digest without re-pickling — and the digest stays stable for
        the worker's identity-interning.
        """
        entry = self._payloads.get(id(payload))
        if entry is None or entry[0] is not payload:
            if len(self._payloads) >= procdrain.INTERN_LIMIT:
                self._payloads.clear()
            blob = procdrain.dump_frame(payload)
            digest = hashlib.sha1(blob).digest()
            self._payloads[id(payload)] = (payload, digest, blob)
            return digest, blob
        return entry[1], entry[2]

    def _job_specs(
        self, jobs: list[_RegionJob], sent: set[bytes]
    ) -> tuple[procdrain.JobSpec, ...]:
        """The lane's job specs, shipping each payload blob at most once per
        worker intern window (``sent`` is that worker's shipped-digest set)."""
        specs = []
        tracer = self._tracer
        for job in jobs:
            als_digest, als_blob = self._payload_for(job.request.als)
            if als_digest in sent:
                als_blob = None
            else:
                sent.add(als_digest)
            library_digest = library_blob = None
            if job.request.library is not None:
                library_digest, library_blob = self._payload_for(job.request.library)
                if library_digest in sent:
                    library_blob = None
                else:
                    sent.add(library_digest)
            trace = None
            if tracer.enabled and job.trace is not None:
                # One dispatch span per job, open until the worker's answer
                # frame lands: the worker's decide tree parents onto it, and
                # its window is the re-anchoring target for worker spans.
                span = tracer.start(
                    "dispatch", job.trace, attrs={"lane": job.request.lane}
                )
                self._dispatch_spans[job.request.ticket] = span
                trace = job.trace.child(span.span_id)
            specs.append(
                procdrain.JobSpec(
                    ticket=job.request.ticket,
                    als_digest=als_digest,
                    als_blob=als_blob,
                    library_digest=library_digest,
                    library_blob=library_blob,
                    trace=trace,
                )
            )
        return tuple(specs)

    def _assemble_lane(
        self,
        lane: str,
        jobs: list[_RegionJob],
        worker: _DrainWorker,
        pipeline: AdmissionPipeline,
        sent: set[bytes],
        force_full: str | None = None,
    ) -> bytes:
        """Build one lane's dispatch frame: delta when bridgeable, else a
        full snapshot counted under its reason (never silent)."""
        state = pipeline.state
        region = jobs[0].region
        journal = state.region_journal(region, self.journal_capacity)
        live = fingerprint_digest(region.fingerprint(state))
        key = (worker.name, lane)
        reason = force_full
        mark = None
        ops: tuple | None = None
        if reason is None and journal.tip_fingerprint != live:
            # An un-journaled mutation bypassed the commit/release hooks
            # (e.g. a batch rollback): rebase the chain and resync the
            # worker from a snapshot.
            journal.reset(live)
            reason = "journal_stale"
        if reason is None and not self.delta_dispatch:
            reason = "disabled"
        if reason is None:
            mark = self._watermarks.get(key)
            if mark is None:
                reason = "bootstrap"
            else:
                ops = journal.ops_since(*mark)
                if ops is None:
                    reason = "watermark_gap"
        specs = self._job_specs(jobs, sent)
        stats = self._stats_for(worker.name)
        stats["dispatches"] += 1
        stats["requests"] += len(jobs)
        if reason is None:
            frame = procdrain.dump_frame(
                procdrain.DeltaDispatch(
                    lane=lane,
                    base_seq=mark[0],
                    base_fingerprint=mark[1],
                    ops=ops,
                    jobs=specs,
                )
            )
            stats["delta_dispatches"] += 1
            stats["delta_dispatch_bytes"] += len(frame)
            stats["dispatch_bytes_saved"] += max(
                0, self._last_full_bytes.get(lane, 0) - len(frame)
            )
        else:
            self._watermarks.pop(key, None)
            frame = procdrain.dump_frame(
                procdrain.SnapshotDispatch(
                    lane=lane, snapshot=state.snapshot_scope(region), jobs=specs
                )
            )
            stats["full_dispatches"] += 1
            stats[f"full_{reason}"] += 1
            stats["snapshot_bytes"] += len(frame)
            self._last_full_bytes[lane] = len(frame)
        return frame

    def _dispatch_round(
        self,
        lanes_by_worker: dict[str, list[str]],
        workers_by_name: dict[str, _DrainWorker],
        lane_jobs: dict[str, list[_RegionJob]],
        pipeline: AdmissionPipeline,
        force_full: str | None = None,
    ) -> dict[str, procdrain.LaneResult]:
        """One batched send/receive round: every worker gets at most one
        frame holding all its lanes; answers map back by lane name.

        The engine stamps each worker's send/receive window; returned
        worker-clock spans are re-anchored into it and adopted, worker
        analysis-counter deltas accumulate on the executor, and worker
        metrics snapshots fold into the engine's run registry — one fold,
        same as every other delta.
        """
        tracer = self._tracer
        send_ns: dict[str, int] = {}
        for worker_name, lanes in lanes_by_worker.items():
            worker = workers_by_name[worker_name]
            sent = self._sent_digests.setdefault(worker_name, set())
            clear_interned = False
            if len(sent) >= procdrain.INTERN_LIMIT:
                # Engine-driven eviction, at a frame boundary: wipe both
                # halves of the intern bookkeeping together so a digest-only
                # spec can never reference an object the worker dropped.
                sent.clear()
                clear_interned = True
            frames = tuple(
                self._assemble_lane(
                    lane, lane_jobs[lane], worker, pipeline, sent, force_full
                )
                for lane in lanes
            )
            send_ns[worker_name] = time.perf_counter_ns()
            worker.conn.send_bytes(
                procdrain.dump_frame(
                    procdrain.WorkerDispatch(frames=frames, clear_interned=clear_interned)
                )
            )
        results: dict[str, procdrain.LaneResult] = {}
        for worker_name in lanes_by_worker:
            worker_results = procdrain.load_frame(
                workers_by_name[worker_name].conn.recv_bytes()
            )
            recv_ns = time.perf_counter_ns()
            for result in worker_results:
                results[result.lane] = result
                if result.analysis:
                    for key, value in result.analysis.items():
                        self._analysis_totals[key] = (
                            self._analysis_totals.get(key, 0) + value
                        )
                if pipeline.metrics is not None and result.metrics is not None:
                    pipeline.metrics.fold(result.metrics)
                if result.spans and tracer.enabled:
                    tracer.adopt(
                        reanchor_spans(
                            result.spans,
                            window_start_ns=send_ns[worker_name],
                            window_end_ns=recv_ns,
                        )
                    )
                for response in result.responses:
                    span = self._dispatch_spans.pop(response.ticket, None)
                    if span is not None:
                        tracer.end(span, end_ns=recv_ns)
        return results

    # -- the drain ------------------------------------------------------- #
    def execute(
        self, lane_jobs: dict[str, list[_RegionJob]], pipeline: AdmissionPipeline
    ) -> None:
        """Dispatch every lane to its worker, then fold the results in order."""
        if not lane_jobs:
            return
        # Engine-side re-decides (stale snapshots) use the engine pipeline's
        # mapper; materialise it outside the fold loop.
        pipeline.mapper_for(None)
        self._tracer = pipeline.tracer
        self._dispatch_spans.clear()
        pool = self._ensure_pool(pipeline)
        state = pipeline.state
        lanes = sorted(lane_jobs)
        dispatched: dict[str, _DrainWorker] = {}
        lanes_by_worker: dict[str, list[str]] = {}
        workers_by_name: dict[str, _DrainWorker] = {}
        for lane in lanes:
            worker = self._worker_for(pool, lane)
            dispatched[lane] = worker
            lanes_by_worker.setdefault(worker.name, []).append(lane)
            workers_by_name[worker.name] = worker
        results = self._dispatch_round(
            lanes_by_worker, workers_by_name, lane_jobs, pipeline
        )
        # A worker that could not honour a delta dispatch (lost resident,
        # base mismatch, broken chain) decided nothing: re-dispatch those
        # lanes as full snapshots — counted, and resolved before any fold.
        resync = {
            lane: result.resync
            for lane, result in results.items()
            if result.resync is not None
        }
        if resync:
            retry_by_worker: dict[str, list[str]] = {}
            for lane in sorted(resync):
                retry_by_worker.setdefault(dispatched[lane].name, []).append(lane)
            results.update(
                self._dispatch_round(
                    retry_by_worker,
                    workers_by_name,
                    lane_jobs,
                    pipeline,
                    force_full="resync",
                )
            )
        # Fold on commit, lane by lane in the serial executor's order, under
        # each lane's region lock with the ownership guard armed.
        previous_guard = state.ownership_guard
        state.ownership_guard = self.guard
        try:
            for lane in lanes:
                self._fold_lane(
                    lane,
                    lane_jobs[lane],
                    results[lane],
                    pipeline,
                    self._stats_for(dispatched[lane].name),
                    worker_name=dispatched[lane].name,
                )
        finally:
            state.ownership_guard = previous_guard

    def _fold_lane(
        self,
        lane: str,
        jobs: list[_RegionJob],
        result: procdrain.LaneResult,
        pipeline: AdmissionPipeline,
        stats: dict[str, float],
        worker_name: str | None = None,
    ) -> None:
        """Fold one lane's worker responses into the engine state.

        Per job: check the response's base fingerprint against the live
        region fingerprint; apply the delta in a region-scoped transaction
        on a match, re-decide on the engine process otherwise.  Worker
        errors surface on the job (the engine unwinds and re-raises), and a
        lane a worker aborted early leaves its remaining jobs undecided —
        exactly the serial lane-abort discipline.

        A lane folded *clean* — every job answered, no error, no engine-side
        re-decide — advances the worker's delta watermark to the journal
        tip (which then equals the worker's acknowledged final
        fingerprint); anything else drops the watermark, forcing a counted
        full snapshot next dispatch.
        """
        state = pipeline.state
        region = jobs[0].region
        tracer = self._tracer
        responses = {response.ticket: response for response in result.responses}
        clean = result.resync is None
        with self.locks.region_lane(lane):
            for job in jobs:
                fold_start_ns = (
                    time.perf_counter_ns()
                    if tracer.enabled and job.trace is not None
                    else 0
                )
                response = responses.get(job.request.ticket)
                if response is None:
                    clean = False
                    break  # worker aborted the lane on an earlier error
                stats["worker_wall_s"] += response.wall_s
                # The worker's mapper ran for real; keep the engine-wide
                # invocation accounting honest across executors.
                pipeline.mapper_invocations += response.mapper_invocations
                if response.error is not None:
                    clean = False
                    job.error = PlatformError(
                        f"region drain worker failed in lane {lane!r}:\n"
                        f"{response.error}"
                    )
                    break
                if fingerprint_digest(region.fingerprint(state)) != response.base_fingerprint:
                    clean = False
                    stats["stale_redecides"] += 1
                    job.run(pipeline)
                    if job.error is not None:
                        break
                    continue
                decision = procdrain.load_frame(response.decision_blob)
                if decision.admitted:
                    delta = procdrain.load_frame(response.delta_blob)
                    stats["delta_bytes"] += len(response.delta_blob)
                    try:
                        with state.transaction(region):
                            state.apply_delta(delta)
                    except PlatformError:
                        # The fingerprint matched but the delta no longer
                        # fits (aggregates can collide across histories);
                        # the transaction rolled everything back — re-decide
                        # against the live state instead of committing.
                        clean = False
                        stats["stale_redecides"] += 1
                        job.run(pipeline)
                        if job.error is not None:
                            break
                        continue
                    pipeline.record_commit(
                        decision.application, decision.result.mapping
                    )
                if fold_start_ns:
                    tracer.record(
                        "engine_fold",
                        job.trace,
                        fold_start_ns,
                        time.perf_counter_ns(),
                        attrs={"lane": lane, "folded": decision.admitted},
                    )
                job.decision = decision
            if worker_name is not None:
                self._advance_watermark(
                    worker_name, lane, region, result, clean, state
                )

    def _advance_watermark(
        self,
        worker_name: str,
        lane: str,
        region: Region,
        result: procdrain.LaneResult,
        clean: bool,
        state,
    ) -> None:
        """Record (or drop) one worker's post-fold delta watermark.

        After a clean fold the engine journal's tip covers exactly the
        lane's folded commits, so it must fingerprint-match the worker's
        acknowledged resident state; if it does not (defensive — an
        invariant breach, not an expected path), the watermark is dropped
        and the next dispatch bootstraps from a counted snapshot.
        """
        key = (worker_name, lane)
        journal = state.region_journals.get(region.name)
        if (
            clean
            and journal is not None
            and result.final_fingerprint is not None
            and journal.tip_fingerprint == result.final_fingerprint
        ):
            self._watermarks[key] = (journal.tip_seq, result.final_fingerprint)
        else:
            self._watermarks.pop(key, None)


# --------------------------------------------------------------------------- #
# Outcome bookkeeping
# --------------------------------------------------------------------------- #
@dataclass
class LaneCounters:
    """Per-lane settlement counters of one engine run."""

    admitted: int = 0
    rejected: int = 0
    expired: int = 0
    cancelled: int = 0
    parked: int = 0
    shed: int = 0

    def settled(self) -> int:
        """Requests this lane settled terminally."""
        return self.admitted + self.rejected + self.expired + self.cancelled + self.shed


@dataclass
class EngineTelemetry:
    """Observability counters of one engine run.

    ``lanes`` is keyed by the lane that *settled* the request: a region
    name for phase-1 admissions, :data:`MULTI_REGION_LANE` for the
    inter-region planner lane, :data:`~repro.platform.regions.GLOBAL_LANE`
    for the serial phase.  Parked retries count against the request's home
    lane.  ``lock_wait_s`` / ``lock_hold_s`` aggregate the per-region lock
    times of every lane (region workers, lock subsets, global lane).
    """

    lanes: dict[str, LaneCounters] = field(default_factory=dict)
    lock_wait_s: dict[str, float] = field(default_factory=dict)
    lock_hold_s: dict[str, float] = field(default_factory=dict)
    lock_acquisitions: dict[str, int] = field(default_factory=dict)
    #: Final :meth:`LoadSheddingGovernor.snapshot` of the run's governor
    #: (``None`` when the engine ran without one).
    governor: dict | None = None
    #: Per-worker executor stats of this run (empty for executors without
    #: workers): lane dispatches, requests decided, snapshot/delta bytes
    #: shipped across the process boundary, stale-snapshot re-decides and
    #: in-worker wall-clock, keyed by worker name.
    workers: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Step-4 analysis work of this run: ``simulations_run`` /
    #: ``simulated_events`` (real simulations only), ``cache_hits`` (verdicts
    #: replayed without simulating) and ``budget_exhausted`` (minimisations
    #: degraded to sufficient capacities), as the delta of the engine-side
    #: pipeline's :class:`~repro.csdf.analysis.budget.AnalysisEngine`
    #: counters around the run.  Process workers run their own pipelines;
    #: their per-lane counter deltas travel back in each
    #: :class:`~repro.runtime.procdrain.LaneResult` and are folded in here,
    #: so the totals agree with the serial executor's (caches aside).
    analysis: dict[str, int] = field(default_factory=dict)

    def lane(self, name: str) -> LaneCounters:
        """The counters of one lane (created on first use)."""
        return self.lanes.setdefault(name, LaneCounters())

    def count(self, lane: str, status: "RequestStatus") -> None:
        """Account one settled request against a lane."""
        counters = self.lane(lane)
        if status is RequestStatus.ADMITTED:
            counters.admitted += 1
        elif status is RequestStatus.REJECTED:
            counters.rejected += 1
        elif status is RequestStatus.EXPIRED:
            counters.expired += 1
        elif status is RequestStatus.CANCELLED:
            counters.cancelled += 1
        elif status is RequestStatus.SHED:
            counters.shed += 1

    def merge_lock_stats(self, stats: dict[str, dict[str, float]]) -> None:
        """Fold one :meth:`RegionLocks.stats` snapshot into the totals."""
        for region, values in stats.items():
            self.lock_wait_s[region] = self.lock_wait_s.get(region, 0.0) + values["wait_s"]
            self.lock_hold_s[region] = self.lock_hold_s.get(region, 0.0) + values["hold_s"]
            self.lock_acquisitions[region] = self.lock_acquisitions.get(region, 0) + int(
                values["acquisitions"]
            )

    def merge_worker_stats(self, stats: dict[str, dict[str, float]]) -> None:
        """Fold one :meth:`ProcessRegionExecutor.worker_stats` delta into the totals."""
        for worker, values in stats.items():
            totals = self.workers.setdefault(worker, {})
            for key, value in values.items():
                totals[key] = totals.get(key, 0) + value


@dataclass(frozen=True)
class EngineRecord:
    """Final outcome of one admission request driven through the engine."""

    time_ns: float
    ticket: int
    application: str
    status: RequestStatus
    reason: str = ""
    priority: int = 0


@dataclass
class EngineOutcome:
    """Everything a workload run decided, plus its accounting.

    ``records`` hold one entry per *settled* request in settlement order;
    ``departures`` the executed stop events.  Wall-clock fields separate
    total run time from time spent inside drains (the part the region
    executor owns), and ``mapping_runtime_s`` accumulates the pipeline's
    own per-attempt mapper time, so benchmarks can report per-admission
    cost at any granularity.
    """

    workload: str
    records: list[EngineRecord] = field(default_factory=list)
    departures: list[tuple[float, str]] = field(default_factory=list)
    energy: EnergyAccount = field(default_factory=EnergyAccount)
    end_time_ns: float = 0.0
    drains: int = 0
    wall_clock_s: float = 0.0
    drain_wall_s: float = 0.0
    mapping_runtime_s: float = 0.0
    parked_retries_skipped: int = 0
    telemetry: EngineTelemetry = field(default_factory=EngineTelemetry)
    #: Every span the run's tracer recorded (engine spans plus re-anchored
    #: worker spans), in buffer order; empty with observability off.
    spans: list[SpanRecord] = field(default_factory=list)
    #: Snapshot of the run's folded :class:`~repro.obs.metrics.MetricsRegistry`
    #: (``None`` with observability or metrics off).
    metrics: dict | None = None

    def _with_status(self, status: RequestStatus) -> list[EngineRecord]:
        """Records with one status, served from a lazily built index.

        The status properties (:attr:`admitted`, :attr:`rejected`, ...) are
        hot in reporting and differential loops; re-scanning ``records`` on
        every property access is quadratic over a run's settlement count.
        The index is keyed by ``len(records)``, so an append invalidates it
        and the next access rebuilds — records are append-only.
        """
        cache = getattr(self, "_status_cache", None)
        if cache is None or cache[0] != len(self.records):
            index: dict[RequestStatus, list[EngineRecord]] = {}
            for record in self.records:
                index.setdefault(record.status, []).append(record)
            cache = (len(self.records), index)
            self._status_cache = cache
        return cache[1].get(status, [])

    @property
    def admitted(self) -> list[str]:
        """Applications admitted, in settlement order."""
        return [r.application for r in self._with_status(RequestStatus.ADMITTED)]

    @property
    def rejected(self) -> list[tuple[str, str]]:
        """(application, reason) of requests rejected by the pipeline."""
        return [
            (r.application, r.reason) for r in self._with_status(RequestStatus.REJECTED)
        ]

    @property
    def expired(self) -> list[str]:
        """Applications whose requests expired past their deadline."""
        return [r.application for r in self._with_status(RequestStatus.EXPIRED)]

    @property
    def cancelled(self) -> list[str]:
        """Applications whose requests were cancelled."""
        return [r.application for r in self._with_status(RequestStatus.CANCELLED)]

    @property
    def shed(self) -> list[str]:
        """Applications the load governor shed before any mapping work."""
        return [r.application for r in self._with_status(RequestStatus.SHED)]

    @property
    def decided(self) -> int:
        """Requests that reached a terminal admit/reject/expire outcome."""
        return len(self.admitted) + len(self.rejected) + len(self.expired)

    @property
    def admission_rate(self) -> float:
        """Fraction of decided requests that were admitted (cancellations and
        governor sheds excluded — a shed request was never offered to the
        mapper, so counting it as a rejection would charge the pipeline for
        work the governor deliberately avoided)."""
        return len(self.admitted) / self.decided if self.decided else 0.0

    def priority_admission_rate(self, priority: int) -> float:
        """Admission rate of one priority class (admitted / decided).

        Decided covers admitted, rejected and expired records of the class;
        shed and cancelled requests are excluded, exactly as in
        :attr:`admission_rate`.
        """
        decided = [
            r
            for r in self.records
            if r.priority == priority
            and r.status
            in (RequestStatus.ADMITTED, RequestStatus.REJECTED, RequestStatus.EXPIRED)
        ]
        if not decided:
            return 0.0
        admitted = sum(1 for r in decided if r.status is RequestStatus.ADMITTED)
        return admitted / len(decided)

    def decision_log(self) -> list[tuple[str, str, str]]:
        """(application, status, reason) per settled request — the differential key."""
        return [(r.application, r.status.value, r.reason) for r in self.records]


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
class WorkloadEngine:
    """Virtual-clock event loop feeding an admission queue and region executor.

    Parameters
    ----------
    manager:
        The resource manager whose pipeline decides admissions.
    queue:
        Optional pre-configured :class:`AdmissionQueue`; a fresh one is
        created when omitted (``park_rejections`` is forwarded to it).
    executor:
        Phase-1 drain back-end; defaults to :class:`SerialRegionExecutor`.
    drain_mode:
        ``"batched"`` (default): all events at one timestamp are treated as
        concurrent — departures execute first, arrivals are enqueued, then
        one drain runs, giving region lanes real batches to parallelise.
        ``"immediate"``: the queue is drained after every single arrival,
        reproducing the legacy scenario player's strict one-event-at-a-time
        semantics (this is what :func:`~repro.runtime.scenario.run_scenario`
        uses).
    park_rejections:
        Enable cache-aware rejection parking on the engine-created queue: a
        rejected request waits until its lane's fingerprint changes instead
        of being re-mapped on every drain.
    governor:
        Optional :class:`~repro.runtime.admission_control.LoadSheddingGovernor`.
        When attached (and enabled), every drain gates the claimed requests
        through it before any mapping work: under overload, low-priority
        arrivals are shed (terminal ``SHED`` status) or deferred back to
        the queue.  The governor observes every settled pipeline decision,
        so its windowed rate estimate follows the run it is governing.  A
        disabled governor (or none) is decision-inert.
    obs:
        Optional :class:`~repro.obs.trace.ObsConfig`.  When enabled, the
        engine owns a :class:`~repro.obs.trace.Tracer` (installed on the
        manager's pipeline, shipped to drain workers) producing per-request
        span trees keyed by ``"<workload>:<ticket>"``, and a per-run
        :class:`~repro.obs.metrics.MetricsRegistry` every component
        publishes into.  Both land on the outcome
        (:attr:`EngineOutcome.spans` / :attr:`EngineOutcome.metrics`).
        Observability only ever observes: the differential suites pin that
        decisions are bit-identical with it on or off.
    """

    def __init__(
        self,
        manager: RuntimeResourceManager,
        *,
        queue: AdmissionQueue | None = None,
        executor: SerialRegionExecutor
        | ThreadedRegionExecutor
        | ProcessRegionExecutor
        | None = None,
        drain_mode: str = "batched",
        park_rejections: bool = False,
        governor: LoadSheddingGovernor | None = None,
        obs: ObsConfig | None = None,
    ) -> None:
        if drain_mode not in ("batched", "immediate"):
            raise ValueError(f"unknown drain mode {drain_mode!r}")
        self.manager = manager
        self.queue = queue or AdmissionQueue(manager, park_rejections=park_rejections)
        self.executor = executor or SerialRegionExecutor()
        self.drain_mode = drain_mode
        self.governor = governor
        self.obs = obs
        self.tracer: Tracer = (
            Tracer(obs) if obs is not None and obs.enabled else NULL_TRACER
        )
        manager.pipeline.tracer = self.tracer
        #: The current run's metrics registry (``None`` between runs or with
        #: metrics off); installed on the pipeline and queue for the run.
        self.metrics: MetricsRegistry | None = None
        #: ticket -> open root ("request") span of every in-flight sampled
        #: request; closed (and popped) when the request settles terminally.
        self._roots: dict[int, Span] = {}
        #: Tickets whose ``queue_wait`` span was already recorded (a parked
        #: request is claimed repeatedly; only its first wait is the wait).
        self._queue_waited: set[int] = set()
        self._workload_name = "workload"
        #: Lock-subset coordinator of the multi-region lane, created on
        #: first use.  It shares the threaded executor's locks (so the
        #: subset exclusion is real) or gets a private set otherwise.
        self._coordinator: InterRegionCoordinator | None = None

    # ------------------------------------------------------------------ #
    def run(self, workload) -> EngineOutcome:
        """Replay a workload's events against the manager and account outcomes.

        ``workload`` is anything with ``sorted_events()``, ``end_time_ns()``
        and a ``name`` — in practice a
        :class:`~repro.runtime.scenario.Scenario` (hand-written or produced
        by :mod:`repro.workloads.arrivals`).
        """
        started = time.perf_counter()
        lock_baseline = self._lock_stats_snapshot()
        worker_baseline = self._worker_stats_snapshot()
        analysis_baseline = self._analysis_snapshot()
        worker_analysis_baseline = self._worker_analysis_snapshot()
        outcome = EngineOutcome(workload=getattr(workload, "name", "workload"))
        self._workload_name = outcome.workload
        obs = self.obs
        self.metrics = (
            MetricsRegistry()
            if obs is not None and obs.enabled and obs.metrics
            else None
        )
        self.manager.pipeline.metrics = self.metrics
        self.queue.metrics = self.metrics
        events = workload.sorted_events()
        for event in events:
            if not isinstance(event, (StartEvent, StopEvent)):
                raise TypeError(f"unknown scenario event type {type(event)!r}")
        if self.drain_mode == "immediate":
            for event in events:
                if isinstance(event, StopEvent):
                    self._stop(event.application, event.time_ns, outcome)
                    # A departure may have un-parked a waiting request by
                    # changing the state fingerprint; give it its retry now
                    # instead of waiting for the next arrival.
                    if len(self.queue):
                        self._drain(event.time_ns, outcome)
                else:
                    self._submit(event)
                    self._drain(event.time_ns, outcome)
        else:
            index = 0
            while index < len(events):
                time_ns = events[index].time_ns
                batch = []
                while index < len(events) and events[index].time_ns == time_ns:
                    batch.append(events[index])
                    index += 1
                arrivals = 0
                for event in batch:
                    if isinstance(event, StopEvent):
                        self._stop(event.application, time_ns, outcome)
                for event in batch:
                    if isinstance(event, StartEvent):
                        self._submit(event)
                        arrivals += 1
                if arrivals or len(self.queue):
                    self._drain(time_ns, outcome)
        end_time_ns = workload.end_time_ns()
        if len(self.queue):
            # Parked requests get one last look at the final state...
            self._drain(end_time_ns, outcome)
        for request in self.queue.flush_pending(now_ns=end_time_ns):
            # ...and whatever still waits when the workload ends is settled
            # as rejected (it never received capacity).
            self._record(end_time_ns, request, outcome)
        outcome.end_time_ns = end_time_ns
        outcome.energy.finish(end_time_ns)
        outcome.wall_clock_s = time.perf_counter() - started
        self._collect_lock_stats(outcome, lock_baseline)
        self._collect_worker_stats(outcome, worker_baseline)
        self._collect_analysis_stats(
            outcome, analysis_baseline, worker_analysis_baseline
        )
        if self.governor is not None:
            outcome.telemetry.governor = self.governor.snapshot()
        metrics = self.metrics
        if metrics is not None:
            self._publish_run_metrics(metrics, outcome)
            outcome.metrics = metrics.snapshot()
        if self.tracer.enabled:
            outcome.spans = self.tracer.drain()
        self.metrics = None
        self.manager.pipeline.metrics = None
        self.queue.metrics = None
        return outcome

    def _publish_run_metrics(
        self, metrics: MetricsRegistry, outcome: EngineOutcome
    ) -> None:
        """Publish the run's telemetry deltas into the metrics registry.

        One fold path: the engine publishes its lane counters itself, and
        every other component (locks, analysis, governor, process executor)
        publishes through its own ``publish_metrics`` — all into the same
        registry the queue and pipeline counted into live, and the same
        registry worker snapshots folded into at dispatch time.
        """
        telemetry = outcome.telemetry
        for lane, counters in sorted(telemetry.lanes.items()):
            for status in ("admitted", "rejected", "expired", "cancelled", "shed", "parked"):
                value = getattr(counters, status)
                if value:
                    metrics.count(
                        f"engine.settled[lane={lane},status={status}]", float(value)
                    )
        for source in self._lock_sources():
            lock_delta = {
                region: {
                    "wait_s": telemetry.lock_wait_s.get(region, 0.0),
                    "hold_s": telemetry.lock_hold_s.get(region, 0.0),
                    "acquisitions": telemetry.lock_acquisitions.get(region, 0),
                }
                for region in telemetry.lock_wait_s
            }
            source.publish_metrics(metrics, lock_delta)
            break  # the telemetry deltas are already merged across sources
        analysis = getattr(self.manager.pipeline, "analysis", None)
        if analysis is not None and telemetry.analysis:
            analysis.publish_metrics(metrics, telemetry.analysis)
        if self.governor is not None:
            self.governor.publish_metrics(metrics)
        publish = getattr(self.executor, "publish_metrics", None)
        if callable(publish) and telemetry.workers:
            publish(metrics, telemetry.workers)

    def _lock_sources(self) -> list[RegionLocks]:
        """Every RegionLocks instance this engine's lanes may have used."""
        sources: list[RegionLocks] = []
        locks = getattr(self.executor, "locks", None)
        if isinstance(locks, RegionLocks):
            sources.append(locks)
        if self._coordinator is not None and all(
            self._coordinator.locks is not source for source in sources
        ):
            sources.append(self._coordinator.locks)
        return sources

    def _lock_stats_snapshot(self) -> dict[int, dict[str, dict[str, float]]]:
        """Cumulative lock stats per source, keyed by object identity."""
        return {id(source): source.stats() for source in self._lock_sources()}

    def _collect_lock_stats(
        self,
        outcome: EngineOutcome,
        baseline: dict[int, dict[str, dict[str, float]]],
    ) -> None:
        """Fold this run's lock timings into the outcome's telemetry.

        ``RegionLocks`` accumulates for its lifetime (executors may be
        reused across runs), so each run reports the delta against the
        snapshot taken when it started.  A coordinator created mid-run has
        fresh locks, whose baseline is implicitly zero.
        """
        for source in self._lock_sources():
            stats = source.stats()
            before = baseline.get(id(source), {})
            delta = {
                region: {
                    key: values[key] - before.get(region, {}).get(key, 0.0)
                    for key in values
                }
                for region, values in stats.items()
            }
            outcome.telemetry.merge_lock_stats(delta)

    def _analysis_snapshot(self) -> dict[str, int]:
        """Cumulative analysis-engine counters of the engine-side pipeline."""
        analysis = getattr(self.manager.pipeline, "analysis", None)
        return analysis.snapshot() if analysis is not None else {}

    def _worker_analysis_snapshot(self) -> dict[str, int]:
        """Cumulative worker-side analysis counters (process executor only)."""
        stats = getattr(self.executor, "worker_analysis", None)
        return stats() if callable(stats) else {}

    def _collect_analysis_stats(
        self,
        outcome: EngineOutcome,
        baseline: dict[str, int],
        worker_baseline: dict[str, int],
    ) -> None:
        """Fold this run's step-4 analysis work into the telemetry.

        The analysis engine accumulates for the pipeline's lifetime, so each
        run reports the delta against its starting snapshot (same discipline
        as the lock and worker stats).  Process drain workers run their own
        analysis engines; their per-lane counter deltas accumulate on the
        executor and this run's share is folded in here, so
        ``telemetry.analysis`` accounts *all* analysis work regardless of
        executor.
        """
        stats = self._analysis_snapshot()
        worker_stats = self._worker_analysis_snapshot()
        if not stats and not worker_stats:
            return
        totals = {key: value - baseline.get(key, 0) for key, value in stats.items()}
        for key, value in worker_stats.items():
            totals[key] = totals.get(key, 0) + value - worker_baseline.get(key, 0)
        outcome.telemetry.analysis = totals

    def _worker_stats_snapshot(self) -> dict[str, dict[str, float]]:
        """Cumulative per-worker executor stats, empty for worker-less executors."""
        stats = getattr(self.executor, "worker_stats", None)
        return stats() if callable(stats) else {}

    def _collect_worker_stats(
        self,
        outcome: EngineOutcome,
        baseline: dict[str, dict[str, float]],
    ) -> None:
        """Fold this run's per-worker executor stats into the telemetry.

        Like the lock stats, the executor accumulates for its lifetime
        (worker pools are reused across runs), so each run reports the
        delta against its starting snapshot.
        """
        stats = self._worker_stats_snapshot()
        if not stats:
            return
        outcome.telemetry.merge_worker_stats(
            {
                worker: {
                    key: value - baseline.get(worker, {}).get(key, 0)
                    for key, value in values.items()
                }
                for worker, values in stats.items()
            }
        )

    # ------------------------------------------------------------------ #
    def _submit(self, event: StartEvent) -> int:
        """Enqueue one arrival with its priority and admission deadline."""
        ticket = self.queue.submit(
            event.als,
            library=event.library,
            priority=event.priority,
            deadline_ns=event.deadline_ns,
            now_ns=event.time_ns,
        )
        if self.tracer.enabled:
            context = self.tracer.context_for(f"{self._workload_name}:{ticket}")
            if context is not None:
                # The root span opens at submission and closes at terminal
                # settlement, so queue wait is inside the request's window.
                self._roots[ticket] = self.tracer.start(
                    "request",
                    context,
                    attrs={
                        "application": event.als.name,
                        "priority": event.priority,
                        "ticket": ticket,
                    },
                )
        return ticket

    def _job_trace(self, request: QueuedRequest) -> TraceContext | None:
        """The request's root-child trace context (recording its queue wait
        once, on the first claim); ``None`` when unsampled."""
        root = self._roots.get(request.ticket)
        if root is None:
            return None
        if request.ticket not in self._queue_waited:
            self._queue_waited.add(request.ticket)
            self.tracer.record(
                "queue_wait",
                root.context(),
                root.start_ns,
                time.perf_counter_ns(),
                attrs={"lane": request.lane},
            )
        return root.context()

    def _stop(self, application: str, time_ns: float, outcome: EngineOutcome) -> None:
        """Execute one departure; departures of never-admitted apps are no-ops."""
        if not self.manager.is_running(application):
            return
        self.manager.stop(application)
        outcome.energy.stop(application, time_ns)
        outcome.departures.append((time_ns, application))

    def _drain(self, now_ns: float, outcome: EngineOutcome) -> None:
        """One two-phase drain of everything ready at the current virtual time."""
        drain_started = time.perf_counter()
        pending_before = len(self.queue)
        expired, ready = self.queue.take(now_ns=now_ns)
        outcome.drains += 1
        outcome.parked_retries_skipped += pending_before - len(ready) - len(expired)
        for request in expired:
            # An expired deadline is an admission the platform failed to
            # deliver — exactly the overload signal the governor watches.
            # Unless the governor itself deferred the request away from the
            # mapper: counting that expiry would let the governor's own
            # deferrals keep its window depressed (a self-reinforcing
            # shedding loop that never re-opens).
            if not (request.deferred_by_governor and request.attempts == 0):
                self._observe(request, False)
            self._record(now_ns, request, outcome)
        if self.governor is not None and self.governor.enabled:
            ready = self._govern(now_ns, ready, outcome)
        if not ready:
            outcome.drain_wall_s += time.perf_counter() - drain_started
            return

        partition = self.manager.partition
        running = {app.name for app in self.manager.running_applications}
        claimed: set[str] = set()
        lane_jobs: dict[str, list[_RegionJob]] = {}
        job_of: dict[int, _RegionJob | _MultiRegionJob] = {}
        for request in ready:
            name = request.application
            region = (
                partition.region(request.lane)
                if partition is not None and request.lane != GLOBAL_LANE
                else None
            )
            if region is None or name in running or name in claimed:
                # Global-lane work and duplicate names stay serialized: the
                # multi-region lane (spanning pins) or the serial phase
                # applies them in arrival order.
                continue
            claimed.add(name)
            job = _RegionJob(request, region, trace=self._job_trace(request))
            lane_jobs.setdefault(request.lane, []).append(job)
            job_of[request.ticket] = job

        self.executor.execute(lane_jobs, self.manager.pipeline)

        failed: list[_RegionJob | _MultiRegionJob] = [
            job
            for lane in sorted(lane_jobs)
            for job in lane_jobs[lane]
            if job.error is not None
        ]
        if failed:
            self._unwind_failed_drain(now_ns, ready, job_of, outcome)
            raise failed[0].error

        # Multi-region lane: spanning requests plan over budgeted corridors
        # under a lock subset, after the workers joined, before the global
        # fallback.  Claiming follows arrival order like everything else.
        multi_jobs = self._claim_multi_region_jobs(ready, running, claimed, job_of)
        if multi_jobs:
            self._run_multi_region_lane(multi_jobs)
            failed = [job for job in multi_jobs if job.error is not None]
            if failed:
                self._unwind_failed_drain(now_ns, ready, job_of, outcome)
                raise failed[0].error

        # Finalisation and the serial phase, both in arrival order.
        serial_phase: list[QueuedRequest] = []
        planner_rejected: set[int] = set()
        for request in ready:
            job = job_of.get(request.ticket)
            if job is not None and job.decision is not None and job.decision.admitted:
                lane = (
                    MULTI_REGION_LANE
                    if isinstance(job, _MultiRegionJob)
                    else request.lane
                )
                self.manager.adopt_decision(request.als, job.decision, time_ns=now_ns)
                self.queue.finalize(request, job.decision, now_ns=now_ns)
                if request.status is not RequestStatus.CANCELLED:
                    # A raced cancellation rolled the admission back; an
                    # admission that never stood must not feed the window.
                    self._observe(request, True)
                self._record(now_ns, request, outcome, lane=lane)
            else:
                # In-region rejections retry with their cross-region
                # fallback and planner rejections with the unrestricted
                # global mapping; both join the serial pass.  The failed
                # attempt still cost mapper time and a pipeline trip —
                # account both, or the sharded configurations would
                # under-report their real per-admission work.
                if job is not None and job.decision is not None:
                    outcome.mapping_runtime_s += job.decision.mapping_runtime_s
                    request.attempts += 1
                    if isinstance(job, _MultiRegionJob):
                        planner_rejected.add(request.ticket)
                serial_phase.append(request)
        for request in serial_phase:
            decision = self.manager.admit(
                request.als,
                library=request.library,
                time_ns=now_ns,
                # The planner already rejected these this drain; it is
                # deterministic, so re-running it could only repeat itself.
                interregion=request.ticket not in planner_rejected,
                trace=self._job_trace(request),
            )
            self.queue.finalize(request, decision, now_ns=now_ns)
            if request.status is not RequestStatus.CANCELLED:
                self._observe(request, decision.admitted)
            # A spanning request the multi-region lane could not claim
            # (duplicate name in the drain) may still be admitted by the
            # planner stage inside the full pipeline — credit its lane.
            settled_lane = (
                MULTI_REGION_LANE
                if decision.admitted
                and getattr(decision, "origin", "pipeline") == "interregion"
                else GLOBAL_LANE
            )
            self._record(now_ns, request, outcome, lane=settled_lane)
            if not request.status.is_final:
                outcome.telemetry.lane(request.lane).parked += 1
        outcome.drain_wall_s += time.perf_counter() - drain_started

    def _observe(self, request: QueuedRequest, admitted: bool) -> None:
        """Feed one pipeline decision (or deadline expiry) to the governor.

        Observation happens at *decision* time — a parked rejection counts
        the moment it happens, not when the run's final flush settles it —
        so the governor's window follows the live run.  Cancellations and
        the governor's own sheds are never observed: neither measures the
        platform's ability to admit.
        """
        if self.governor is not None:
            self.governor.observe(request.priority, admitted)

    def _govern(
        self,
        now_ns: float,
        ready: list[QueuedRequest],
        outcome: EngineOutcome,
    ) -> list[QueuedRequest]:
        """Gate claimed requests through the load-shedding governor.

        Runs strictly before any mapping work: shed requests settle
        terminally, deferred requests go back to pending (a cancellation
        that raced the claim settles ``CANCELLED`` instead — the queue
        arbitrates, exactly once).  Returns the requests that proceed to
        the region lanes.
        """
        governor = self.governor
        tracer = self.tracer
        proceed: list[QueuedRequest] = []
        deferred: list[QueuedRequest] = []
        for request in ready:
            root = self._roots.get(request.ticket) if tracer.enabled else None
            check_start_ns = time.perf_counter_ns() if root is not None else 0
            verdict = governor.assess(request.priority)
            if root is not None:
                tracer.record(
                    "governor_check",
                    root.context(),
                    check_start_ns,
                    time.perf_counter_ns(),
                    attrs={"verdict": verdict},
                )
            if verdict == GovernorDecision.SHED:
                self.queue.shed(
                    request,
                    now_ns=now_ns,
                    reason=(
                        "shed by load governor (admission rate "
                        f"{governor.admission_rate():.2f} below floor "
                        f"{governor.config.rate_floor:.2f})"
                    ),
                )
                self._record(now_ns, request, outcome)
            elif verdict == GovernorDecision.DEFER:
                deferred.append(request)
            else:
                proceed.append(request)
        if deferred:
            for request in self.queue.defer(deferred, now_ns=now_ns):
                self._record(now_ns, request, outcome)
        return proceed

    def _claim_multi_region_jobs(
        self,
        ready: list[QueuedRequest],
        running: set[str],
        claimed: set[str],
        job_of: dict[int, "_RegionJob | _MultiRegionJob"],
    ) -> list[_MultiRegionJob]:
        """Claim global-lane requests whose pinned tiles span >= 2 regions."""
        planner = self.manager.pipeline.interregion
        if planner is None or self.manager.partition is None:
            return []
        jobs: list[_MultiRegionJob] = []
        for request in ready:
            if request.ticket in job_of:
                continue
            name = request.application
            if name in running or name in claimed:
                continue
            scope = planner.scope_for(request.als)
            if scope is None:
                continue
            claimed.add(name)
            job = _MultiRegionJob(request, scope, trace=self._job_trace(request))
            job_of[request.ticket] = job
            jobs.append(job)
        return jobs

    def _run_multi_region_lane(self, jobs: list[_MultiRegionJob]) -> None:
        """Run the planner jobs under lock subsets (ownership guard armed)."""
        if self._coordinator is None:
            locks = getattr(self.executor, "locks", None)
            self._coordinator = InterRegionCoordinator(
                self.manager.partition,
                locks=locks if isinstance(locks, RegionLocks) else None,
            )
        state = self.manager.pipeline.state
        guard = getattr(self.executor, "guard", None)
        previous_guard = state.ownership_guard
        if guard is not None:
            # The planner must prove it only touches its lock subset.
            state.ownership_guard = guard
        try:
            for job in jobs:
                plan_start_ns = (
                    time.perf_counter_ns()
                    if self.tracer.enabled and job.trace is not None
                    else 0
                )
                job.run(self.manager.pipeline, self._coordinator)
                if plan_start_ns:
                    self.tracer.record(
                        "interregion_plan",
                        job.trace,
                        plan_start_ns,
                        time.perf_counter_ns(),
                        attrs={
                            "admitted": job.decision is not None
                            and job.decision.admitted
                        },
                    )
        finally:
            state.ownership_guard = previous_guard

    def _unwind_failed_drain(
        self,
        now_ns: float,
        ready: list[QueuedRequest],
        job_of: dict[int, "_RegionJob | _MultiRegionJob"],
        outcome: EngineOutcome,
    ) -> None:
        """Settle what the lanes decided, requeue the rest, before re-raising."""
        requeue: list[QueuedRequest] = []
        for request in ready:
            job = job_of.get(request.ticket)
            if job is not None and job.decision is not None and job.decision.admitted:
                lane = (
                    MULTI_REGION_LANE
                    if isinstance(job, _MultiRegionJob)
                    else request.lane
                )
                self.manager.adopt_decision(request.als, job.decision, time_ns=now_ns)
                self.queue.finalize(request, job.decision, now_ns=now_ns)
                self._record(now_ns, request, outcome, lane=lane)
            else:
                requeue.append(request)
        self.queue.requeue(requeue)

    def _record(
        self,
        time_ns: float,
        request: QueuedRequest,
        outcome: EngineOutcome,
        lane: str | None = None,
    ) -> None:
        """Append a settled request to the outcome (parked requests stay open).

        ``lane`` names the lane that settled the request for the telemetry
        counters; it defaults to the request's home lane (expiries, end-of-
        workload flushes).
        """
        if not request.status.is_final:
            return  # parked rejection: still pending, not an outcome yet
        root = self._roots.pop(request.ticket, None)
        if root is not None:
            self._queue_waited.discard(request.ticket)
            root.attrs["status"] = request.status.value
            record = self.tracer.end(root)
            if self.metrics is not None:
                self.metrics.observe(
                    "engine.request_latency_s", record.duration_ns / 1e9
                )
        outcome.telemetry.count(lane if lane is not None else request.lane, request.status)
        outcome.records.append(
            EngineRecord(
                time_ns=time_ns,
                ticket=request.ticket,
                application=request.application,
                status=request.status,
                reason=request.reason,
                priority=request.priority,
            )
        )
        decision = request.decision
        if decision is not None:
            outcome.mapping_runtime_s += decision.mapping_runtime_s
        if request.status is RequestStatus.ADMITTED and decision is not None:
            assert decision.result is not None
            outcome.energy.start(
                request.application,
                time_ns,
                decision.result.energy_nj_per_iteration,
                request.als.period_ns,
            )
