"""Run-time resource management on top of the spatial mapper.

The paper places the spatial mapper inside a run-time resource manager: the
mapping is performed "always when a new streaming application is started"
(section 1.3) against the *current* allocation state.  This package provides
that surrounding machinery: an admission-controlling
:class:`~repro.runtime.manager.RuntimeResourceManager`, scenario descriptions
(sequences of application start/stop events) and accounting of energy and
utilisation over a scenario, which the run-time-versus-design-time benchmark
builds on.
"""

from repro.runtime.pipeline import AdmissionDecision, AdmissionPipeline
from repro.runtime.admission_control import (
    GovernorConfig,
    GovernorDecision,
    LoadSheddingGovernor,
)
from repro.runtime.manager import (
    BatchAdmissionOutcome,
    RuntimeResourceManager,
    RunningApplication,
)
from repro.runtime.queue import AdmissionQueue, QueuedRequest, RequestStatus
from repro.runtime.events import ScenarioEvent, StartEvent, StopEvent
from repro.runtime.engine import (
    MULTI_REGION_LANE,
    EngineOutcome,
    EngineRecord,
    EngineTelemetry,
    LaneCounters,
    ProcessRegionExecutor,
    SerialRegionExecutor,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.runtime.scenario import Scenario, ScenarioOutcome, run_scenario
from repro.runtime.accounting import EnergyAccount

__all__ = [
    "AdmissionDecision",
    "AdmissionPipeline",
    "GovernorConfig",
    "GovernorDecision",
    "LoadSheddingGovernor",
    "AdmissionQueue",
    "QueuedRequest",
    "RequestStatus",
    "BatchAdmissionOutcome",
    "RuntimeResourceManager",
    "RunningApplication",
    "ScenarioEvent",
    "StartEvent",
    "StopEvent",
    "WorkloadEngine",
    "EngineOutcome",
    "EngineRecord",
    "EngineTelemetry",
    "LaneCounters",
    "MULTI_REGION_LANE",
    "ProcessRegionExecutor",
    "SerialRegionExecutor",
    "ThreadedRegionExecutor",
    "Scenario",
    "ScenarioOutcome",
    "run_scenario",
    "EnergyAccount",
]
