"""Worker-side protocol of the process-parallel region drain.

The GIL caps what :class:`~repro.runtime.engine.ThreadedRegionExecutor` can
win: CPython threads interleave the pure-Python mapper instead of running
it.  This module is the other half of
:class:`~repro.runtime.engine.ProcessRegionExecutor` — the part that runs
*inside* a drain worker process and the framing both sides share:

* **snapshot out** — the engine extracts a
  :class:`~repro.platform.state.RegionSnapshot` of each lane's region and
  ships it with the lane's requests as one :class:`LaneDispatch`;
* **decide locally** — the worker rebuilds a region-local
  :class:`~repro.platform.state.PlatformState` from the snapshot and runs
  the *ordinary* ``pipeline.decide(candidates=(region,))`` against it, job
  by job, committing locally so later jobs in the lane see earlier ones;
* **delta in** — for every admitted job the worker ships back the commit's
  :class:`~repro.platform.state.AllocationDelta` (exactly the records
  :meth:`~repro.runtime.pipeline.AdmissionPipeline.allocation_records`
  would write) plus a transport-safe copy of the decision, tagged with the
  region fingerprint the decision was based on.  The engine folds each
  delta only if that base fingerprint still matches; anything stale is
  re-decided on the engine process, never silently committed.

All frames cross the pipe as explicit pickle bytes (``send_bytes`` /
``recv_bytes``), so both sides can meter the traffic — the per-worker
``snapshot_bytes`` / ``delta_bytes`` telemetry is measured on the real
payloads, not estimated.

Worker-side determinism notes:

* The worker's pipeline is rebuilt from :class:`WorkerSettings` (platform,
  partition, library, mapper config, scorer policy) — all plain picklable
  data.  A custom ``mapper_factory`` cannot cross the boundary; the
  executor refuses to start workers for one.
* The worker's scorer gets a **dummy** rejection memory whenever the
  engine's scorer has one: with explicit candidates the scorer never
  scores, but ``decide`` still computes ``decision.shape`` through it, and
  the engine-side :meth:`~repro.runtime.pipeline.AdmissionPipeline.note_feedback`
  needs that shape to keep adaptive runs decision-identical to the serial
  executor.  The worker memory itself is never read.
* The :class:`~repro.spatialmapper.cache.MapperCache` pins ALS/library
  *object identity*; unpickling would break that, so the worker interns
  unpickled objects by payload digest — a re-dispatched request (parked
  retries, recurring fingerprints) reuses the same objects and the
  region-scoped warm state keeps paying across drains.
"""

from __future__ import annotations

import hashlib
import pickle
import time
import traceback
from dataclasses import dataclass

from repro.appmodel.library import ImplementationLibrary
from repro.platform.platform import Platform
from repro.platform.regions import RegionPartition
from repro.platform.state import AllocationDelta, PlatformState, RegionSnapshot
from repro.runtime.pipeline import AdmissionPipeline
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.region_score import (
    RegionScorePolicy,
    RegionScorer,
    RejectionMemory,
)

#: Pickle protocol of every frame (highest shared by 3.11/3.12).
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Sentinel frame asking a worker to exit its receive loop.
SHUTDOWN_FRAME = b""

#: Interned-object table bound: far above any benchmark's working set, but
#: a week-long run with ever-fresh applications must not grow unbounded.
INTERN_LIMIT = 4096


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerSettings:
    """Everything a drain worker needs to rebuild the admission pipeline.

    Plain picklable data only — this is the worker's whole world.  The
    scorer travels as its (frozen, picklable) policy plus a flag for
    whether the engine side keeps a rejection memory; see the module
    docstring for why the worker then builds a dummy one.
    """

    platform: Platform
    partition: RegionPartition
    library: ImplementationLibrary
    config: MapperConfig
    require_feasible: bool
    cache_size: int
    scorer_policy: RegionScorePolicy | None
    scorer_has_feedback: bool


@dataclass(frozen=True)
class JobSpec:
    """One request of a lane dispatch, with its inputs as pickle payloads.

    The ALS/library travel as nested pickle bytes (not objects) so the
    worker can intern them by digest — object identity is what keys the
    mapper cache's pinning.
    """

    ticket: int
    als_blob: bytes
    library_blob: bytes | None


@dataclass(frozen=True)
class LaneDispatch:
    """One lane's worth of drain work: the region snapshot plus its jobs."""

    lane: str
    snapshot: RegionSnapshot
    jobs: tuple[JobSpec, ...]


@dataclass(frozen=True)
class JobResponse:
    """What the worker decided for one job.

    ``base_fingerprint`` is the region fingerprint of the worker's local
    state *immediately before* this job was decided (so within a lane the
    fingerprints chain: job *i*'s base includes jobs ``0..i-1``'s local
    commits).  The engine folds ``delta_blob`` only while its own region
    fingerprint equals this base — the stale-snapshot rule.
    """

    ticket: int
    base_fingerprint: tuple
    decision_blob: bytes | None
    delta_blob: bytes | None
    mapper_invocations: int
    wall_s: float
    error: str | None = None


@dataclass(frozen=True)
class LaneResult:
    """A worker's answer to one :class:`LaneDispatch` (responses in job order).

    A lane aborts on its first error, mirroring the serial executor's
    discipline: jobs after the failed one get no response.
    """

    lane: str
    responses: tuple[JobResponse, ...]


def dump_frame(payload) -> bytes:
    """Pickle one frame for the pipe."""
    return pickle.dumps(payload, protocol=PICKLE_PROTOCOL)


def load_frame(blob: bytes):
    """Unpickle one frame from the pipe."""
    return pickle.loads(blob)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def build_worker_pipeline(settings: WorkerSettings) -> AdmissionPipeline:
    """The worker's private pipeline, equivalent to the engine's for
    region-restricted decisions (explicit candidates bypass stage 2, so
    fallback/attempt knobs are irrelevant here)."""
    scorer = None
    if settings.scorer_policy is not None:
        scorer = RegionScorer(
            settings.scorer_policy,
            RejectionMemory() if settings.scorer_has_feedback else None,
        )
    return AdmissionPipeline(
        settings.platform,
        settings.library,
        settings.config,
        state=PlatformState(settings.platform),
        partition=settings.partition,
        require_feasible=settings.require_feasible,
        cache_size=settings.cache_size,
        region_scorer=scorer,
    )


def _intern(table: dict[bytes, object], blob: bytes):
    """Unpickle ``blob``, reusing the previously unpickled object for equal
    payloads (digest-keyed) so the mapper cache's identity pinning holds
    across repeated dispatches of the same request."""
    digest = hashlib.sha1(blob).digest()
    cached = table.get(digest)
    if cached is None:
        if len(table) >= INTERN_LIMIT:
            table.clear()
        cached = table[digest] = pickle.loads(blob)
    return cached


def decide_lane(
    pipeline: AdmissionPipeline,
    dispatch: LaneDispatch,
    interned: dict[bytes, object],
) -> LaneResult:
    """Decide one lane dispatch against a state rebuilt from its snapshot."""
    region = pipeline.partition.region(dispatch.lane)
    state = dispatch.snapshot.build_state(pipeline.platform)
    pipeline.state = state
    responses: list[JobResponse] = []
    for job in dispatch.jobs:
        als = _intern(interned, job.als_blob)
        library = (
            _intern(interned, job.library_blob)
            if job.library_blob is not None
            else None
        )
        base = region.fingerprint(state)
        invocations_before = pipeline.mapper_invocations
        started = time.perf_counter()
        try:
            decision = pipeline.decide(als, library, candidates=(region,))
        except Exception:
            responses.append(
                JobResponse(
                    ticket=job.ticket,
                    base_fingerprint=base,
                    decision_blob=None,
                    delta_blob=None,
                    mapper_invocations=pipeline.mapper_invocations - invocations_before,
                    wall_s=time.perf_counter() - started,
                    error=traceback.format_exc(),
                )
            )
            break  # serial lane-abort discipline: skip the rest of the lane
        wall_s = time.perf_counter() - started
        delta_blob = None
        if decision.admitted:
            processes, links = pipeline.allocation_records(
                decision.application, decision.result.mapping
            )
            delta_blob = dump_frame(
                AllocationDelta(decision.application, processes, links)
            )
        responses.append(
            JobResponse(
                ticket=job.ticket,
                base_fingerprint=base,
                decision_blob=dump_frame(decision.as_transport()),
                delta_blob=delta_blob,
                mapper_invocations=pipeline.mapper_invocations - invocations_before,
                wall_s=wall_s,
            )
        )
    return LaneResult(lane=dispatch.lane, responses=tuple(responses))


def drain_worker(conn, settings_blob: bytes) -> None:
    """Entry point of one drain worker process.

    Receives :class:`LaneDispatch` frames until the shutdown sentinel (or
    EOF, should the engine die first) and answers each with a
    :class:`LaneResult` frame.  The pipeline — and with it the mapper
    cache's region-scoped warm state and the interning table — persists
    across dispatches for the worker's lifetime.
    """
    settings: WorkerSettings = load_frame(settings_blob)
    pipeline = build_worker_pipeline(settings)
    interned: dict[bytes, object] = {}
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            if frame == SHUTDOWN_FRAME:
                break
            dispatch: LaneDispatch = load_frame(frame)
            conn.send_bytes(dump_frame(decide_lane(pipeline, dispatch, interned)))
    finally:
        conn.close()
