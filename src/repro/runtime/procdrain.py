"""Worker-side protocol of the process-parallel region drain.

The GIL caps what :class:`~repro.runtime.engine.ThreadedRegionExecutor` can
win: CPython threads interleave the pure-Python mapper instead of running
it.  This module is the other half of
:class:`~repro.runtime.engine.ProcessRegionExecutor` — the part that runs
*inside* a drain worker process and the framing both sides share.

Workers are **stateful**: each keeps the region-local
:class:`~repro.platform.state.PlatformState` it last rebuilt resident
between drains, keyed by lane.  The engine therefore has two per-lane
dispatch frames:

* :class:`SnapshotDispatch` — the bootstrap (and fallback) frame: a full
  :class:`~repro.platform.state.RegionSnapshot` of the lane's region.  The
  worker rebuilds the region state from it and replaces its resident.
* :class:`DeltaDispatch` — the steady-state frame: the ordered chain of
  :class:`~repro.platform.state.RegionDeltaOp` committed on the region
  since the worker's last acknowledged (seq, fingerprint-digest)
  watermark.  The worker verifies its resident fingerprint digest
  (:func:`~repro.platform.state.fingerprint_digest` — fingerprints cross
  the wire only as 20-byte digests; the raw tuples grow with region
  occupancy) against the dispatch base,
  replays the chain (each op re-validating seq continuity and its target
  fingerprint), and decides against the updated resident.  Any mismatch —
  missing resident, wrong base, broken chain — yields a *resync* answer
  instead of decisions; the engine then re-dispatches a counted full
  snapshot, never silently.

Per drain, every lane routed to one worker is batched into a single
:class:`WorkerDispatch` frame (one ``send_bytes`` round-trip per worker);
the worker answers with one frame holding every lane's
:class:`LaneResult`.  Each lane dispatch is nested as its own pickle blob
inside the batch, so both sides meter exact per-lane byte counts on real
payloads, not estimates.

Decisions work exactly as before: the worker runs the ordinary
``pipeline.decide(candidates=(region,))`` against its resident state, job
by job, committing locally so later jobs in the lane see earlier ones, and
ships back per admitted job the commit's
:class:`~repro.platform.state.AllocationDelta` tagged with the digest of
the region fingerprint the decision was based on.  The engine folds each
delta only if that base digest still matches; anything stale is re-decided on
the engine process.  The lane result carries the digest of the
resident's final fingerprint — the worker's acknowledgement the engine
turns into the next watermark.

Worker-side determinism notes:

* The worker's pipeline is rebuilt from :class:`WorkerSettings` (platform,
  partition, library, mapper config, scorer policy) — all plain picklable
  data.  A custom ``mapper_factory`` cannot cross the boundary; the
  executor refuses to start workers for one.
* The worker's scorer gets a **dummy** rejection memory whenever the
  engine's scorer has one: with explicit candidates the scorer never
  scores, but ``decide`` still computes ``decision.shape`` through it, and
  the engine-side :meth:`~repro.runtime.pipeline.AdmissionPipeline.note_feedback`
  needs that shape to keep adaptive runs decision-identical to the serial
  executor.  The worker memory itself is never read.
* The :class:`~repro.spatialmapper.cache.MapperCache` pins ALS/library
  *object identity*; unpickling would break that, so the worker interns
  unpickled objects by payload digest.  Digests are computed once on the
  engine side and watermarked per worker: a blob already shipped travels
  as its digest alone (the worker never re-hashes anything), and the
  engine orders an intern-table clear (``WorkerDispatch.clear_interned``)
  when its shipped-digest window fills, so both sides stay in lockstep.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import PlatformError
from repro.obs import MetricsRegistry, ObsConfig, SpanRecord, TraceContext, Tracer
from repro.platform.platform import Platform
from repro.platform.regions import RegionPartition
from repro.platform.state import (
    AllocationDelta,
    PlatformState,
    RegionDeltaOp,
    RegionSnapshot,
    fingerprint_digest,
)
from repro.runtime.pipeline import AdmissionPipeline
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.region_score import (
    RegionScorePolicy,
    RegionScorer,
    RejectionMemory,
)

#: Pickle protocol of every frame (highest shared by 3.11/3.12).
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Sentinel frame asking a worker to exit its receive loop.
SHUTDOWN_FRAME = b""

#: Interned-object table bound: far above any benchmark's working set, but
#: a week-long run with ever-fresh applications must not grow unbounded.
#: The *engine* enforces it — when its per-worker shipped-digest window
#: reaches the limit it clears the window and sets
#: :attr:`WorkerDispatch.clear_interned`, so the worker table is wiped at a
#: frame boundary and can never disagree with the engine about what is
#: interned.
INTERN_LIMIT = 4096


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerSettings:
    """Everything a drain worker needs to rebuild the admission pipeline.

    Plain picklable data only — this is the worker's whole world.  The
    scorer travels as its (frozen, picklable) policy plus a flag for
    whether the engine side keeps a rejection memory; see the module
    docstring for why the worker then builds a dummy one.  ``config``
    ships the full :class:`~repro.spatialmapper.config.MapperConfig`, so
    worker-side mappers are rescue-enabled exactly when the engine's are
    (rescue seeds derive from request fingerprints, keeping worker and
    serial-reference decisions bit-identical).
    """

    platform: Platform
    partition: RegionPartition
    library: ImplementationLibrary
    config: MapperConfig
    require_feasible: bool
    cache_size: int
    scorer_policy: RegionScorePolicy | None
    scorer_has_feedback: bool
    #: Observability config of the run (``None`` = obs off).  Workers build
    #: their own :class:`~repro.obs.trace.Tracer` from it — span ids are
    #: namespaced by process name, so engine and worker spans never collide.
    obs: ObsConfig | None = None


@dataclass(frozen=True)
class JobSpec:
    """One request of a lane dispatch, with its inputs as digested payloads.

    The ALS/library travel as nested pickle bytes keyed by an engine-side
    digest: the worker interns the unpickled object under the digest —
    object identity is what keys the mapper cache's pinning — and a blob
    the engine already shipped to this worker travels as ``None`` (digest
    only), which is what keeps steady-state job specs tiny.
    """

    ticket: int
    als_digest: bytes
    als_blob: bytes | None
    library_digest: bytes | None = None
    library_blob: bytes | None = None
    #: Trace context of a sampled request, parented on the engine's
    #: ``dispatch`` span; ``None`` for unsampled requests / obs off.  The
    #: worker's ``decide`` span tree hangs off it, which is what stitches
    #: engine dispatch → worker decide → engine fold into one tree.
    trace: TraceContext | None = None


@dataclass(frozen=True)
class SnapshotDispatch:
    """Bootstrap/fallback frame: one lane's full region snapshot plus jobs."""

    lane: str
    snapshot: RegionSnapshot
    jobs: tuple[JobSpec, ...]


@dataclass(frozen=True)
class DeltaDispatch:
    """Steady-state frame: the delta-op chain since the worker's watermark.

    ``base_seq`` / ``base_fingerprint`` name the watermark the chain
    starts from: the worker's resident state's fingerprint must digest to
    ``base_fingerprint``, and ``ops`` (possibly empty) are the journal ops
    with consecutive seqs ``base_seq+1 ..``.  Replay validation is the
    worker's job — a resident/base mismatch or a broken chain answers with
    a resync instead of decisions.
    """

    lane: str
    base_seq: int
    base_fingerprint: bytes
    ops: tuple[RegionDeltaOp, ...]
    jobs: tuple[JobSpec, ...]


@dataclass(frozen=True)
class WorkerDispatch:
    """One drain's batch for one worker: every lane frame in one round-trip.

    ``frames`` holds each lane's :class:`SnapshotDispatch` /
    :class:`DeltaDispatch` as its own pickle blob so per-lane bytes are
    metered exactly; ``clear_interned`` orders the worker to wipe its
    intern table *before* processing the frames (engine-driven eviction —
    see :data:`INTERN_LIMIT`).
    """

    frames: tuple[bytes, ...]
    clear_interned: bool = False


@dataclass(frozen=True)
class JobResponse:
    """What the worker decided for one job.

    ``base_fingerprint`` is the digest of the region fingerprint of the
    worker's local state *immediately before* this job was decided (so
    within a lane the digests chain: job *i*'s base includes jobs
    ``0..i-1``'s local commits).  The engine folds ``delta_blob`` only
    while its own region fingerprint digests to this base — the
    stale-snapshot rule.
    """

    ticket: int
    base_fingerprint: bytes
    decision_blob: bytes | None
    delta_blob: bytes | None
    mapper_invocations: int
    wall_s: float
    error: str | None = None


@dataclass(frozen=True)
class LaneResult:
    """A worker's answer to one lane dispatch (responses in job order).

    A lane aborts on its first error, mirroring the serial executor's
    discipline: jobs after the failed one get no response.
    ``final_fingerprint`` is the digest of the resident state's region
    fingerprint after the lane's local commits — the acknowledgement the engine records as
    this worker's next delta watermark.  ``resync`` (a reason string)
    means the worker could not honour a :class:`DeltaDispatch` and decided
    nothing; the engine must re-dispatch a full snapshot.
    """

    lane: str
    responses: tuple[JobResponse, ...]
    final_fingerprint: bytes | None = None
    resync: str | None = None
    #: Worker-clock span records of this lane's decides (empty when obs is
    #: off or nothing was sampled).  The engine re-anchors them onto its own
    #: timeline before adopting them — see :func:`repro.obs.trace.reanchor_spans`.
    spans: tuple[SpanRecord, ...] = ()
    #: Delta of the worker pipeline's step-4 analysis counters over this
    #: lane (``None`` only for resync answers, which decide nothing).
    #: Shipped *unconditionally* — engine telemetry must account worker-side
    #: analysis work with observability off too.
    analysis: dict[str, int] | None = None
    #: Snapshot of the worker's per-lane metrics registry (obs on) — folded
    #: into the engine's run registry like any other delta.
    metrics: dict | None = None


def dump_frame(payload) -> bytes:
    """Pickle one frame for the pipe."""
    return pickle.dumps(payload, protocol=PICKLE_PROTOCOL)


def load_frame(blob: bytes):
    """Unpickle one frame from the pipe."""
    return pickle.loads(blob)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
def build_worker_pipeline(settings: WorkerSettings) -> AdmissionPipeline:
    """The worker's private pipeline, equivalent to the engine's for
    region-restricted decisions (explicit candidates bypass stage 2, so
    fallback/attempt knobs are irrelevant here)."""
    scorer = None
    if settings.scorer_policy is not None:
        scorer = RegionScorer(
            settings.scorer_policy,
            RejectionMemory() if settings.scorer_has_feedback else None,
        )
    return AdmissionPipeline(
        settings.platform,
        settings.library,
        settings.config,
        state=PlatformState(settings.platform),
        partition=settings.partition,
        require_feasible=settings.require_feasible,
        cache_size=settings.cache_size,
        region_scorer=scorer,
    )


def _intern(table: dict[bytes, object], digest: bytes, blob: bytes | None):
    """The interned object for an engine-computed digest.

    The blob is unpickled at most once per digest; a ``None`` blob asserts
    the engine already shipped it to this worker — finding the digest
    missing then is a protocol violation (the engine clears the worker
    table only via :attr:`WorkerDispatch.clear_interned`, in lockstep with
    its own shipped-digest window), surfaced as a job error.
    """
    cached = table.get(digest)
    if cached is None:
        if blob is None:
            raise PlatformError(
                "dispatch referenced an interned payload this worker never "
                "received (digest watermark out of sync)"
            )
        cached = table[digest] = pickle.loads(blob)
    return cached


def decide_jobs(
    pipeline: AdmissionPipeline,
    region,
    jobs: tuple[JobSpec, ...],
    interned: dict[bytes, object],
) -> tuple[JobResponse, ...]:
    """Decide a lane's jobs in order against ``pipeline.state`` (the resident).

    Commits land in the resident state, so later jobs see earlier ones —
    the same left-fold the engine performs when it folds the deltas back.
    """
    state = pipeline.state
    responses: list[JobResponse] = []
    for job in jobs:
        base = fingerprint_digest(region.fingerprint(state))
        invocations_before = pipeline.mapper_invocations
        started = time.perf_counter()
        try:
            als = _intern(interned, job.als_digest, job.als_blob)
            library = (
                _intern(interned, job.library_digest, job.library_blob)
                if job.library_digest is not None
                else None
            )
            decision = pipeline.decide(
                als, library, candidates=(region,), trace=job.trace
            )
        except Exception:
            responses.append(
                JobResponse(
                    ticket=job.ticket,
                    base_fingerprint=base,
                    decision_blob=None,
                    delta_blob=None,
                    mapper_invocations=pipeline.mapper_invocations - invocations_before,
                    wall_s=time.perf_counter() - started,
                    error=traceback.format_exc(),
                )
            )
            break  # serial lane-abort discipline: skip the rest of the lane
        wall_s = time.perf_counter() - started
        delta_blob = None
        if decision.admitted:
            processes, links = pipeline.allocation_records(
                decision.application, decision.result.mapping
            )
            delta_blob = dump_frame(
                AllocationDelta(decision.application, processes, links)
            )
        responses.append(
            JobResponse(
                ticket=job.ticket,
                base_fingerprint=base,
                decision_blob=dump_frame(decision.as_transport()),
                delta_blob=delta_blob,
                mapper_invocations=pipeline.mapper_invocations - invocations_before,
                wall_s=wall_s,
            )
        )
    return tuple(responses)


def handle_lane(
    pipeline: AdmissionPipeline,
    dispatch: SnapshotDispatch | DeltaDispatch,
    interned: dict[bytes, object],
    residents: dict[str, PlatformState],
) -> LaneResult:
    """Serve one lane dispatch against (or rebuilding) the resident state.

    A :class:`SnapshotDispatch` replaces the lane's resident outright; a
    :class:`DeltaDispatch` is honoured only when the resident exists, its
    fingerprint equals the dispatch base, and the op chain replays without
    a gap or fingerprint divergence — otherwise the resident is dropped
    and a resync result (no decisions) is returned.
    """
    # Intern every blob that reached this worker *before* deciding the
    # lane's fate: the engine marks a digest as shipped the moment it
    # assembles the frame, so even a resync answer must retain the payloads
    # — the follow-up snapshot dispatch will reference them by digest only.
    for job in dispatch.jobs:
        if job.als_blob is not None:
            _intern(interned, job.als_digest, job.als_blob)
        if job.library_blob is not None and job.library_digest is not None:
            _intern(interned, job.library_digest, job.library_blob)
    region = pipeline.partition.region(dispatch.lane)
    if isinstance(dispatch, SnapshotDispatch):
        state = dispatch.snapshot.build_state(pipeline.platform)
        residents[dispatch.lane] = state
    else:
        state = residents.get(dispatch.lane)
        if state is None:
            return LaneResult(dispatch.lane, (), resync="no resident state")
        if fingerprint_digest(region.fingerprint(state)) != dispatch.base_fingerprint:
            residents.pop(dispatch.lane, None)
            return LaneResult(
                dispatch.lane, (), resync="resident fingerprint != dispatch base"
            )
        if dispatch.ops:
            try:
                state.replay_region_ops(
                    dispatch.ops,
                    tuple(region.tile_names),
                    tuple(region.link_names),
                    expected_seq=dispatch.base_seq + 1,
                )
            except PlatformError as error:
                residents.pop(dispatch.lane, None)
                return LaneResult(
                    dispatch.lane, (), resync=f"delta replay failed: {error}"
                )
    pipeline.state = state
    if pipeline.metrics is not None:
        # Fresh registry per lane: the snapshot shipped back is exactly this
        # lane's delta, so the engine folds it without double counting.
        pipeline.metrics = MetricsRegistry()
    analysis_before = pipeline.analysis.snapshot()
    responses = decide_jobs(pipeline, region, dispatch.jobs, interned)
    analysis_after = pipeline.analysis.snapshot()
    if pipeline.metrics is not None:
        pipeline.metrics.count("worker.jobs", float(len(responses)))
    return LaneResult(
        lane=dispatch.lane,
        responses=responses,
        final_fingerprint=fingerprint_digest(region.fingerprint(state)),
        spans=tuple(pipeline.tracer.drain()) if pipeline.tracer.enabled else (),
        analysis={
            key: analysis_after[key] - analysis_before[key] for key in analysis_after
        },
        metrics=pipeline.metrics.snapshot() if pipeline.metrics is not None else None,
    )


def drain_worker(conn, settings_blob: bytes) -> None:
    """Entry point of one drain worker process.

    Receives :class:`WorkerDispatch` frames until the shutdown sentinel
    (or EOF, should the engine die first) and answers each with one frame
    holding a :class:`LaneResult` per nested lane dispatch, in dispatch
    order.  The pipeline — and with it the mapper cache's region-scoped
    warm state, the interning table and the resident region states —
    persists across dispatches for the worker's lifetime.
    """
    settings: WorkerSettings = load_frame(settings_blob)
    pipeline = build_worker_pipeline(settings)
    if settings.obs is not None and settings.obs.enabled:
        pipeline.tracer = Tracer(
            settings.obs, process=multiprocessing.current_process().name
        )
        if settings.obs.metrics:
            # Replaced with a fresh per-lane registry in ``handle_lane``;
            # non-None is the switch.
            pipeline.metrics = MetricsRegistry()
    interned: dict[bytes, object] = {}
    residents: dict[str, PlatformState] = {}
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            if frame == SHUTDOWN_FRAME:
                break
            dispatch: WorkerDispatch = load_frame(frame)
            if dispatch.clear_interned:
                interned.clear()
            results = tuple(
                handle_lane(pipeline, load_frame(blob), interned, residents)
                for blob in dispatch.frames
            )
            conn.send_bytes(dump_frame(results))
    finally:
        conn.close()
