"""Scenario player: drive a resource manager through a sequence of events."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import AdmissionError
from repro.runtime.accounting import EnergyAccount
from repro.runtime.events import ScenarioEvent, StartEvent, StopEvent
from repro.runtime.manager import RuntimeResourceManager


@dataclass
class Scenario:
    """A named, time-ordered sequence of start/stop events."""

    name: str
    events: list[ScenarioEvent] = field(default_factory=list)
    duration_ns: float | None = None

    def add(self, event: ScenarioEvent) -> "Scenario":
        """Append an event (events are sorted by time when the scenario runs)."""
        self.events.append(event)
        return self

    def sorted_events(self) -> list[ScenarioEvent]:
        """Events in non-decreasing time order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.time_ns)

    def end_time_ns(self) -> float:
        """The scenario horizon: explicit duration or the last event time."""
        if self.duration_ns is not None:
            return self.duration_ns
        if not self.events:
            return 0.0
        return max(e.time_ns for e in self.events)


@dataclass
class ScenarioOutcome:
    """What happened when a scenario was played against a resource manager."""

    scenario: str
    admitted: list[str] = field(default_factory=list)
    rejected: list[tuple[str, str]] = field(default_factory=list)
    energy: EnergyAccount = field(default_factory=EnergyAccount)
    end_time_ns: float = 0.0

    @property
    def admission_rate(self) -> float:
        """Fraction of start requests that were admitted."""
        total = len(self.admitted) + len(self.rejected)
        return len(self.admitted) / total if total else 0.0

    @property
    def total_energy_nj(self) -> float:
        """Total energy consumed by admitted applications over the scenario."""
        return self.energy.total_energy_nj


def run_scenario(manager: RuntimeResourceManager, scenario: Scenario) -> ScenarioOutcome:
    """Play a scenario against a resource manager and account energy/admissions."""
    outcome = ScenarioOutcome(scenario=scenario.name)
    for event in scenario.sorted_events():
        if isinstance(event, StartEvent):
            try:
                result = manager.start(event.als, library=event.library, time_ns=event.time_ns)
            except AdmissionError as error:
                outcome.rejected.append((event.application, str(error)))
                continue
            outcome.admitted.append(event.application)
            outcome.energy.start(
                event.application,
                event.time_ns,
                result.energy_nj_per_iteration,
                event.als.period_ns,
            )
        elif isinstance(event, StopEvent):
            if manager.is_running(event.application):
                manager.stop(event.application)
                outcome.energy.stop(event.application, event.time_ns)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown scenario event type {type(event)!r}")
    outcome.end_time_ns = scenario.end_time_ns()
    outcome.energy.finish(outcome.end_time_ns)
    return outcome
