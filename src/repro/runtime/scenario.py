"""Scenario player: drive a resource manager through a sequence of events.

Since the workload engine landed, :class:`Scenario` is the *description*
(a named, time-ordered bag of events) and :func:`run_scenario` is a thin
adapter: it replays the scenario on a
:class:`~repro.runtime.engine.WorkloadEngine` in ``"immediate"`` drain mode
— one event at a time, exactly the legacy player's semantics, pinned
decision-for-decision by a differential test — and repackages the engine's
outcome in the historical :class:`ScenarioOutcome` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.accounting import EnergyAccount
from repro.runtime.engine import WorkloadEngine
from repro.runtime.events import ScenarioEvent
from repro.runtime.manager import RuntimeResourceManager


@dataclass
class Scenario:
    """A named, time-ordered sequence of start/stop events."""

    name: str
    events: list[ScenarioEvent] = field(default_factory=list)
    duration_ns: float | None = None

    def add(self, event: ScenarioEvent) -> "Scenario":
        """Append an event (events are sorted by time when the scenario runs)."""
        self.events.append(event)
        return self

    def extend(self, events: list[ScenarioEvent]) -> "Scenario":
        """Append several events (e.g. one generator's output) at once."""
        self.events.extend(events)
        return self

    def sorted_events(self) -> list[ScenarioEvent]:
        """Events in non-decreasing time order.

        Equal-time ties are broken by each event's monotonic sequence
        number (creation order), so the replay order of merged event
        streams is deterministic regardless of how — or how often — the
        event list was assembled, shuffled or re-sorted.
        """
        return sorted(self.events, key=lambda e: e.order_key)

    def end_time_ns(self) -> float:
        """The scenario horizon: explicit duration or the last event time."""
        if self.duration_ns is not None:
            return self.duration_ns
        if not self.events:
            return 0.0
        return max(e.time_ns for e in self.events)


@dataclass
class ScenarioOutcome:
    """What happened when a scenario was played against a resource manager."""

    scenario: str
    admitted: list[str] = field(default_factory=list)
    rejected: list[tuple[str, str]] = field(default_factory=list)
    energy: EnergyAccount = field(default_factory=EnergyAccount)
    end_time_ns: float = 0.0

    @property
    def admission_rate(self) -> float:
        """Fraction of start requests that were admitted."""
        total = len(self.admitted) + len(self.rejected)
        return len(self.admitted) / total if total else 0.0

    @property
    def total_energy_nj(self) -> float:
        """Total energy consumed by admitted applications over the scenario."""
        return self.energy.total_energy_nj


def run_scenario(manager: RuntimeResourceManager, scenario: Scenario) -> ScenarioOutcome:
    """Play a scenario against a resource manager and account energy/admissions.

    Thin adapter over the :class:`~repro.runtime.engine.WorkloadEngine`:
    ``"immediate"`` drain mode processes events strictly one at a time in
    ``(time, sequence)`` order, which is decision-identical to the legacy
    player that called the manager directly.  Rejection reasons keep the
    historical ``"application 'x' rejected: <reason>"`` phrasing.
    """
    engine = WorkloadEngine(manager, drain_mode="immediate")
    outcome = engine.run(scenario)
    return ScenarioOutcome(
        scenario=scenario.name,
        admitted=list(outcome.admitted),
        rejected=[
            (application, f"application {application!r} rejected: {reason}")
            for application, reason in outcome.rejected
        ],
        energy=outcome.energy,
        end_time_ns=outcome.end_time_ns,
    )
