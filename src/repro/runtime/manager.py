"""The run-time resource manager: admission control around the spatial mapper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import AdmissionError, PlatformError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper

#: A batch-admission request: an application, optionally with its own library.
StartRequest = ApplicationLevelSpec | tuple[ApplicationLevelSpec, ImplementationLibrary | None]


@dataclass
class RunningApplication:
    """Bookkeeping entry for an admitted application."""

    als: ApplicationLevelSpec
    result: MappingResult
    start_time_ns: float = 0.0

    @property
    def name(self) -> str:
        """Application name."""
        return self.als.name

    @property
    def energy_nj_per_iteration(self) -> float:
        """Energy per iteration of the admitted mapping."""
        return self.result.energy_nj_per_iteration

    def power_mw(self) -> float:
        """Average power of the application (energy per iteration / period)."""
        return self.energy_nj_per_iteration / self.als.period_ns * 1e3


@dataclass
class AdmissionDecision:
    """Per-application outcome of a :meth:`RuntimeResourceManager.start_many` call."""

    application: str
    admitted: bool
    reason: str
    result: MappingResult | None = None
    mapping_runtime_s: float = 0.0


@dataclass
class BatchAdmissionOutcome:
    """Everything :meth:`RuntimeResourceManager.start_many` decided."""

    decisions: list[AdmissionDecision] = field(default_factory=list)

    @property
    def admitted(self) -> list[AdmissionDecision]:
        """Decisions of the applications that were admitted."""
        return [d for d in self.decisions if d.admitted]

    @property
    def rejected(self) -> list[AdmissionDecision]:
        """Decisions of the applications that were rejected."""
        return [d for d in self.decisions if not d.admitted]

    @property
    def admission_rate(self) -> float:
        """Fraction of requests that were admitted."""
        return len(self.admitted) / len(self.decisions) if self.decisions else 0.0


class RuntimeResourceManager:
    """Starts and stops streaming applications on one platform.

    On a start request the manager invokes a mapper (the paper's
    :class:`~repro.spatialmapper.mapper.SpatialMapper` by default, or any
    object with the same ``map(als, state)`` interface, e.g. a baseline) and
    commits the resulting allocations into its
    :class:`~repro.platform.state.PlatformState` when the mapping is
    admissible.  On a stop request all of the application's allocations are
    released again.

    Commits run inside a state transaction, so a half-applied mapping (e.g.
    a link reservation that no longer fits) can never leak into the platform
    state; mapper instances are reused across calls that share a library.

    Parameters
    ----------
    platform:
        The managed platform.
    library:
        Implementation library covering every application that may be
        started.  Per-application libraries can be supplied at start time.
    require_feasible:
        When ``True`` (default) only feasible mappings are admitted; when
        ``False`` adherent mappings are accepted as well (useful for
        experiments with mappers that skip the QoS analysis).
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary | None = None,
        config: MapperConfig | None = None,
        *,
        mapper_factory=None,
        require_feasible: bool = True,
    ) -> None:
        self.platform = platform
        self.library = library or ImplementationLibrary()
        self.config = config or MapperConfig()
        self.state = PlatformState(platform)
        self.require_feasible = require_feasible
        self._mapper_factory = mapper_factory or (
            lambda platform_, library_, config_: SpatialMapper(platform_, library_, config_)
        )
        # The mapper for the manager's own library is cached for the manager's
        # lifetime; per-request libraries get a single most-recent slot so a
        # long-lived manager does not accumulate one mapper per transient
        # library (the cached mapper keeps its library alive, which is what
        # makes the identity comparison in `_mapper_for` safe).
        self._default_mapper = None
        self._custom_mapper: tuple[ImplementationLibrary, object] | None = None
        self._running: dict[str, RunningApplication] = {}
        #: History of admission decisions: (application, admitted, reason).
        self.decisions: list[tuple[str, bool, str]] = []

    # ------------------------------------------------------------------ #
    @property
    def running_applications(self) -> tuple[RunningApplication, ...]:
        """All currently running applications."""
        return tuple(self._running.values())

    def is_running(self, application: str) -> bool:
        """Whether an application with the given name is currently running."""
        return application in self._running

    def _mapper_for(self, library: ImplementationLibrary | None):
        """The (cached) mapper instance for the given library."""
        effective = library if library is not None else self.library
        if effective is self.library:
            if self._default_mapper is None:
                self._default_mapper = self._mapper_factory(
                    self.platform, effective, self.config
                )
            return self._default_mapper
        if self._custom_mapper is not None and self._custom_mapper[0] is effective:
            return self._custom_mapper[1]
        mapper = self._mapper_factory(self.platform, effective, self.config)
        self._custom_mapper = (effective, mapper)
        return mapper

    # ------------------------------------------------------------------ #
    def start(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        time_ns: float = 0.0,
    ) -> MappingResult:
        """Map and admit an application; raises :class:`AdmissionError` on rejection."""
        decision = self._admit(als, library=library, time_ns=time_ns)
        self.decisions.append((decision.application, decision.admitted, decision.reason))
        if not decision.admitted:
            raise AdmissionError(f"application {als.name!r} rejected: {decision.reason}")
        assert decision.result is not None
        return decision.result

    def try_start(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        time_ns: float = 0.0,
    ) -> MappingResult | None:
        """Like :meth:`start` but returns ``None`` instead of raising on rejection."""
        try:
            return self.start(als, library=library, time_ns=time_ns)
        except AdmissionError:
            return None

    def start_many(
        self,
        requests: Iterable[StartRequest] | Sequence[StartRequest],
        *,
        time_ns: float = 0.0,
        all_or_nothing: bool = False,
    ) -> BatchAdmissionOutcome:
        """Admit a workload of applications in one call.

        Each request is an :class:`~repro.kpn.als.ApplicationLevelSpec` or an
        ``(als, library)`` pair.  Requests are mapped in order against the
        evolving platform state and each receives its own accept/reject
        decision; a rejection does not abort the batch.  With
        ``all_or_nothing=True`` the whole batch runs inside one state
        transaction and every admission is rolled back when any request is
        rejected.
        """
        outcome = BatchAdmissionOutcome()

        def admit_all() -> bool:
            for request in requests:
                als, library = (
                    request if isinstance(request, tuple) else (request, None)
                )
                decision = self._admit(als, library=library, time_ns=time_ns)
                outcome.decisions.append(decision)
                # Record immediately, so the audit trail survives a request
                # that raises later in the batch.
                self.decisions.append(
                    (decision.application, decision.admitted, decision.reason)
                )
                if not decision.admitted and all_or_nothing:
                    return False
            return True

        def unwind() -> None:
            # Only admissions made by this batch are unwound; a request
            # rejected because its application was already running must not
            # evict that running application.  Each reversal is appended to
            # the decision history as its own event.
            for decision in outcome.decisions:
                if decision.admitted:
                    self._running.pop(decision.application, None)
                    decision.admitted = False
                    decision.reason = "rolled back: batch rejected (all-or-nothing)"
                    self.decisions.append(
                        (decision.application, False, decision.reason)
                    )

        if all_or_nothing:
            try:
                with self.state.transaction() as txn:
                    if not admit_all():
                        txn.rollback()
                        unwind()
            except BaseException:
                # The transaction context already rolled the state back; the
                # manager bookkeeping must follow, or _running would name
                # applications whose allocations no longer exist.
                unwind()
                raise
        else:
            admit_all()
        return outcome

    def stop(self, application: str) -> None:
        """Stop a running application and release all of its allocations."""
        if application not in self._running:
            raise AdmissionError(f"application {application!r} is not running")
        self.state.release_application(application)
        del self._running[application]

    # ------------------------------------------------------------------ #
    def total_power_mw(self) -> float:
        """Aggregate average power of all running applications."""
        return sum(app.power_mw() for app in self._running.values())

    def _admit(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None,
        time_ns: float,
    ) -> AdmissionDecision:
        """Map one application and commit it when admissible."""
        if als.name in self._running:
            return AdmissionDecision(als.name, False, "application is already running")
        mapper = self._mapper_for(library)
        result = mapper.map(als, self.state)
        admissible = (
            result.status is MappingStatus.FEASIBLE
            if self.require_feasible
            else result.status.at_least(MappingStatus.ADHERENT)
        )
        if not admissible:
            reason = (
                result.feasibility.reason
                if result.feasibility and result.feasibility.reason
                else f"mapping status {result.status.value}"
            )
            return AdmissionDecision(
                als.name, False, reason, mapping_runtime_s=result.runtime_s
            )
        try:
            self._commit(als, result)
        except PlatformError as error:
            return AdmissionDecision(
                als.name,
                False,
                f"commit failed: {error}",
                mapping_runtime_s=result.runtime_s,
            )
        self._running[als.name] = RunningApplication(
            als=als, result=result, start_time_ns=time_ns
        )
        return AdmissionDecision(
            als.name, True, "admitted", result=result, mapping_runtime_s=result.runtime_s
        )

    def _commit(self, als: ApplicationLevelSpec, result: MappingResult) -> None:
        """Write the mapping's allocations into the platform state atomically."""
        mapping = result.mapping
        with self.state.transaction():
            for assignment in mapping.assignments:
                if assignment.implementation is None:
                    continue
                self.state.allocate_process(
                    ProcessAllocation(
                        application=als.name,
                        process=assignment.process,
                        tile=assignment.tile,
                        memory_bytes=assignment.implementation.memory_bytes,
                        compute_cycles_per_iteration=assignment.implementation.total_wcet_cycles,
                    )
                )
            for route in mapping.routes:
                for a, b in zip(route.path, route.path[1:]):
                    link = self.platform.noc.link(a, b)
                    self.state.allocate_link(
                        LinkAllocation(
                            application=als.name,
                            channel=route.channel,
                            link=link.name,
                            bits_per_s=route.required_bits_per_s,
                        )
                    )
