"""The run-time resource manager: admission control around the spatial mapper."""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import AdmissionError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.result import MappingResult, MappingStatus
from repro.platform.platform import Platform
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper


@dataclass
class RunningApplication:
    """Bookkeeping entry for an admitted application."""

    als: ApplicationLevelSpec
    result: MappingResult
    start_time_ns: float = 0.0

    @property
    def name(self) -> str:
        """Application name."""
        return self.als.name

    @property
    def energy_nj_per_iteration(self) -> float:
        """Energy per iteration of the admitted mapping."""
        return self.result.energy_nj_per_iteration

    def power_mw(self) -> float:
        """Average power of the application (energy per iteration / period)."""
        return self.energy_nj_per_iteration / self.als.period_ns * 1e3


class RuntimeResourceManager:
    """Starts and stops streaming applications on one platform.

    On a start request the manager invokes a mapper (the paper's
    :class:`~repro.spatialmapper.mapper.SpatialMapper` by default, or any
    object with the same ``map(als, state)`` interface, e.g. a baseline) and
    commits the resulting allocations into its
    :class:`~repro.platform.state.PlatformState` when the mapping is
    admissible.  On a stop request all of the application's allocations are
    released again.

    Parameters
    ----------
    platform:
        The managed platform.
    library:
        Implementation library covering every application that may be
        started.  Per-application libraries can be supplied at start time.
    require_feasible:
        When ``True`` (default) only feasible mappings are admitted; when
        ``False`` adherent mappings are accepted as well (useful for
        experiments with mappers that skip the QoS analysis).
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary | None = None,
        config: MapperConfig | None = None,
        *,
        mapper_factory=None,
        require_feasible: bool = True,
    ) -> None:
        self.platform = platform
        self.library = library or ImplementationLibrary()
        self.config = config or MapperConfig()
        self.state = PlatformState(platform)
        self.require_feasible = require_feasible
        self._mapper_factory = mapper_factory or (
            lambda platform_, library_, config_: SpatialMapper(platform_, library_, config_)
        )
        self._running: dict[str, RunningApplication] = {}
        #: History of admission decisions: (application, admitted, reason).
        self.decisions: list[tuple[str, bool, str]] = []

    # ------------------------------------------------------------------ #
    @property
    def running_applications(self) -> tuple[RunningApplication, ...]:
        """All currently running applications."""
        return tuple(self._running.values())

    def is_running(self, application: str) -> bool:
        """Whether an application with the given name is currently running."""
        return application in self._running

    # ------------------------------------------------------------------ #
    def start(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        time_ns: float = 0.0,
    ) -> MappingResult:
        """Map and admit an application; raises :class:`AdmissionError` on rejection."""
        if als.name in self._running:
            raise AdmissionError(f"application {als.name!r} is already running")
        mapper = self._mapper_factory(self.platform, library or self.library, self.config)
        result = mapper.map(als, self.state)
        admissible = (
            result.status is MappingStatus.FEASIBLE
            if self.require_feasible
            else result.status.at_least(MappingStatus.ADHERENT)
        )
        if not admissible:
            reason = (
                result.feasibility.reason
                if result.feasibility and result.feasibility.reason
                else f"mapping status {result.status.value}"
            )
            self.decisions.append((als.name, False, reason))
            raise AdmissionError(f"application {als.name!r} rejected: {reason}")
        self._commit(als, result)
        self._running[als.name] = RunningApplication(als=als, result=result, start_time_ns=time_ns)
        self.decisions.append((als.name, True, "admitted"))
        return result

    def try_start(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        time_ns: float = 0.0,
    ) -> MappingResult | None:
        """Like :meth:`start` but returns ``None`` instead of raising on rejection."""
        try:
            return self.start(als, library=library, time_ns=time_ns)
        except AdmissionError:
            return None

    def stop(self, application: str) -> None:
        """Stop a running application and release all of its allocations."""
        if application not in self._running:
            raise AdmissionError(f"application {application!r} is not running")
        self.state.release_application(application)
        del self._running[application]

    # ------------------------------------------------------------------ #
    def total_power_mw(self) -> float:
        """Aggregate average power of all running applications."""
        return sum(app.power_mw() for app in self._running.values())

    def _commit(self, als: ApplicationLevelSpec, result: MappingResult) -> None:
        """Write the mapping's allocations into the platform state."""
        mapping = result.mapping
        for assignment in mapping.assignments:
            if assignment.implementation is None:
                continue
            self.state.allocate_process(
                ProcessAllocation(
                    application=als.name,
                    process=assignment.process,
                    tile=assignment.tile,
                    memory_bytes=assignment.implementation.memory_bytes,
                    compute_cycles_per_iteration=assignment.implementation.total_wcet_cycles,
                )
            )
        for route in mapping.routes:
            for a, b in zip(route.path, route.path[1:]):
                link = self.platform.noc.link(a, b)
                self.state.allocate_link(
                    LinkAllocation(
                        application=als.name,
                        channel=route.channel,
                        link=link.name,
                        bits_per_s=route.required_bits_per_s,
                    )
                )
