"""The run-time resource manager: admission control around the spatial mapper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import AdmissionRejected, PlatformError, UnknownApplication
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.result import MappingResult
from repro.platform.platform import Platform
from repro.platform.regions import RegionPartition
from repro.runtime.pipeline import AdmissionDecision, AdmissionPipeline
from repro.spatialmapper.config import MapperConfig

#: A batch-admission request: an application, optionally with its own library.
StartRequest = ApplicationLevelSpec | tuple[ApplicationLevelSpec, ImplementationLibrary | None]


@dataclass
class RunningApplication:
    """Bookkeeping entry for an admitted application."""

    als: ApplicationLevelSpec
    result: MappingResult
    start_time_ns: float = 0.0

    @property
    def name(self) -> str:
        """Application name."""
        return self.als.name

    @property
    def energy_nj_per_iteration(self) -> float:
        """Energy per iteration of the admitted mapping."""
        return self.result.energy_nj_per_iteration

    def power_mw(self) -> float:
        """Average power of the application (energy per iteration / period)."""
        return self.energy_nj_per_iteration / self.als.period_ns * 1e3


@dataclass
class BatchAdmissionOutcome:
    """Everything :meth:`RuntimeResourceManager.start_many` decided."""

    decisions: list[AdmissionDecision] = field(default_factory=list)

    @property
    def admitted(self) -> list[AdmissionDecision]:
        """Decisions of the applications that were admitted."""
        return [d for d in self.decisions if d.admitted]

    @property
    def rejected(self) -> list[AdmissionDecision]:
        """Decisions of the applications that were rejected."""
        return [d for d in self.decisions if not d.admitted]

    @property
    def admission_rate(self) -> float:
        """Fraction of requests that were admitted."""
        return len(self.admitted) / len(self.decisions) if self.decisions else 0.0


class RuntimeResourceManager:
    """Starts and stops streaming applications on one platform.

    The manager is a thin façade over the staged
    :class:`~repro.runtime.pipeline.AdmissionPipeline`: every start request
    flows through fingerprint/cache lookup, region selection, region-scoped
    spatial mapping and a transactional commit; a stop releases the
    application's allocations inside a transaction.  The manager itself only
    keeps the application-level bookkeeping (what is running, the decision
    audit trail) and the public API.

    Parameters
    ----------
    platform:
        The managed platform.
    library:
        Implementation library covering every application that may be
        started.  Per-application libraries can be supplied at start time.
    require_feasible:
        When ``True`` (default) only feasible mappings are admitted; when
        ``False`` adherent mappings are accepted as well (useful for
        experiments with mappers that skip the QoS analysis).
    partition:
        Optional :class:`~repro.platform.regions.RegionPartition`.  With it,
        admissions map into the least-filled qualifying region and commit
        under a region-scoped transaction.
    mapper_cache_size:
        Capacity of the fingerprint-keyed mapper result cache (0 disables).
    region_fallback:
        Whether admission retries globally when no single region fits.
    cross_region_planner:
        Attach an :class:`~repro.interregion.planner.InterRegionPlanner`
        (requires ``partition``): requests whose pinned tiles span regions
        are planned over budgeted boundary corridors before the global
        fallback, and the engine's multi-region lane admits them under a
        lock subset instead of the serialized global lane.
    corridor_budget_fraction:
        Fraction of boundary-link capacity corridors may reserve.
    region_scorer:
        Optional :class:`~repro.spatialmapper.region_score.RegionScorer`:
        candidate regions are ordered by the composite residual/pressure/
        feedback score instead of raw fill level (see
        :mod:`repro.spatialmapper.region_score`).  Use
        ``RegionScorer.adaptive()`` for scoring *with* rejection-feedback
        memory; ``None`` (default) keeps the historic fill-level ordering.
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary | None = None,
        config: MapperConfig | None = None,
        *,
        mapper_factory=None,
        require_feasible: bool = True,
        partition: RegionPartition | None = None,
        mapper_cache_size: int = 128,
        region_fallback: bool = True,
        max_region_attempts: int = 2,
        cross_region_planner: bool = False,
        corridor_budget_fraction: float = 0.5,
        region_scorer=None,
    ) -> None:
        self.platform = platform
        self.library = library or ImplementationLibrary()
        self.config = config or MapperConfig()
        self.require_feasible = require_feasible
        self.pipeline = AdmissionPipeline(
            platform,
            self.library,
            self.config,
            partition=partition,
            mapper_factory=mapper_factory,
            require_feasible=require_feasible,
            cache_size=mapper_cache_size,
            region_fallback=region_fallback,
            max_region_attempts=max_region_attempts,
            region_scorer=region_scorer,
        )
        if cross_region_planner:
            if partition is None:
                raise PlatformError(
                    "cross_region_planner requires a region partition"
                )
            # Imported here: repro.interregion builds on the runtime pipeline.
            from repro.interregion.planner import InterRegionPlanner

            self.pipeline.interregion = InterRegionPlanner(
                self.pipeline, budget_fraction=corridor_budget_fraction
            )
        self.state = self.pipeline.state
        self._running: dict[str, RunningApplication] = {}
        #: History of admission decisions: (application, admitted, reason).
        self.decisions: list[tuple[str, bool, str]] = []

    # ------------------------------------------------------------------ #
    @property
    def partition(self) -> RegionPartition | None:
        """The region partition admissions are sharded over, if any."""
        return self.pipeline.partition

    @property
    def running_applications(self) -> tuple[RunningApplication, ...]:
        """All currently running applications."""
        return tuple(self._running.values())

    def is_running(self, application: str) -> bool:
        """Whether an application with the given name is currently running."""
        return application in self._running

    def _mapper_for(self, library: ImplementationLibrary | None):
        """The (cached) mapper instance for the given library."""
        return self.pipeline.mapper_for(library)

    # ------------------------------------------------------------------ #
    def admit(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        time_ns: float = 0.0,
        interregion: bool = True,
        trace=None,
    ) -> AdmissionDecision:
        """Run one request through the pipeline; never raises on rejection.

        The decision is recorded in :attr:`decisions` and, when admitted,
        the application joins :attr:`running_applications`.  This is the
        building block :meth:`start`, :meth:`start_many` and the
        :class:`~repro.runtime.queue.AdmissionQueue` all share.
        ``interregion=False`` skips the inter-region planner stage (the
        engine passes it for requests the multi-region lane already
        rejected — the planner is deterministic, so retrying it within one
        drain could only repeat the same answer).  ``trace`` forwards a
        request's trace context to the pipeline's span instrumentation.
        """
        decision = self._admit(
            als, library=library, time_ns=time_ns, interregion=interregion, trace=trace
        )
        self.decisions.append((decision.application, decision.admitted, decision.reason))
        self.pipeline.note_feedback(decision)
        return decision

    def adopt_decision(
        self,
        als: ApplicationLevelSpec,
        decision: AdmissionDecision,
        *,
        time_ns: float = 0.0,
    ) -> AdmissionDecision:
        """Record a decision whose pipeline work already happened elsewhere.

        The workload engine's region workers run
        :meth:`AdmissionPipeline.decide` (mapping *and* commit) off the main
        thread; the manager-level bookkeeping — the audit trail and the
        running-application registry — is then adopted here, on the engine's
        thread, in deterministic order.  The caller guarantees the
        application was not already running when the worker mapped it.
        """
        self.decisions.append((decision.application, decision.admitted, decision.reason))
        self.pipeline.note_feedback(decision)
        if decision.admitted:
            assert decision.result is not None
            self._running[als.name] = RunningApplication(
                als=als, result=decision.result, start_time_ns=time_ns
            )
        return decision

    def start(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        time_ns: float = 0.0,
    ) -> MappingResult:
        """Map and admit an application; raises :class:`AdmissionRejected` on rejection."""
        decision = self.admit(als, library=library, time_ns=time_ns)
        if not decision.admitted:
            raise AdmissionRejected(
                f"application {als.name!r} rejected: {decision.reason}"
            )
        assert decision.result is not None
        return decision.result

    def try_start(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        time_ns: float = 0.0,
    ) -> MappingResult | None:
        """Like :meth:`start` but returns ``None`` instead of raising on rejection."""
        decision = self.admit(als, library=library, time_ns=time_ns)
        return decision.result if decision.admitted else None

    def start_many(
        self,
        requests: Iterable[StartRequest] | Sequence[StartRequest],
        *,
        time_ns: float = 0.0,
        all_or_nothing: bool = False,
    ) -> BatchAdmissionOutcome:
        """Admit a workload of applications in one call.

        Each request is an :class:`~repro.kpn.als.ApplicationLevelSpec` or an
        ``(als, library)`` pair.  Requests are mapped in order against the
        evolving platform state and each receives its own accept/reject
        decision; a rejection does not abort the batch.  With
        ``all_or_nothing=True`` the whole batch runs inside one state
        transaction and every admission is rolled back when any request is
        rejected.
        """
        outcome = BatchAdmissionOutcome()

        def admit_all() -> bool:
            for request in requests:
                als, library = (
                    request if isinstance(request, tuple) else (request, None)
                )
                # Record immediately, so the audit trail survives a request
                # that raises later in the batch.
                decision = self.admit(als, library=library, time_ns=time_ns)
                outcome.decisions.append(decision)
                if not decision.admitted and all_or_nothing:
                    return False
            return True

        def unwind() -> None:
            # Only admissions made by this batch are unwound; a request
            # rejected because its application was already running must not
            # evict that running application.  Each reversal is appended to
            # the decision history as its own event.
            for decision in outcome.decisions:
                if decision.admitted:
                    self._running.pop(decision.application, None)
                    self.pipeline.forget(decision.application)
                    decision.admitted = False
                    decision.reason = "rolled back: batch rejected (all-or-nothing)"
                    self.decisions.append(
                        (decision.application, False, decision.reason)
                    )

        if all_or_nothing:
            try:
                # Rejection feedback recorded for the batch's decisions must
                # vanish with the batch: a rolled-back admission never stood,
                # so the memory must not demote regions for it.
                with self.pipeline.feedback_transaction() as feedback_txn:
                    with self.state.transaction() as txn:
                        if not admit_all():
                            txn.rollback()
                            if feedback_txn is not None:
                                feedback_txn.rollback()
                            unwind()
            except BaseException:
                # The transaction context already rolled the state back; the
                # manager bookkeeping must follow, or _running would name
                # applications whose allocations no longer exist.
                unwind()
                raise
        else:
            admit_all()
        return outcome

    def stop(self, application: str) -> None:
        """Stop a running application and release all of its allocations.

        The release runs inside a state transaction (teardown is as atomic
        as commit: an exception mid-release cannot leave the application
        half-deallocated).  Raises :class:`UnknownApplication` when no such
        application is running.
        """
        if application not in self._running:
            raise UnknownApplication(f"application {application!r} is not running")
        self.pipeline.release(application)
        del self._running[application]

    # ------------------------------------------------------------------ #
    def total_power_mw(self) -> float:
        """Aggregate average power of all running applications."""
        return sum(app.power_mw() for app in self._running.values())

    def _admit(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None,
        time_ns: float,
        interregion: bool = True,
        trace=None,
    ) -> AdmissionDecision:
        """Run one application through the pipeline and track it when admitted."""
        if als.name in self._running:
            return AdmissionDecision(als.name, False, "application is already running")
        if interregion:
            decision = self.pipeline.decide(als, library=library, trace=trace)
        else:
            decision = self.pipeline.decide(
                als, library=library, use_interregion=False, trace=trace
            )
        if decision.admitted:
            assert decision.result is not None
            self._running[als.name] = RunningApplication(
                als=als, result=decision.result, start_time_ns=time_ns
            )
        return decision
