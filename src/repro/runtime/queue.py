"""Queued front-end for run-time admission.

Many clients asking one resource manager to start applications need a place
for their requests to wait, an ordering discipline, and a way to hear back.
:class:`AdmissionQueue` provides exactly that: ``submit`` enqueues a request
and returns a ticket, ``poll`` reports its status, ``cancel`` withdraws it,
and ``drain`` pushes pending requests through the manager's admission
pipeline — re-using :meth:`~repro.runtime.manager.RuntimeResourceManager.start_many`
as the atomic building block, so a drained batch leaves exactly the same
audit trail as a direct batch call.

Requests carry a priority (higher drains first) and an optional deadline
(pending requests past their deadline expire instead of admitting late).
Each request is assigned to a *lane* — the region the region-selection
stage would currently place it in — and two draining disciplines are
offered:

* ``"arrival"`` (default): priority, then submission order, across all
  lanes.  Draining this way is decision-for-decision identical to calling
  ``start_many`` with the same requests in the same order.
* ``"region"``: round-robin over lanes, FIFO (by priority) within each
  lane.  Requests of one region stay serialised among themselves while
  independent regions' requests interleave — and because commits are
  region-scoped transactions, interleaved per-region admissions never touch
  each other's journals.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import UnknownApplication
from repro.kpn.als import ApplicationLevelSpec
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.pipeline import AdmissionDecision

#: Lane name used for requests that would map globally (no qualifying region).
GLOBAL_LANE = "__global__"


class RequestStatus(enum.Enum):
    """Life cycle of a queued admission request."""

    PENDING = "pending"
    ADMITTED = "admitted"
    REJECTED = "rejected"
    CANCELLED = "cancelled"
    EXPIRED = "expired"

    @property
    def is_final(self) -> bool:
        """Whether the request has left the queue for good."""
        return self is not RequestStatus.PENDING


@dataclass
class QueuedRequest:
    """One submitted admission request and its outcome."""

    ticket: int
    als: ApplicationLevelSpec
    library: ImplementationLibrary | None = None
    priority: int = 0
    deadline_ns: float | None = None
    submitted_ns: float = 0.0
    lane: str = GLOBAL_LANE
    status: RequestStatus = RequestStatus.PENDING
    decision: AdmissionDecision | None = None
    reason: str = ""
    decided_ns: float | None = None
    _order: tuple = field(default=(), repr=False)

    @property
    def application(self) -> str:
        """Name of the requested application."""
        return self.als.name


class AdmissionQueue:
    """Submit/poll/cancel front-end serialising requests onto one manager.

    The queue itself performs no mapping work — it owns ordering, deadlines
    and the ticket book-keeping, and delegates every decision to the
    manager's staged admission pipeline.
    """

    def __init__(
        self,
        manager: RuntimeResourceManager,
        *,
        policy: str = "arrival",
    ) -> None:
        if policy not in ("arrival", "region"):
            raise ValueError(f"unknown drain policy {policy!r}")
        self.manager = manager
        self.policy = policy
        self._tickets = itertools.count(1)
        self._requests: dict[int, QueuedRequest] = {}
        self._pending: list[QueuedRequest] = []

    # ------------------------------------------------------------------ #
    # Submission side
    # ------------------------------------------------------------------ #
    def submit(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        priority: int = 0,
        deadline_ns: float | None = None,
        now_ns: float = 0.0,
    ) -> int:
        """Enqueue a start request; returns its ticket."""
        ticket = next(self._tickets)
        request = QueuedRequest(
            ticket=ticket,
            als=als,
            library=library,
            priority=priority,
            deadline_ns=deadline_ns,
            submitted_ns=now_ns,
            lane=self._lane_of(als, library),
        )
        request._order = (-priority, ticket)
        self._requests[ticket] = request
        self._pending.append(request)
        return ticket

    def poll(self, ticket: int) -> QueuedRequest:
        """Status (and decision, once made) of a submitted request."""
        try:
            return self._requests[ticket]
        except KeyError:
            raise UnknownApplication(f"unknown admission ticket {ticket}") from None

    def cancel(self, ticket: int, *, now_ns: float = 0.0) -> bool:
        """Withdraw a pending request; returns whether it was still pending."""
        request = self.poll(ticket)
        if request.status is not RequestStatus.PENDING:
            return False
        request.status = RequestStatus.CANCELLED
        request.reason = "cancelled by client"
        request.decided_ns = now_ns
        self._pending.remove(request)
        return True

    @property
    def pending(self) -> tuple[QueuedRequest, ...]:
        """Requests still waiting, in submission order."""
        return tuple(self._pending)

    def pending_by_lane(self) -> dict[str, tuple[QueuedRequest, ...]]:
        """Pending requests grouped by region lane."""
        lanes: dict[str, list[QueuedRequest]] = {}
        for request in self._pending:
            lanes.setdefault(request.lane, []).append(request)
        return {lane: tuple(requests) for lane, requests in lanes.items()}

    def __len__(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Draining side
    # ------------------------------------------------------------------ #
    def process_next(self, *, now_ns: float = 0.0) -> QueuedRequest | None:
        """Drain exactly one request (or none when the queue is idle)."""
        drained = self.drain(now_ns=now_ns, max_requests=1)
        return drained[0] if drained else None

    def drain(
        self,
        *,
        now_ns: float = 0.0,
        max_requests: int | None = None,
    ) -> list[QueuedRequest]:
        """Push pending requests through the admission pipeline.

        Expired requests are finalised without mapping work; the rest are
        handed to :meth:`RuntimeResourceManager.start_many` in policy order
        as one batch.  Returns every request finalised by this call
        (admitted, rejected and expired), in processing order.
        """
        expired = self._expire(now_ns)
        ready = self._ordered_pending()
        if max_requests is not None:
            budget = max(0, max_requests - len(expired))
            ready = ready[:budget]
        for request in ready:
            self._pending.remove(request)
        decisions_before = len(self.manager.decisions)
        try:
            outcome = self.manager.start_many(
                [(request.als, request.library) for request in ready], time_ns=now_ns
            )
        except BaseException:
            # A request mid-batch blew up (e.g. a custom mapper raised).  The
            # manager appended one audit entry per request it finished
            # deciding, in order; finalise those tickets from the audit trail
            # and put the untouched remainder back at the head of the queue
            # so a later drain retries them instead of stranding them.
            decided = self.manager.decisions[decisions_before:]
            for request, (_, admitted, reason) in zip(ready, decided):
                request.reason = reason
                request.decided_ns = now_ns
                request.status = (
                    RequestStatus.ADMITTED if admitted else RequestStatus.REJECTED
                )
            self._pending[:0] = ready[len(decided) :]
            raise
        for request, decision in zip(ready, outcome.decisions):
            request.decision = decision
            request.reason = decision.reason
            request.decided_ns = now_ns
            request.status = (
                RequestStatus.ADMITTED if decision.admitted else RequestStatus.REJECTED
            )
        return expired + ready

    # ------------------------------------------------------------------ #
    def _lane_of(
        self, als: ApplicationLevelSpec, library: ImplementationLibrary | None
    ) -> str:
        """The region lane a request currently belongs to."""
        candidates = self.manager.pipeline.candidate_regions(als, library)
        first = candidates[0] if candidates else None
        return first.name if first is not None else GLOBAL_LANE

    def _ordered_pending(self) -> list[QueuedRequest]:
        """Pending requests in drain order for the configured policy."""
        if self.policy == "arrival":
            return sorted(self._pending, key=lambda request: request._order)
        lanes: dict[str, list[QueuedRequest]] = {}
        for request in sorted(self._pending, key=lambda request: request._order):
            lanes.setdefault(request.lane, []).append(request)
        ordered: list[QueuedRequest] = []
        queues = [lanes[lane] for lane in sorted(lanes)]
        while queues:
            next_round = []
            for queue in queues:
                ordered.append(queue.pop(0))
                if queue:
                    next_round.append(queue)
            queues = next_round
        return ordered

    def _expire(self, now_ns: float) -> list[QueuedRequest]:
        """Finalise pending requests whose deadline has passed."""
        expired = [
            request
            for request in self._pending
            if request.deadline_ns is not None and now_ns > request.deadline_ns
        ]
        for request in expired:
            request.status = RequestStatus.EXPIRED
            request.reason = (
                f"deadline {request.deadline_ns:g} ns passed at {now_ns:g} ns"
            )
            request.decided_ns = now_ns
            self._pending.remove(request)
        return expired
