"""Queued front-end for run-time admission.

Many clients asking one resource manager to start applications need a place
for their requests to wait, an ordering discipline, and a way to hear back.
:class:`AdmissionQueue` provides exactly that: ``submit`` enqueues a request
and returns a ticket, ``poll`` reports its status, ``cancel`` withdraws it,
and ``drain`` pushes pending requests through the manager's admission
pipeline — re-using :meth:`~repro.runtime.manager.RuntimeResourceManager.start_many`
as the atomic building block, so a drained batch leaves exactly the same
audit trail as a direct batch call.

Requests carry a priority (higher drains first) and an optional deadline
(pending requests past their deadline expire instead of admitting late).
Each request is assigned to a *lane* — the region the region-selection
stage would currently place it in — and two draining disciplines are
offered:

* ``"arrival"`` (default): priority, then submission order, across all
  lanes.  Draining this way is decision-for-decision identical to calling
  ``start_many`` with the same requests in the same order.
* ``"region"``: round-robin over lanes, FIFO (by priority) within each
  lane.  Requests of one region stay serialised among themselves while
  independent regions' requests interleave — and because commits are
  region-scoped transactions, interleaved per-region admissions never touch
  each other's journals.

The queue also exposes the two-phase primitives the workload engine's
executors build on — :meth:`take` (claim pending requests, marking them
``IN_FLIGHT``) and :meth:`finalize` (settle a claimed request with its
decision) — and two behaviours that only matter once draining is
asynchronous:

* **cancel of an in-flight request** registers an intent instead of
  withdrawing: if the worker's decision lands afterwards, an admission is
  rolled back (the application is stopped) and the request settles as
  ``CANCELLED``;
* **cache-aware rejection parking** (``park_rejections=True``): a rejected
  request returns to the queue pinned to the fingerprint its lane was
  rejected under, and :meth:`take` skips it until that fingerprint changes
  — the mapper is deterministic, so an unchanged fingerprint guarantees an
  unchanged (hopeless) answer and re-mapping it would be pure waste.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field

from repro.appmodel.library import ImplementationLibrary
from repro.exceptions import UnknownApplication
from repro.kpn.als import ApplicationLevelSpec
from repro.platform.regions import GLOBAL_LANE
from repro.runtime.manager import RuntimeResourceManager
from repro.runtime.pipeline import AdmissionDecision

__all__ = ["AdmissionQueue", "QueuedRequest", "RequestStatus", "GLOBAL_LANE"]


class RequestStatus(enum.Enum):
    """Life cycle of a queued admission request."""

    PENDING = "pending"
    IN_FLIGHT = "in_flight"
    ADMITTED = "admitted"
    REJECTED = "rejected"
    CANCELLED = "cancelled"
    EXPIRED = "expired"
    #: Dropped by the load-shedding governor before any mapping work.
    SHED = "shed"

    @property
    def is_final(self) -> bool:
        """Whether the request has left the queue for good."""
        return self not in (RequestStatus.PENDING, RequestStatus.IN_FLIGHT)


@dataclass
class QueuedRequest:
    """One submitted admission request and its outcome."""

    ticket: int
    als: ApplicationLevelSpec
    library: ImplementationLibrary | None = None
    priority: int = 0
    deadline_ns: float | None = None
    submitted_ns: float = 0.0
    lane: str = GLOBAL_LANE
    status: RequestStatus = RequestStatus.PENDING
    decision: AdmissionDecision | None = None
    reason: str = ""
    decided_ns: float | None = None
    #: Set when ``cancel`` raced an in-flight decision; honoured at finalize.
    cancel_requested: bool = False
    #: Set when the load governor deferred the request back to the queue.
    #: A later deadline expiry of such a request is the governor's own
    #: doing, not an admission failure the rate estimate should count.
    deferred_by_governor: bool = False
    #: Lane fingerprint the request was last rejected under (parked retries).
    parked_fingerprint: tuple | None = None
    #: How many times the request went through the pipeline.
    attempts: int = 0
    _order: tuple = field(default=(), repr=False)

    @property
    def application(self) -> str:
        """Name of the requested application."""
        return self.als.name


class AdmissionQueue:
    """Submit/poll/cancel front-end serialising requests onto one manager.

    The queue itself performs no mapping work — it owns ordering, deadlines
    and the ticket book-keeping, and delegates every decision to the
    manager's staged admission pipeline.  All bookkeeping is guarded by one
    reentrant lock, so clients may submit/poll/cancel concurrently with an
    engine draining the queue from its own thread.
    """

    def __init__(
        self,
        manager: RuntimeResourceManager,
        *,
        policy: str = "arrival",
        park_rejections: bool = False,
    ) -> None:
        if policy not in ("arrival", "region"):
            raise ValueError(f"unknown drain policy {policy!r}")
        self.manager = manager
        self.policy = policy
        #: Park rejected requests against their lane fingerprint instead of
        #: finalising them (retried only once the fingerprint changes).
        self.park_rejections = park_rejections
        self._tickets = itertools.count(1)
        self._requests: dict[int, QueuedRequest] = {}
        self._pending: list[QueuedRequest] = []
        self._lock = threading.RLock()
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` the queue
        #: counts submissions/claims/expiries (and gauges its depth) into;
        #: the engine installs its per-run registry here.
        self.metrics = None

    # ------------------------------------------------------------------ #
    # Submission side
    # ------------------------------------------------------------------ #
    def submit(
        self,
        als: ApplicationLevelSpec,
        *,
        library: ImplementationLibrary | None = None,
        priority: int = 0,
        deadline_ns: float | None = None,
        now_ns: float = 0.0,
    ) -> int:
        """Enqueue a start request; returns its ticket."""
        with self._lock:
            ticket = next(self._tickets)
            request = QueuedRequest(
                ticket=ticket,
                als=als,
                library=library,
                priority=priority,
                deadline_ns=deadline_ns,
                submitted_ns=now_ns,
                lane=self._lane_of(als, library),
            )
            request._order = (-priority, ticket)
            self._requests[ticket] = request
            self._pending.append(request)
            if self.metrics is not None:
                self.metrics.count("queue.submitted")
                self.metrics.gauge("queue.depth", float(len(self._pending)))
            return ticket

    def poll(self, ticket: int) -> QueuedRequest:
        """Status (and decision, once made) of a submitted request."""
        try:
            return self._requests[ticket]
        except KeyError:
            raise UnknownApplication(f"unknown admission ticket {ticket}") from None

    def cancel(self, ticket: int, *, now_ns: float = 0.0) -> bool:
        """Withdraw a pending request; returns whether it was still pending.

        Cancelling an *in-flight* request (claimed by :meth:`take` but not
        yet finalised) cannot withdraw it synchronously — the worker may
        already be committing — so the call registers a cancellation intent
        and returns ``False``; :meth:`finalize` honours the intent, rolling
        back an admission that lands after the cancellation.
        """
        with self._lock:
            request = self.poll(ticket)
            if request.status is RequestStatus.IN_FLIGHT:
                request.cancel_requested = True
                return False
            if request.status is not RequestStatus.PENDING:
                return False
            request.status = RequestStatus.CANCELLED
            request.reason = "cancelled by client"
            request.decided_ns = now_ns
            self._pending.remove(request)
            return True

    @property
    def pending(self) -> tuple[QueuedRequest, ...]:
        """Requests still waiting, in submission order."""
        with self._lock:
            return tuple(self._pending)

    def pending_by_lane(self) -> dict[str, tuple[QueuedRequest, ...]]:
        """Pending requests grouped by region lane."""
        with self._lock:
            lanes: dict[str, list[QueuedRequest]] = {}
            for request in self._pending:
                lanes.setdefault(request.lane, []).append(request)
            return {lane: tuple(requests) for lane, requests in lanes.items()}

    def __len__(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Two-phase draining primitives (used by drain and by the engine)
    # ------------------------------------------------------------------ #
    def take(
        self,
        *,
        now_ns: float = 0.0,
        max_requests: int | None = None,
    ) -> tuple[list[QueuedRequest], list[QueuedRequest]]:
        """Claim pending requests for processing: ``(expired, ready)``.

        Pending requests past their deadline are finalised as ``EXPIRED``
        without mapping work.  The rest are returned in policy order and
        marked ``IN_FLIGHT`` (removed from the pending list) — the caller
        owns them until it calls :meth:`finalize` (or :meth:`requeue` after
        a failure).  Parked requests whose lane fingerprint is unchanged
        since their last rejection are skipped: the pipeline is
        deterministic, so the answer could not have changed either.
        """
        with self._lock:
            expired = self._expire(now_ns)
            fingerprints: dict[str, tuple] = {}
            ready: list[QueuedRequest] = []
            for request in self._ordered_pending():
                if request.parked_fingerprint is not None:
                    lane = request.lane
                    if lane not in fingerprints:
                        fingerprints[lane] = self._lane_fingerprint(lane)
                    if fingerprints[lane] == request.parked_fingerprint:
                        continue
                ready.append(request)
            if max_requests is not None:
                budget = max(0, max_requests - len(expired))
                ready = ready[:budget]
            for request in ready:
                self._pending.remove(request)
                request.status = RequestStatus.IN_FLIGHT
            if self.metrics is not None:
                self.metrics.count("queue.claimed", float(len(ready)))
                if expired:
                    self.metrics.count("queue.expired", float(len(expired)))
                self.metrics.gauge("queue.depth", float(len(self._pending)))
            return expired, ready

    def finalize(
        self,
        request: QueuedRequest,
        decision: AdmissionDecision,
        *,
        now_ns: float = 0.0,
    ) -> QueuedRequest:
        """Settle a claimed request with the decision made for it.

        The caller must already have recorded the decision with the manager
        (``start_many`` / ``admit`` / ``adopt_decision``), so an admitted
        application is in the running registry — which is what allows a
        raced cancellation to roll it back via ``manager.stop``.  With
        ``park_rejections`` enabled, a rejection returns the request to the
        queue parked against its lane's current fingerprint instead of
        finalising it.
        """
        with self._lock:
            request.decision = decision
            request.attempts += 1
            request.decided_ns = now_ns
            if request.cancel_requested:
                if decision.admitted and self.manager.is_running(decision.application):
                    self.manager.stop(decision.application)
                    request.reason = "cancelled while in flight; admission rolled back"
                else:
                    request.reason = "cancelled while in flight"
                request.status = RequestStatus.CANCELLED
                return request
            if decision.admitted:
                request.status = RequestStatus.ADMITTED
                request.reason = decision.reason
                return request
            if self.park_rejections:
                request.status = RequestStatus.PENDING
                request.reason = decision.reason
                request.parked_fingerprint = self._lane_fingerprint(request.lane)
                self._pending.append(request)
                return request
            request.status = RequestStatus.REJECTED
            request.reason = decision.reason
            return request

    def shed(
        self,
        request: QueuedRequest,
        *,
        now_ns: float = 0.0,
        reason: str = "shed by load governor",
    ) -> QueuedRequest:
        """Settle a claimed request as ``SHED`` — before any mapping work.

        Settlement is exactly-once under the queue lock: a cancellation
        that raced the governor (the request was ``IN_FLIGHT`` when the
        client called :meth:`cancel`, registering an intent) wins — the
        request settles ``CANCELLED``, never both.  There is no admission
        to roll back either way, because shedding happens strictly before
        the pipeline runs.
        """
        with self._lock:
            if request.status is not RequestStatus.IN_FLIGHT:
                return request  # already settled by a racing finalisation
            if request.cancel_requested:
                request.status = RequestStatus.CANCELLED
                request.reason = "cancelled while in flight"
            else:
                request.status = RequestStatus.SHED
                request.reason = reason
            request.decided_ns = now_ns
            return request

    def defer(
        self,
        requests: list[QueuedRequest],
        *,
        now_ns: float = 0.0,
    ) -> list[QueuedRequest]:
        """Return governor-deferred requests to the queue without an attempt.

        Unlike :meth:`requeue` (the failure-unwind path), deferral honours
        a cancellation intent registered while the request was claimed: such
        a request settles ``CANCELLED`` here — exactly once — instead of
        going back to pending.  Returns the requests that settled (the rest
        are pending again, awaiting a drain in which the governor has
        disengaged, or their deadline).
        """
        with self._lock:
            settled: list[QueuedRequest] = []
            for request in requests:
                if request.status is not RequestStatus.IN_FLIGHT:
                    continue
                if request.cancel_requested:
                    request.status = RequestStatus.CANCELLED
                    request.reason = "cancelled while in flight"
                    request.decided_ns = now_ns
                    settled.append(request)
                else:
                    request.status = RequestStatus.PENDING
                    request.deferred_by_governor = True
                    self._pending.append(request)
            return settled

    def requeue(self, requests: list[QueuedRequest]) -> None:
        """Return claimed-but-undecided requests to the head of the queue."""
        with self._lock:
            for request in requests:
                request.status = RequestStatus.PENDING
            self._pending[:0] = requests

    def flush_pending(
        self,
        *,
        now_ns: float = 0.0,
        reason: str = "workload ended before admission",
    ) -> list[QueuedRequest]:
        """Finalise every still-pending request as rejected.

        Called when a workload run ends: parked requests keep the reason of
        their last real rejection; requests never attempted get ``reason``.
        A request the governor deferred and that never reached the mapper
        settles as ``SHED`` instead — it was never offered to the pipeline,
        so settling it rejected would charge the admission rate for work
        the governor deliberately avoided.  Returns the flushed requests in
        submission order.
        """
        with self._lock:
            flushed = list(self._pending)
            self._pending.clear()
            for request in flushed:
                if request.deferred_by_governor and request.attempts == 0:
                    request.status = RequestStatus.SHED
                    request.reason = (
                        "shed by load governor (deferred until workload end)"
                    )
                else:
                    request.status = RequestStatus.REJECTED
                    if not request.reason:
                        request.reason = reason
                request.decided_ns = now_ns
            return flushed

    # ------------------------------------------------------------------ #
    # Draining side
    # ------------------------------------------------------------------ #
    def process_next(self, *, now_ns: float = 0.0) -> QueuedRequest | None:
        """Drain exactly one request (or none when the queue is idle)."""
        drained = self.drain(now_ns=now_ns, max_requests=1)
        return drained[0] if drained else None

    def drain(
        self,
        *,
        now_ns: float = 0.0,
        max_requests: int | None = None,
    ) -> list[QueuedRequest]:
        """Push pending requests through the admission pipeline.

        Expired requests are finalised without mapping work; the rest are
        handed to :meth:`RuntimeResourceManager.start_many` in policy order
        as one batch.  Returns every request finalised by this call
        (admitted, rejected, cancelled and expired), in processing order —
        parked rejections stay pending and are not returned.
        """
        expired, ready = self.take(now_ns=now_ns, max_requests=max_requests)
        decisions_before = len(self.manager.decisions)
        try:
            outcome = self.manager.start_many(
                [(request.als, request.library) for request in ready], time_ns=now_ns
            )
        except BaseException:
            # A request mid-batch blew up (e.g. a custom mapper raised).  The
            # manager appended one audit entry per request it finished
            # deciding, in order; finalise those tickets from the audit trail
            # and put the untouched remainder back at the head of the queue
            # so a later drain retries them instead of stranding them.
            decided = self.manager.decisions[decisions_before:]
            for request, (_, admitted, reason) in zip(ready, decided):
                request.reason = reason
                request.decided_ns = now_ns
                request.attempts += 1
                request.status = (
                    RequestStatus.ADMITTED if admitted else RequestStatus.REJECTED
                )
            self.requeue(ready[len(decided) :])
            raise
        finalized = list(expired)
        for request, decision in zip(ready, outcome.decisions):
            self.finalize(request, decision, now_ns=now_ns)
            if request.status.is_final:
                finalized.append(request)
        return finalized

    # ------------------------------------------------------------------ #
    def _lane_of(
        self, als: ApplicationLevelSpec, library: ImplementationLibrary | None
    ) -> str:
        """The region lane a request currently belongs to."""
        candidates = self.manager.pipeline.candidate_regions(als, library)
        first = candidates[0] if candidates else None
        return first.name if first is not None else GLOBAL_LANE

    def _lane_fingerprint(self, lane: str) -> tuple:
        """The fingerprint a parked request's rejection depended on.

        A rejection came from the full pipeline, and with the cross-region
        fallback enabled its answer depends on the *whole* platform state —
        parking against only the lane region could skip a request forever
        while capacity frees up elsewhere.  The narrow per-region digest is
        only sound when admission is confined to the lane's region
        (``region_fallback`` disabled); otherwise the global digest is used,
        trading a few extra (cache-served) retries for never missing an
        admission opportunity.
        """
        partition = self.manager.partition
        if (
            partition is not None
            and lane != GLOBAL_LANE
            and not self.manager.pipeline.region_fallback
        ):
            return partition.region(lane).fingerprint(self.manager.state)
        return self.manager.state.fingerprint()

    def _ordered_pending(self) -> list[QueuedRequest]:
        """Pending requests in drain order for the configured policy."""
        if self.policy == "arrival":
            return sorted(self._pending, key=lambda request: request._order)
        lanes: dict[str, list[QueuedRequest]] = {}
        for request in sorted(self._pending, key=lambda request: request._order):
            lanes.setdefault(request.lane, []).append(request)
        ordered: list[QueuedRequest] = []
        queues = [lanes[lane] for lane in sorted(lanes)]
        while queues:
            next_round = []
            for queue in queues:
                ordered.append(queue.pop(0))
                if queue:
                    next_round.append(queue)
            queues = next_round
        return ordered

    def _expire(self, now_ns: float) -> list[QueuedRequest]:
        """Finalise pending requests whose deadline has passed."""
        expired = [
            request
            for request in self._pending
            if request.deadline_ns is not None and now_ns > request.deadline_ns
        ]
        for request in expired:
            request.status = RequestStatus.EXPIRED
            request.reason = (
                f"deadline {request.deadline_ns:g} ns passed at {now_ns:g} ns"
            )
            request.decided_ns = now_ns
            self._pending.remove(request)
        return expired
