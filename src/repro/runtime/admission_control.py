"""Online load shedding for the workload engine's drain loop.

The engine measures admission rate versus offered load; this module uses
that measurement *online*.  Under overload, most low-priority arrivals are
doomed — they will be mapped (burning mapper cycles), rejected, and retried
or expired — while the resources they do win starve the high-priority
traffic the platform exists to serve.  The
:class:`LoadSheddingGovernor` watches the engine's settlement stream and,
when the observed admission rate falls below a configurable floor, sheds or
defers low-priority arrivals *before* any mapping work is spent on them.

The governor is a deterministic state machine driven purely by the
settlement stream (never by wall clock), so engines draining the same
events — serially or with the threaded executor — make identical shedding
decisions:

```
            rate < floor  (and >= min_samples seen)
  NORMAL ──────────────────────────────────────────► SHEDDING
     ▲                                                   │
     └───────────────────────────────────────────────────┘
            rate >= floor + resume_margin
```

* **NORMAL** — every arrival proceeds to the mapper.
* **SHEDDING** — arrivals with priority <= ``shed_max_priority`` are
  settled as :attr:`~repro.runtime.queue.RequestStatus.SHED` (mode
  ``"shed"``) or left pending without mapping work (mode ``"defer"``);
  higher-priority arrivals always proceed.  Because shed requests are not
  fed back into the rate estimate, the window refills with the protected
  traffic's outcomes and the governor re-opens once the floor (plus the
  hysteresis margin) is cleared — under sustained overload it oscillates
  around the floor, which is exactly the duty cycle that keeps *some*
  low-priority traffic flowing while protecting the rest.

Per-priority-class windowed rates are tracked alongside the aggregate and
surfaced through :meth:`LoadSheddingGovernor.snapshot` into the engine's
telemetry.  A governor with ``enabled=False`` (or no governor at all) is
*decision-inert*: the engine's outcomes are bit-identical to the pre-governor
engine — pinned by differential test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["GovernorConfig", "GovernorDecision", "LoadSheddingGovernor"]


@dataclass(frozen=True)
class GovernorConfig:
    """Tuning knobs of the load-shedding governor.

    Parameters
    ----------
    rate_floor:
        Windowed admission rate below which shedding engages.
    resume_margin:
        Hysteresis: shedding disengages only once the rate recovers to
        ``rate_floor + resume_margin``.
    window:
        Number of recent settlements in the rate estimate.
    min_samples:
        Settlements required before the governor may engage (a cold window
        must not shed on the first rejection).
    shed_max_priority:
        Arrivals with priority <= this are sheddable; higher priorities are
        always mapped.
    mode:
        ``"shed"`` settles sheddable arrivals immediately (terminal
        ``SHED`` status); ``"defer"`` leaves them pending without mapping
        work — they get their chance when the governor disengages, or
        expire at their deadline.
    """

    rate_floor: float = 0.5
    resume_margin: float = 0.1
    window: int = 32
    min_samples: int = 8
    shed_max_priority: int = 0
    mode: str = "shed"

    def __post_init__(self) -> None:
        if not 0.0 < self.rate_floor < 1.0:
            raise ValueError("rate_floor must be in (0, 1)")
        if self.resume_margin < 0.0:
            raise ValueError("resume_margin must be non-negative")
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be positive")
        if self.min_samples > self.window:
            raise ValueError("min_samples cannot exceed the window")
        if self.mode not in ("shed", "defer"):
            raise ValueError(f"unknown governor mode {self.mode!r}")


class GovernorDecision:
    """What the governor wants done with one pending arrival."""

    PROCEED = "proceed"
    SHED = "shed"
    DEFER = "defer"


class LoadSheddingGovernor:
    """Windowed admission-rate tracker + shed/defer gate for the engine.

    The engine calls :meth:`observe` for every settled pipeline decision
    (admitted, rejected or expired — cancellations and shed requests are
    client/governor actions, not admission outcomes) and :meth:`assess`
    for every arrival it is about to spend mapping work on.  Both run on
    the engine thread in settlement order, so the governor's state is a
    pure function of the decision stream.
    """

    def __init__(
        self, config: GovernorConfig | None = None, *, enabled: bool = True
    ) -> None:
        self.config = config or GovernorConfig()
        self.enabled = enabled
        self._samples: deque[bool] = deque(maxlen=self.config.window)
        self._by_priority: dict[int, deque[bool]] = {}
        self._shedding = False
        #: Lifetime counters (surfaced into engine telemetry).
        self.shed_count = 0
        self.deferred_count = 0
        self.transitions = 0

    # ------------------------------------------------------------------ #
    def observe(self, priority: int, admitted: bool) -> None:
        """Fold one settled admission decision into the rate windows."""
        self._samples.append(admitted)
        window = self._by_priority.setdefault(
            priority, deque(maxlen=self.config.window)
        )
        window.append(admitted)
        self._update_state()

    def _update_state(self) -> None:
        if len(self._samples) < self.config.min_samples:
            return
        rate = self.admission_rate()
        if not self._shedding and rate < self.config.rate_floor:
            self._shedding = True
            self.transitions += 1
        elif self._shedding and rate >= self.config.rate_floor + self.config.resume_margin:
            self._shedding = False
            self.transitions += 1

    # ------------------------------------------------------------------ #
    def admission_rate(self, priority: int | None = None) -> float:
        """Windowed admission-rate estimate (aggregate or one priority class).

        An empty window reports 1.0 — an unmeasured system is presumed
        healthy (the ``min_samples`` guard keeps that presumption from
        ever triggering state changes).
        """
        window = (
            self._samples if priority is None else self._by_priority.get(priority, ())
        )
        if not window:
            return 1.0
        return sum(window) / len(window)

    @property
    def shedding(self) -> bool:
        """Whether the governor is currently in the SHEDDING state."""
        return self.enabled and self._shedding

    def assess(self, priority: int) -> str:
        """Gate one arrival: :data:`GovernorDecision.PROCEED`/``SHED``/``DEFER``.

        Counts the decision it hands out, so telemetry reflects what the
        governor *ordered* — the queue settles races (a concurrent cancel
        may still win; see :meth:`AdmissionQueue.shed`).
        """
        if not self.shedding or priority > self.config.shed_max_priority:
            return GovernorDecision.PROCEED
        if self.config.mode == "defer":
            self.deferred_count += 1
            return GovernorDecision.DEFER
        self.shed_count += 1
        return GovernorDecision.SHED

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Telemetry view: state, windowed rates and lifetime counters."""
        return {
            "enabled": self.enabled,
            "shedding": self._shedding,
            "mode": self.config.mode,
            "rate_floor": self.config.rate_floor,
            "aggregate_rate": round(self.admission_rate(), 4),
            "rate_by_priority": {
                priority: round(self.admission_rate(priority), 4)
                for priority in sorted(self._by_priority)
            },
            "samples": len(self._samples),
            "shed": self.shed_count,
            "deferred": self.deferred_count,
            "transitions": self.transitions,
        }

    def publish_metrics(self, registry) -> None:
        """Publish the governor's snapshot into a metrics registry.

        Rates and state are gauges (max-folded across snapshots), lifetime
        counters are counters — the registry's one fold discipline.
        """
        snapshot = self.snapshot()
        registry.gauge("governor.admission_rate", float(snapshot["aggregate_rate"]))
        registry.gauge("governor.shedding", 1.0 if snapshot["shedding"] else 0.0)
        registry.count("governor.shed", float(snapshot["shed"]))
        registry.count("governor.deferred", float(snapshot["deferred"]))
        registry.count("governor.transitions", float(snapshot["transitions"]))
        for priority, rate in snapshot["rate_by_priority"].items():
            registry.gauge(
                f"governor.admission_rate[priority={priority}]", float(rate)
            )
