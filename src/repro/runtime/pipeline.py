"""The staged admission pipeline behind the run-time resource manager.

PR 1 made a *single* admission cheap (O(1) aggregates, journaled
transactions).  This module turns those primitives into the scaling
architecture: every start request flows through an explicit pipeline of
stages —

1. **fingerprint / cache lookup** — the platform state digests to a cheap
   per-region fingerprint; a previously answered (application, region
   fingerprint) question is served from the
   :class:`~repro.spatialmapper.cache.MapperCache` without re-running the
   search;
2. **region selection** — with a :class:`~repro.platform.regions.RegionPartition`
   configured, candidate regions are ranked least-filled-first among those
   that contain the application's pinned tiles and can plausibly host its
   processes;
3. **spatial map (region-scoped)** — the four-step mapper runs restricted to
   the selected region's tiles and routers, so the work (and the fingerprint
   that keys its result) is local to the shard;
4. **transactional commit** — allocations are written under a transaction
   scoped to the region, so admissions into disjoint regions never touch
   each other's journals.

The :class:`~repro.runtime.manager.RuntimeResourceManager` is a thin façade
over this pipeline, and the :class:`~repro.runtime.queue.AdmissionQueue`
feeds it request by request.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, replace

from repro.appmodel.library import ImplementationLibrary
from repro.csdf.analysis.budget import AnalysisEngine
from repro.exceptions import PlatformError
from repro.kpn.als import ApplicationLevelSpec
from repro.mapping.mapping import Mapping
from repro.mapping.result import MappingResult, MappingStatus
from repro.obs import NULL_TRACER, TraceContext
from repro.platform.platform import Platform
from repro.platform.regions import Region, RegionPartition
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation
from repro.spatialmapper.cache import MapperCache
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from repro.spatialmapper.region_score import RegionScorer


@dataclass
class AdmissionDecision:
    """Per-application outcome of one trip through the admission pipeline."""

    application: str
    admitted: bool
    reason: str
    result: MappingResult | None = None
    mapping_runtime_s: float = 0.0
    #: Which stage produced the decision: ``"pipeline"`` (region attempts /
    #: global fallback) or ``"interregion"`` (the corridor planner).  The
    #: engine's telemetry attributes settlements by this, not by the
    #: free-text ``reason``.
    origin: str = "pipeline"
    #: Names of the regions whose in-region mapping attempt failed on the
    #: way to this decision (empty without a partition, or when the first
    #: candidate admitted).  Rejection feedback is derived from these at
    #: the single finalisation point (:meth:`AdmissionPipeline.note_feedback`),
    #: never inside the possibly-concurrent mapping itself.
    attempted_regions: tuple[str, ...] = ()
    #: Shape fingerprint of the application, computed while the library was
    #: at hand; ``None`` when no rejection feedback is configured.
    shape: tuple | None = None

    def as_transport(self) -> "AdmissionDecision":
        """A transport-safe copy of this decision for crossing process boundaries.

        Everything settlement needs — admitted/reason, the mapping and its
        energy/feasibility figures, the mapper runtime, ``attempted_regions``
        and ``shape`` (consumed by :meth:`AdmissionPipeline.note_feedback` on
        the engine process) — is carried verbatim.  The mapped CSDF graph
        and the mapper's pending step feedback are dropped: both are
        worker-local search artefacts no finalisation or differential key
        reads, and they dominate the pickled size.
        """
        result = self.result
        if result is not None:
            result = replace(
                result,
                mapped_csdf=None,
                pending_feedback=[],
                diagnostics=list(result.diagnostics),
            )
        return replace(self, result=result)


class AdmissionPipeline:
    """Maps and commits start requests through the staged admission path.

    Parameters
    ----------
    platform:
        The managed platform.
    library:
        Default implementation library (per-request libraries may override).
    config:
        Mapper configuration shared by every created mapper.
    state:
        The live allocation state; a fresh one is created when omitted.
    partition:
        Optional region sharding.  Without it every request maps and commits
        globally (the pre-pipeline behaviour, now expressed as one global
        "region" of ``None``).
    mapper_factory:
        ``(platform, library, config) -> mapper`` hook, e.g. for baselines.
        Region-scoped mapping requires the produced mapper to accept
        ``map(als, state, region=...)``; factories used without a partition
        only need the plain ``map(als, state)`` interface.
    require_feasible:
        When ``True`` only feasible mappings are admitted; otherwise
        adherent mappings pass as well.
    cache_size:
        Capacity of the shared mapper-result cache; ``0`` disables caching.
    region_fallback:
        Whether a request that no single region admits is retried with an
        unrestricted (global) mapping.  The global attempt commits under an
        unscoped transaction, which is the explicit path for cross-region
        allocations.
    max_region_attempts:
        How many candidate regions to try before the global fallback.
    region_scorer:
        Optional :class:`~repro.spatialmapper.region_score.RegionScorer`.
        With it, qualifying regions are ordered by the composite score
        (per-tile-type residuals, routing pressure, rejection feedback)
        instead of raw fill level, and regions whose feedback penalty
        crosses the exclusion threshold are skipped without mapping.
        ``None`` keeps the historic least-filled-first ordering.
    """

    def __init__(
        self,
        platform: Platform,
        library: ImplementationLibrary | None = None,
        config: MapperConfig | None = None,
        *,
        state: PlatformState | None = None,
        partition: RegionPartition | None = None,
        mapper_factory=None,
        require_feasible: bool = True,
        cache_size: int = 128,
        region_fallback: bool = True,
        max_region_attempts: int = 2,
        region_scorer: RegionScorer | None = None,
    ) -> None:
        self.platform = platform
        self.library = library or ImplementationLibrary()
        self.config = config or MapperConfig()
        self.state = state if state is not None else PlatformState(platform)
        self.partition = partition
        self.require_feasible = require_feasible
        self.region_fallback = region_fallback
        self.max_region_attempts = max(1, max_region_attempts)
        self.region_scorer = region_scorer
        #: How many times the mapping stage ran (cache hits included): the
        #: "wasted mapper calls" currency of the load-shedding benchmark.
        self.mapper_invocations = 0
        self.cache: MapperCache | None = MapperCache(cache_size) if cache_size else None
        #: Step-4 analysis engine shared by every mapper this pipeline
        #: creates: one simulation-verdict cache across regions, refinement
        #: iterations and admission requests, and the source of the
        #: engine-level ``analysis`` telemetry counters.
        self.analysis = AnalysisEngine.from_config(self.config)
        self._uses_default_factory = mapper_factory is None
        self._mapper_factory = mapper_factory or (
            lambda platform_, library_, config_: SpatialMapper(
                platform_, library_, config_, cache=self.cache, analysis=self.analysis
            )
        )
        # The mapper for the pipeline's own library is cached for the
        # pipeline's lifetime; per-request libraries get a single most-recent
        # slot so a long-lived pipeline does not accumulate one mapper per
        # transient library (the cached mapper keeps its library alive, which
        # is what makes the identity comparison in `mapper_for` safe).
        self._default_mapper = None
        self._custom_mapper: tuple[ImplementationLibrary, object] | None = None
        #: Regions each running application's allocations landed in
        #: (observability: which shard an admission was served from).
        self._regions_of_app: dict[str, tuple[str, ...]] = {}
        #: Optional inter-region planner (duck-typed:
        #: :class:`repro.interregion.planner.InterRegionPlanner`).  When set,
        #: a request no single region can host is planned over budgeted
        #: boundary corridors *before* the unrestricted global fallback.
        self.interregion = None
        #: Observability hooks.  The engine (or a drain worker) installs its
        #: :class:`~repro.obs.trace.Tracer` / per-run
        #: :class:`~repro.obs.metrics.MetricsRegistry` here; the defaults keep
        #: an un-instrumented pipeline allocation-free on the hot path.
        self.tracer = NULL_TRACER
        self.metrics = None

    # ------------------------------------------------------------------ #
    # Stage 1 — fingerprints
    # ------------------------------------------------------------------ #
    def fingerprint(self, region: Region | None = None) -> tuple:
        """Digest of the current state of ``region`` (or of the whole platform)."""
        if region is not None:
            return region.fingerprint(self.state)
        return self.state.fingerprint()

    # ------------------------------------------------------------------ #
    # Stage 2 — region selection
    # ------------------------------------------------------------------ #
    def candidate_regions(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None = None,
        *,
        shape: tuple | None = None,
    ) -> tuple[Region | None, ...]:
        """Regions worth attempting for this application, best first.

        A region qualifies when it contains every pinned tile of the
        application, has at least as many free slots as the application has
        mappable processes, and offers — per process — some implementation
        whose tile type still has a free-slot tile inside the region.
        Qualifying regions are ordered least-filled-first (ties broken by
        name) — or, with a :attr:`region_scorer`, by the composite score
        over per-tile-type residuals, routing pressure and rejection
        feedback (regions past the feedback exclusion threshold are dropped
        before scoring); ``None`` (the global, unrestricted attempt) is
        appended when fallback is enabled, and is the only candidate
        without a partition.  With fallback disabled and no qualifying
        region, the tuple is empty and :meth:`decide` rejects the request
        without mapping.
        """
        if self.partition is None:
            return (None,)
        effective = library if library is not None else self.library
        mappable = [p.name for p in als.kpn.mappable_processes()]
        pinned_tiles = [
            p.pinned_tile for p in als.kpn.pinned_processes() if p.pinned_tile
        ]
        scorer = self.region_scorer
        if shape is None and scorer is not None:
            # ``decide`` passes its precomputed fingerprint; other callers
            # (lane assignment) pay for the digest here, once.
            shape = scorer.shape_of(als, effective)
        scored: list[tuple[float, str, Region]] = []
        for region in self.partition:
            if any(tile not in region for tile in pinned_tiles):
                continue
            view = region.view(self.state)
            if view.free_process_slots() < len(mappable):
                continue
            free_types = {
                self.platform.tile(name).type_name
                for name in region.processing_tile_names()
                if self.state.free_process_slots(name) > 0
            }
            if not all(
                any(
                    implementation.tile_type in free_types
                    for implementation in effective.implementations_for(process)
                )
                for process in mappable
            ):
                continue
            if scorer is not None:
                if scorer.excludes(region.name, shape):
                    continue
                score = scorer.score(als, effective, region, self.state, shape=shape)
            else:
                score = view.fill_level()
            scored.append((score, region.name, region))
        scored.sort(key=lambda item: (item[0], item[1]))
        candidates: list[Region | None] = [
            region for _, _, region in scored[: self.max_region_attempts]
        ]
        if self.region_fallback:
            candidates.append(None)
        return tuple(candidates)

    # ------------------------------------------------------------------ #
    # Stage 3 — spatial mapping
    # ------------------------------------------------------------------ #
    def mapper_for(self, library: ImplementationLibrary | None):
        """The (cached) mapper instance for the given library."""
        effective = library if library is not None else self.library
        if effective is self.library:
            if self._default_mapper is None:
                self._default_mapper = self._mapper_factory(
                    self.platform, effective, self.config
                )
            return self._default_mapper
        # Read the slot once: a concurrent region worker may replace it
        # between a check and a re-read, and handing back a mapper built for
        # a *different* library would silently map against the wrong
        # implementations.  Racing the slot only costs an extra mapper.
        custom = self._custom_mapper
        if custom is not None and custom[0] is effective:
            return custom[1]
        mapper = self._mapper_factory(self.platform, effective, self.config)
        self._custom_mapper = (effective, mapper)
        return mapper

    def map_stage(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None,
        region: Region | None,
    ) -> MappingResult:
        """Run the (possibly region-scoped, possibly cached) mapper."""
        self.mapper_invocations += 1
        mapper = self.mapper_for(library)
        if region is None:
            result = mapper.map(als, self.state)
        else:
            result = mapper.map(als, self.state, region=region)
        self._count_rescue_metrics(mapper)
        return result

    def _count_rescue_metrics(self, mapper) -> None:
        """Fold the last computed call's rescue-lane counters into metrics.

        Worker-process pipelines count into their local registry, whose
        snapshot ships back in ``LaneResult.metrics`` and folds engine-side,
        so the counters aggregate across executors without extra plumbing.
        Cache hits carry a marked empty trace and count nothing.
        """
        metrics = self.metrics
        if metrics is None:
            return
        trace = getattr(mapper, "last_trace", None)
        if trace is None or trace.cache_hit or not trace.rescue_searchers_run:
            return
        metrics.count("mapper.rescue.searchers", float(trace.rescue_searchers_run))
        metrics.count("mapper.rescue.candidates", float(trace.rescue_candidates))
        metrics.count("mapper.rescue.feasible", float(trace.rescue_feasible))
        if trace.rescue_adopted:
            metrics.count("mapper.rescue.adopted", 1.0)
        if trace.rescue_budget_exhausted:
            metrics.count("mapper.rescue.budget_exhausted", 1.0)

    # ------------------------------------------------------------------ #
    # Stage 4 — transactional commit
    # ------------------------------------------------------------------ #
    def commit(
        self,
        als: ApplicationLevelSpec,
        result: MappingResult,
        region: Region | None = None,
    ) -> None:
        """Write the mapping's allocations into the state atomically.

        With a region, the transaction is scoped to that region's tiles and
        internal links: a failure (or a concurrent sibling's rollback) can
        never disturb other regions' journals.  Raises
        :class:`~repro.exceptions.PlatformError` when any allocation no
        longer fits; the transaction guarantees nothing half-applied leaks.
        """
        mapping = result.mapping
        with self.state.transaction(region):
            records = self.write_allocations(als.name, mapping)
        # Journal only once the transaction committed: a rolled-back commit
        # must leave the region delta chains untouched.
        self.state.journal_mapping_commit(als.name, *records)
        self._note_commit(als.name, mapping)

    def allocation_records(
        self, application: str, mapping: Mapping
    ) -> tuple[tuple[ProcessAllocation, ...], tuple[LinkAllocation, ...]]:
        """The allocation records a mapping commits, in commit order.

        This is the single translation from a mapping to state mutations:
        :meth:`write_allocations` applies it locally, and the process drain
        ships it across the boundary as an
        :class:`~repro.platform.state.AllocationDelta` — so a worker-side
        commit and the engine-side fold of its delta write bit-identical
        records in the same order.
        """
        processes = tuple(
            ProcessAllocation(
                application=application,
                process=assignment.process,
                tile=assignment.tile,
                memory_bytes=assignment.implementation.memory_bytes,
                compute_cycles_per_iteration=assignment.implementation.total_wcet_cycles,
            )
            for assignment in mapping.assignments
            if assignment.implementation is not None
        )
        links = tuple(
            LinkAllocation(
                application=application,
                channel=route.channel,
                link=self.platform.noc.link(a, b).name,
                bits_per_s=route.required_bits_per_s,
            )
            for route in mapping.routes
            for a, b in zip(route.path, route.path[1:])
        )
        return processes, links

    def write_allocations(
        self, application: str, mapping: Mapping
    ) -> tuple[tuple[ProcessAllocation, ...], tuple[LinkAllocation, ...]]:
        """Allocate a mapping's processes and routed links into the state.

        Writes into whatever transaction scope the caller holds open —
        :meth:`commit` uses it under a region scope, the inter-region
        planner under its corridor scope (and for tentative scratch work).
        Keeping this the single allocation writer means planner-committed
        and pipeline-committed state can never diverge in bookkeeping.
        Returns the written records so callers that must journal them
        (:meth:`commit`) do not translate the mapping twice.
        """
        processes, links = self.allocation_records(application, mapping)
        for allocation in processes:
            self.state.allocate_process(allocation)
        for allocation in links:
            self.state.allocate_link(allocation)
        return processes, links

    # ------------------------------------------------------------------ #
    # The full pipeline
    # ------------------------------------------------------------------ #
    def decide(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None = None,
        *,
        candidates: tuple[Region | None, ...] | None = None,
        use_interregion: bool = True,
        trace: TraceContext | None = None,
    ) -> AdmissionDecision:
        """Run stages 1-4 for one request and return its decision.

        Candidate regions are attempted in order; the first admissible,
        committable mapping wins.  ``mapping_runtime_s`` accumulates the
        mapper time of every attempt, so per-admission latency reported by
        benchmarks reflects the real pipeline cost.

        ``candidates`` overrides stage 2: the caller dictates exactly which
        regions to attempt (the engine's region workers pass their single
        lane region so a parallel attempt can never leave its shard).

        When an inter-region planner is attached, the global-fallback slot
        first attempts a planned cross-region admission over budgeted
        boundary corridors; only a planner rejection falls through to the
        unrestricted global mapping, so the global lane remains the
        differential reference.  ``use_interregion=False`` skips the
        planner attempt (used by callers that already ran it).

        ``trace`` attaches the request's trace context: the decision then
        emits a ``decide`` span with region-selection / per-attempt map /
        cache-lookup / mapper-step / commit children.  Tracing only ever
        observes — decisions are bit-identical with it on or off.
        """
        tracer = self.tracer
        metrics = self.metrics
        span = (
            tracer.start("decide", trace, attrs={"application": als.name})
            if trace is not None and tracer.enabled
            else None
        )
        if span is None and metrics is None:
            return self._decide(
                als, library, candidates=candidates, use_interregion=use_interregion
            )
        start_ns = span.start_ns if span is not None else time.perf_counter_ns()
        decision = self._decide(
            als,
            library,
            candidates=candidates,
            use_interregion=use_interregion,
            trace=span.context() if span is not None else None,
        )
        end_ns = time.perf_counter_ns()
        if span is not None:
            span.attrs["admitted"] = decision.admitted
            span.attrs["origin"] = decision.origin
            tracer.end(span, end_ns=end_ns)
        if metrics is not None:
            metrics.observe("pipeline.decide_s", (end_ns - start_ns) / 1e9)
            metrics.count(f"pipeline.decisions[admitted={decision.admitted}]")
        return decision

    def _decide(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None = None,
        *,
        candidates: tuple[Region | None, ...] | None = None,
        use_interregion: bool = True,
        trace: TraceContext | None = None,
    ) -> AdmissionDecision:
        """The un-instrumented pipeline walk behind :meth:`decide`.

        ``trace`` here is the *child* context of the already-open ``decide``
        span (or ``None``); stage spans parent onto it.
        """
        tracer = self.tracer
        runtime_s = 0.0
        best: MappingResult | None = None
        scorer = self.region_scorer
        shape = (
            scorer.shape_of(als, library if library is not None else self.library)
            if scorer is not None
            else None
        )
        attempted: list[str] = []
        if candidates is None:
            selection_start_ns = time.perf_counter_ns() if trace is not None else 0
            candidates = self.candidate_regions(als, library, shape=shape)
            if trace is not None:
                tracer.record(
                    "region_selection",
                    trace,
                    selection_start_ns,
                    time.perf_counter_ns(),
                    attrs={
                        "candidates": ",".join(
                            region.name if region is not None else "global"
                            for region in candidates
                        )
                    },
                )
        if not candidates:
            return AdmissionDecision(
                als.name,
                False,
                "no region can host the application (global fallback disabled)",
                shape=shape,
            )
        for region in candidates:
            if region is None and use_interregion and self.interregion is not None:
                plan_start_ns = time.perf_counter_ns() if trace is not None else 0
                planned = self.interregion.decide(als, library)
                if trace is not None:
                    tracer.record(
                        "interregion_plan",
                        trace,
                        plan_start_ns,
                        time.perf_counter_ns(),
                        attrs={"admitted": planned.admitted},
                    )
                runtime_s += planned.mapping_runtime_s
                if planned.admitted:
                    planned.mapping_runtime_s = runtime_s
                    planned.attempted_regions = tuple(attempted)
                    planned.shape = shape
                    return planned
            map_start_ns = time.perf_counter_ns() if trace is not None else 0
            result = self.map_stage(als, library, region)
            if trace is not None:
                self._trace_map_attempt(
                    trace, region, library, map_start_ns, time.perf_counter_ns(), result
                )
            runtime_s += result.runtime_s
            admissible = (
                result.status is MappingStatus.FEASIBLE
                if self.require_feasible
                else result.status.at_least(MappingStatus.ADHERENT)
            )
            if not admissible:
                if region is not None:
                    attempted.append(region.name)
                if best is None or (
                    result.status.at_least(best.status)
                    and (
                        result.status is not best.status
                        or result.energy_nj_per_iteration < best.energy_nj_per_iteration
                    )
                ):
                    best = result
                continue
            commit_start_ns = time.perf_counter_ns() if trace is not None else 0
            try:
                self.commit(als, result, region)
            except PlatformError as error:
                if trace is not None:
                    tracer.record(
                        "commit",
                        trace,
                        commit_start_ns,
                        time.perf_counter_ns(),
                        attrs={"committed": False},
                    )
                if region is not None:
                    attempted.append(region.name)
                return AdmissionDecision(
                    als.name,
                    False,
                    f"commit failed: {error}",
                    mapping_runtime_s=runtime_s,
                    attempted_regions=tuple(attempted),
                    shape=shape,
                )
            if trace is not None:
                tracer.record(
                    "commit",
                    trace,
                    commit_start_ns,
                    time.perf_counter_ns(),
                    attrs={"committed": True},
                )
            return AdmissionDecision(
                als.name,
                True,
                "admitted",
                result=result,
                mapping_runtime_s=runtime_s,
                attempted_regions=tuple(attempted),
                shape=shape,
            )
        assert best is not None  # candidate_regions always yields >= 1 attempt
        reason = (
            best.feasibility.reason
            if best.feasibility and best.feasibility.reason
            else f"mapping status {best.status.value}"
        )
        return AdmissionDecision(
            als.name,
            False,
            reason,
            mapping_runtime_s=runtime_s,
            attempted_regions=tuple(attempted),
            shape=shape,
        )

    def _trace_map_attempt(
        self,
        trace: TraceContext,
        region: Region | None,
        library: ImplementationLibrary | None,
        start_ns: int,
        end_ns: int,
        result: MappingResult,
    ) -> None:
        """Emit the spans of one mapping attempt (map → cache lookup / steps).

        Rebuilt after the fact from the mapper's cheap, always-on
        ``perf_counter_ns`` stamps (:attr:`SpatialMapper.last_lookup` and
        ``MapperTrace.step_windows``), so the mapper itself stays free of
        tracer plumbing.  On a cache hit the mapper leaves a marked empty
        trace (``MapperTrace.cache_hit``) and only the lookup span is
        emitted.
        """
        tracer = self.tracer
        name = region.name if region is not None else "global"
        span = tracer.record(
            f"map:{name}",
            trace,
            start_ns,
            end_ns,
            attrs={"status": result.status.value},
        )
        ctx = trace.child(span.span_id)
        mapper = self.mapper_for(library)
        lookup = getattr(mapper, "last_lookup", None)
        hit = False
        if lookup is not None:
            lookup_start_ns, lookup_end_ns, hit = lookup
            tracer.record(
                "cache_lookup", ctx, lookup_start_ns, lookup_end_ns, attrs={"hit": hit}
            )
        if hit:
            return
        mapper_trace = getattr(mapper, "last_trace", None)
        if mapper_trace is None or mapper_trace.cache_hit:
            # Cache hits reset the trace to a marked empty one; nothing ran.
            return
        for step_name, step_start_ns, step_end_ns in mapper_trace.step_windows:
            tracer.record(step_name, ctx, step_start_ns, step_end_ns)

    def release(self, application: str) -> int:
        """Release every allocation of an application, transactionally.

        Teardown runs inside a (global) transaction so a partially released
        application can never survive an exception.  Cache invalidation is
        automatic: the release changes the touched regions' fingerprints, so
        entries for the pre-release state can no longer be served for the
        post-release state — while entries computed for an *earlier*
        occurrence of the post-release state become servable again, which is
        exactly the churn (start/stop/start) case the cache exists for.
        """
        regions = self._regions_of_app.get(application)
        with self.state.transaction():
            removed = self.state.release_application(application)
        if removed:
            # Journal the *logical* release into the delta chains (a replay
            # re-sums survivors exactly like the engine-side release did).
            # Unknown placement broadcasts — replaying a release of an
            # absent application is a fingerprint-preserving no-op.
            self.state.journal_release(application, regions or None)
        if self.interregion is not None:
            self.interregion.budgets.release_application(application)
        self._regions_of_app.pop(application, None)
        return removed

    def decide_interregion(
        self,
        als: ApplicationLevelSpec,
        library: ImplementationLibrary | None = None,
        *,
        scope: tuple[str, ...] | None = None,
    ) -> AdmissionDecision:
        """Run only the inter-region planner stage for one request.

        The engine's multi-region lane uses this under the coordinator's
        lock subset; a rejection is final for this stage only — the caller
        retries through the serialized global lane.
        """
        if self.interregion is None:
            return AdmissionDecision(
                als.name, False, "inter-region: no planner configured"
            )
        return self.interregion.decide(als, library, scope=scope)

    def note_feedback(self, decision: AdmissionDecision) -> None:
        """Fold one finalised decision into the rejection-feedback memory.

        Advances the memory's decay clock by one decision and records every
        region whose in-region mapping attempt failed
        (:attr:`AdmissionDecision.attempted_regions`).  Callers — the
        manager's :meth:`~repro.runtime.manager.RuntimeResourceManager.admit`
        and :meth:`~repro.runtime.manager.RuntimeResourceManager.adopt_decision`
        — invoke this at the single finalisation point, on the finalising
        thread, in deterministic settlement order: the possibly-concurrent
        region workers never mutate the memory, which is what keeps the
        serial and threaded engines decision-identical with feedback on.
        """
        scorer = self.region_scorer
        if scorer is None or scorer.feedback is None:
            return
        scorer.feedback.tick()
        if decision.shape is None:
            return
        for region_name in decision.attempted_regions:
            scorer.feedback.record(region_name, decision.shape)

    @contextmanager
    def feedback_transaction(self):
        """A journaled scope over the rejection-feedback memory (or a no-op).

        Batch admission wraps its state transaction in this, so feedback
        recorded for a batch that is later rolled back (all-or-nothing)
        vanishes with the batch — the memory must only remember decisions
        that actually stood.
        """
        scorer = self.region_scorer
        if scorer is None or scorer.feedback is None:
            with nullcontext():
                yield None
            return
        with scorer.feedback.transaction() as txn:
            yield txn

    def regions_of(self, application: str) -> tuple[str, ...]:
        """Names of the regions a running application's allocations landed in."""
        return self._regions_of_app.get(application, ())

    def forget(self, application: str) -> None:
        """Drop the region bookkeeping of an application whose allocations are
        gone without :meth:`release` having run (e.g. a batch rollback undid
        the commit wholesale)."""
        self._regions_of_app.pop(application, None)

    def record_commit(self, application: str, mapping: Mapping) -> None:
        """Record a commit performed outside :meth:`commit`.

        Both out-of-band commit paths — the inter-region planner's corridor
        commit and the engine's fold of a worker delta — land here after
        their transaction closed, so this is also where the committed
        records enter the region delta journals.
        """
        if self.state.region_journals:
            processes, links = self.allocation_records(application, mapping)
            self.state.journal_mapping_commit(application, processes, links)
        self._note_commit(application, mapping)

    # ------------------------------------------------------------------ #
    def _note_commit(self, application: str, mapping: Mapping) -> None:
        """Record which regions the committed allocations fall into.

        The commit itself invalidates affected cache entries by changing the
        touched regions' fingerprints (entries are keyed by fingerprint, so
        a stale entry simply never matches again); entries of untouched
        regions deliberately stay live — that is what makes region sharding
        and caching compose.
        """
        self._regions_of_app[application] = self._touched_regions(mapping)

    def _touched_regions(self, mapping: Mapping) -> tuple[str, ...]:
        """Names of the regions a mapping's allocations fall into."""
        if self.partition is None:
            return ()
        names: dict[str, None] = {}
        for assignment in mapping.assignments:
            names.setdefault(self.partition.region_of_tile(assignment.tile).name)
        for route in mapping.routes:
            for position in route.path:
                region = self.partition.region_of_position(position)
                if region is not None:
                    names.setdefault(region.name)
        return tuple(names.keys())
