"""Pytest root configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites also run from
a plain checkout (without ``pip install -e .``), e.g. in offline CI
environments — and the repository root itself, so the shared scenario
harness (``tests/harness.py``) imports as ``tests.harness`` from both the
test and the benchmark suite.
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
for _path in (str(_ROOT / "src"), str(_ROOT)):
    if _path not in sys.path:
        sys.path.insert(0, _path)
