"""Pytest root configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites also run from
a plain checkout (without ``pip install -e .``), e.g. in offline CI
environments.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
