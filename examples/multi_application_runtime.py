#!/usr/bin/env python3
"""Run-time resource management under a generated bursty workload.

The paper's motivation (section 1.3) is that the set of co-running
applications is only known at run time.  This example makes that concrete
at engine scale: a region-sharded MPSoC receives a *generated* bursty
workload — one traffic class per region plus a cross-region mix whose
applications pin their source and sink into different regions — driven
through the discrete-event workload engine with the worker-per-region
executor, the inter-region corridor planner and cache-aware rejection
parking.  The engine's per-lane telemetry shows where requests settle
(region lanes, the multi-region lane, the residual global lane) and what
the region locks cost; the same workload is then replayed on the
process-parallel snapshot-out / delta-in executor (decision-identical,
with per-worker traffic telemetry) and the offered load is swept to
trace the admission-rate-versus-load curve the run-time mapper exists
to bend.

Run with:  python examples/multi_application_runtime.py
"""

from repro import (
    MapperConfig,
    ObsConfig,
    ProcessRegionExecutor,
    RuntimeResourceManager,
    ThreadedRegionExecutor,
    WorkloadEngine,
)
from repro.obs.metrics import split_name
from repro.platform.regions import RegionPartition
from repro.reporting import format_table
from repro.runtime.admission_control import GovernorConfig, LoadSheddingGovernor
from repro.spatialmapper.region_score import RegionScorer
from repro.workloads.arrivals import (
    BurstyArrivals,
    TrafficClass,
    cross_region_classes,
    generate_workload,
    offered_rate_per_s,
    priority_overload_mix,
)
from repro.workloads.synthetic import SyntheticConfig, generate_region_mesh

MILLISECOND = 1e6
REGIONS = 2  # 2x2 grid
SPAN = 3     # routers per region edge


def build_platform():
    """A 6x6 mesh split into four regions, one I/O tile per region."""
    return generate_region_mesh(REGIONS, SPAN, name="bursty_mpsoc")


def traffic_classes(load_factor=1.0):
    """Bursty per-region classes plus a cross-region pair mix."""
    config = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP"))
    classes = []
    for cx in range(REGIONS):
        for cy in range(REGIONS):
            io_tile = f"io_r{cx}_{cy}"
            classes.append(
                TrafficClass(
                    f"r{cx}_{cy}",
                    BurstyArrivals(burst_rate_per_s=120.0, burst_size_range=(2, 4)),
                    config=config,
                    source_tile=io_tile,
                    sink_tile=io_tile,
                    hold_range_ns=(3 * MILLISECOND, 8 * MILLISECOND),
                    admission_window_ns=5 * MILLISECOND,
                ).scaled(load_factor)
            )
    classes.extend(
        traffic.scaled(load_factor)
        for traffic in cross_region_classes(
            REGIONS,
            360.0,
            config=config,
            admission_window_ns=5 * MILLISECOND,
            hold_range_ns=(3 * MILLISECOND, 8 * MILLISECOND),
        )
    )
    return classes


def run_workload(load_factor, executor="threaded"):
    """Play one generated workload through the engine; returns its outcome."""
    platform = build_platform()
    partition = RegionPartition.grid(platform, REGIONS, REGIONS)
    manager = RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3),
        partition=partition,
        cross_region_planner=True,
    )
    if executor == "process":
        backend = ProcessRegionExecutor(partition, workers=2)
    else:
        backend = ThreadedRegionExecutor(partition)
    engine = WorkloadEngine(
        manager, executor=backend, park_rejections=True, obs=ObsConfig()
    )
    workload = generate_workload(
        seed=2008,
        horizon_ns=25 * MILLISECOND,
        classes=traffic_classes(load_factor),
        name=f"bursty_x{load_factor:g}",
    )
    try:
        return engine.run(workload)
    finally:
        if executor == "process":
            backend.close()


def _pivot_counters(counters, prefix):
    """Group ``"<prefix>.<field>[<label>=<row>]"`` counters by row label.

    Returns ``{row: {field: value}}`` — the flat labelled names of the
    metrics registry pivoted back into per-entity rows for the tables.
    """
    rows = {}
    for name, value in counters.items():
        base, labels = split_name(name)
        if not base.startswith(prefix + ".") or not labels:
            continue
        row = next(iter(labels.values()))
        rows.setdefault(row, {})[base[len(prefix) + 1:]] = value
    return rows


def print_telemetry(outcome):
    """Render every telemetry table from the run's metrics registry snapshot.

    One source: the engine's folded :class:`~repro.obs.MetricsRegistry`
    (``outcome.metrics``) — lane settlements, lock costs, per-worker
    executor traffic and step-4 analysis work all arrive through the same
    fold, so the tables below are pivots of one flat counter namespace.
    """
    counters = outcome.metrics["counters"]
    lanes = {}
    for name, value in counters.items():
        base, labels = split_name(name)
        if base == "engine.settled":
            lanes.setdefault(labels["lane"], {})[labels["status"]] = value
    print(format_table(
        ["Lane", "Admitted", "Rejected", "Expired", "Parked"],
        [
            (
                lane,
                str(int(statuses.get("admitted", 0))),
                str(int(statuses.get("rejected", 0))),
                str(int(statuses.get("expired", 0))),
                str(int(statuses.get("parked", 0))),
            )
            for lane, statuses in sorted(lanes.items())
        ],
        title="Engine telemetry (per settlement lane)",
    ))
    locks = _pivot_counters(counters, "locks")
    lock_rows = [
        (
            region,
            f"{int(stats.get('acquisitions', 0))}",
            f"{stats.get('wait_s', 0.0) * 1e3:.2f} ms",
            f"{stats.get('hold_s', 0.0) * 1e3:.2f} ms",
        )
        for region, stats in sorted(locks.items())
    ]
    if lock_rows:
        print(format_table(
            ["Region lock", "Acquisitions", "Waited", "Held"],
            lock_rows,
            title="Region lock telemetry",
        ))
    workers = _pivot_counters(counters, "executor")
    worker_rows = [
        (
            worker,
            f"{int(stats.get('full_dispatches', 0))}",
            f"{int(stats.get('delta_dispatches', 0))}",
            f"{int(stats.get('requests', 0))}",
            f"{stats.get('snapshot_bytes', 0) / 1024:.1f} KiB",
            f"{stats.get('delta_dispatch_bytes', 0) / 1024:.1f} KiB",
            f"{stats.get('dispatch_bytes_saved', 0) / 1024:.1f} KiB",
            f"{stats.get('delta_bytes', 0) / 1024:.1f} KiB",
            f"{int(stats.get('stale_redecides', 0))}",
            f"{stats.get('worker_wall_s', 0.0) * 1e3:.2f} ms",
        )
        for worker, stats in sorted(workers.items())
    ]
    if worker_rows:
        print(format_table(
            ["Drain worker", "Fulls", "Deltas", "Requests", "Snapshots out",
             "Delta frames out", "Bytes saved", "Deltas in", "Stale", "Wall"],
            worker_rows,
            title="Process-executor telemetry (per worker)",
        ))
    analysis = {
        split_name(name)[0][len("analysis."):]: value
        for name, value in counters.items()
        if name.startswith("analysis.")
    }
    if analysis:
        print(format_table(
            ["Simulations", "Simulated events", "Cache hits", "Budget exhausted"],
            [(
                str(int(analysis.get("simulations_run", 0))),
                str(int(analysis.get("simulated_events", 0))),
                str(int(analysis.get("cache_hits", 0))),
                str(int(analysis.get("budget_exhausted", 0))),
            )],
            title="Step-4 analysis telemetry (engine + workers)",
        ))
    latency = outcome.metrics["histograms"].get("engine.request_latency_s")
    if latency and latency["count"]:
        mean_ms = latency["sum"] / latency["count"] * 1e3
        print(f"  request decide latency: {latency['count']} settled, "
              f"mean {mean_ms:.3f} ms (registry histogram)")


def run_overload(governor):
    """An 8x two-tier overload, with or without the shedding governor.

    High-priority (2) and low-priority (0) Poisson classes per region; the
    manager scores regions adaptively (composite residuals/pressure score
    plus rejection-feedback memory) and the engine, when given a governor,
    sheds low-priority arrivals before mapping work once the windowed
    admission rate drops below the floor.
    """
    platform = build_platform()
    partition = RegionPartition.grid(platform, REGIONS, REGIONS)
    manager = RuntimeResourceManager(
        platform,
        config=MapperConfig(analysis_iterations=3),
        partition=partition,
        region_scorer=RegionScorer.adaptive(),
    )
    engine = WorkloadEngine(manager, park_rejections=True, governor=governor)
    classes = [
        traffic.scaled(8.0)
        for traffic in priority_overload_mix(
            REGIONS,
            high_rate_per_s=80.0,
            low_rate_per_s=240.0,
            config=SyntheticConfig(
                stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP")
            ),
            admission_window_ns=5 * MILLISECOND,
            hold_range_ns=(3 * MILLISECOND, 8 * MILLISECOND),
        )
    ]
    workload = generate_workload(
        seed=2026, horizon_ns=25 * MILLISECOND, classes=classes, name="overload_x8"
    )
    return engine.run(workload)


def print_shedding_comparison():
    """Governor off vs on under the same 8x overload stream."""
    print("Load shedding under 8x overload (adaptive region scoring on):")
    rows = []
    for label, governor in (
        ("governor off", None),
        ("governor on", LoadSheddingGovernor(GovernorConfig(rate_floor=0.5))),
    ):
        outcome = run_overload(governor)
        rows.append(
            (
                label,
                f"{outcome.priority_admission_rate(2):6.1%}",
                f"{outcome.priority_admission_rate(0):6.1%}",
                str(len(outcome.shed)),
                str(len(outcome.expired)),
            )
        )
        if outcome.telemetry.governor is not None:
            snapshot = outcome.telemetry.governor
            print(
                f"  governor: shed={snapshot['shed']} transitions={snapshot['transitions']} "
                f"windowed rates={snapshot['rate_by_priority']}"
            )
    print(format_table(
        ["Config", "High-prio admit", "Low-prio admit", "Shed", "Expired"],
        rows,
        title="Protected-tier admission under overload",
    ))


def main():
    print("Bursty workload on a 4-region MPSoC, nominal load (x1):")
    outcome = run_workload(1.0)
    rows = []
    for record in outcome.records[:12]:
        rows.append(
            (
                f"{record.time_ns / MILLISECOND:6.2f} ms",
                record.application,
                record.status.value,
                record.reason[:44],
            )
        )
    print(format_table(["Time", "Application", "Outcome", "Reason"], rows,
                       title=f"Workload {outcome.workload!r} (first 12 outcomes)"))
    print()
    print(f"requests decided     : {outcome.decided}")
    print(f"admitted / rejected  : {len(outcome.admitted)} / "
          f"{len(outcome.rejected)} (+{len(outcome.expired)} expired)")
    print(f"departures           : {len(outcome.departures)}")
    print(f"parked re-maps saved : {outcome.parked_retries_skipped}")
    print(f"admission rate       : {outcome.admission_rate:.0%}")
    print(f"total energy         : {outcome.energy.total_energy_nj / 1e6:.3f} mJ over "
          f"{outcome.end_time_ns / MILLISECOND:.0f} ms")
    print()
    print_telemetry(outcome)
    print()

    print("Same workload, process-parallel drain (snapshot-out / delta-in):")
    process_outcome = run_workload(1.0, executor="process")
    identical = (
        process_outcome.decision_log() == outcome.decision_log()
        and process_outcome.departures == outcome.departures
    )
    print(f"  decision-identical to the threaded run: {identical}")
    print_telemetry(process_outcome)
    print()

    print("Admission rate vs offered load:")
    curve = []
    for factor in (0.5, 1.0, 2.0, 4.0):
        outcome = run_workload(factor)
        offered = offered_rate_per_s(traffic_classes(factor))
        curve.append((factor, offered, outcome))
    width = 40
    for factor, offered, outcome in curve:
        bar = "#" * round(outcome.admission_rate * width)
        print(
            f"  x{factor:<4g} {offered:7.0f} req/s  "
            f"[{bar:<{width}}] {outcome.admission_rate:6.1%}  "
            f"({len(outcome.admitted)}/{outcome.decided} admitted)"
        )
    print()
    print_shedding_comparison()


if __name__ == "__main__":
    main()
