#!/usr/bin/env python3
"""Run-time resource management with several streaming applications.

The paper's motivation (section 1.3) is that the set of co-running
applications is only known at run time.  This example plays a scenario on the
Figure-2 MPSoC: the HiperLAN/2 receiver starts, a digital-radio receiver
arrives while it is running (and is rejected — the platform is full), the
HiperLAN/2 receiver stops, and the digital-radio receiver is admitted on the
freed resources.  Admissions, rejections and the energy account are printed.

Run with:  python examples/multi_application_runtime.py
"""

from repro import MapperConfig, RuntimeResourceManager, Scenario, StartEvent, StopEvent, run_scenario
from repro.reporting import format_table
from repro.workloads import hiperlan2
from repro.workloads.receivers import build_drm_library, build_drm_receiver_als


def main():
    platform = hiperlan2.build_mpsoc()
    manager = RuntimeResourceManager(platform, config=MapperConfig(analysis_iterations=4))

    receiver = hiperlan2.build_receiver_als()
    receiver_library = hiperlan2.build_implementation_library()
    radio = build_drm_receiver_als()
    radio_library = build_drm_library()

    millisecond = 1_000_000.0
    scenario = (
        Scenario("wlan_then_radio", duration_ns=10 * millisecond)
        .add(StartEvent(time_ns=0.0, als=receiver, library=receiver_library))
        .add(StartEvent(time_ns=2 * millisecond, als=radio, library=radio_library))
        .add(StopEvent(time_ns=5 * millisecond, application=receiver.name))
        .add(StartEvent(time_ns=6 * millisecond, als=build_drm_receiver_als(),
                        library=radio_library))
    )

    outcome = run_scenario(manager, scenario)

    rows = []
    for name in outcome.admitted:
        rows.append((name, "admitted", ""))
    for name, reason in outcome.rejected:
        rows.append((name, "rejected", reason[:60]))
    print(format_table(["Application", "Decision", "Reason"], rows,
                       title=f"Scenario {outcome.scenario!r}"))
    print()
    print(f"admission rate : {outcome.admission_rate:.0%}")
    print(f"total energy   : {outcome.total_energy_nj / 1e6:.3f} mJ over "
          f"{outcome.end_time_ns / millisecond:.0f} ms")
    print(f"average power  : {outcome.energy.average_power_mw(outcome.end_time_ns):.1f} mW")
    print()

    print("Per-application energy:")
    for name, energy in outcome.energy.per_application_nj.items():
        print(f"  {name:20s} {energy / 1e6:.3f} mJ")

    print()
    print("Still running at the end of the scenario:")
    for app in manager.running_applications:
        print(f"  {app.name} ({app.power_mw():.1f} mW)")


if __name__ == "__main__":
    main()
