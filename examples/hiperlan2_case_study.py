#!/usr/bin/env python3
"""The paper's worked example, end to end (section 4 of the paper).

Reproduces, in order:

* Figure 1 — the HiperLAN/2 receiver KPN;
* Table 1  — the ARM/Montium implementation library;
* Figure 2 — the 3x3-mesh MPSoC;
* Table 2  — the step-2 processor-assignment iterations (cost 11 -> 9 -> 7);
* Figure 3 — the final mapped CSDF graph with router actors and buffers B_i;
* Section 4.5 — runtime and memory footprint of the mapper itself.

Run with:  python examples/hiperlan2_case_study.py
"""

from repro import SpatialMapper
from repro.reporting import energy_breakdown, experiments
from repro.workloads import hiperlan2


def main():
    for report in experiments.all_experiments():
        print("=" * 78)
        print(f"Experiment {report.experiment}")
        print("=" * 78)
        print(report.text)
        print()

    table2 = experiments.experiment_table2()
    trajectory = table2.data["cost_trajectory"]
    print(f"Step-2 cost trajectory (paper: 11 -> 11 -> 9 -> 7): {trajectory}")

    figure3 = experiments.experiment_figure3()
    print(f"Final mapping feasible: {figure3.data['feasible']}")
    print(f"Assignment: {figure3.data['assignment']}")
    print(f"Buffer capacities B_i: {figure3.data['buffer_capacities']}")
    print()

    # Where does the energy of the final mapping go?
    als, platform, library = hiperlan2.build_case_study()
    result = SpatialMapper(platform, library).map(als)
    print(energy_breakdown(result.mapping, als, platform).as_table())


if __name__ == "__main__":
    main()
