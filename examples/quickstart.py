#!/usr/bin/env python3
"""Quickstart: map a small streaming application onto a small MPSoC.

This example builds everything from scratch with the public API — a 2x2-mesh
platform with two general-purpose tiles and one DSP tile, a three-kernel
pipeline with per-tile-type implementations, and a QoS constraint — then runs
the run-time spatial mapper and prints the resulting mapping.

Run with:  python examples/quickstart.py
"""

from repro import (
    ApplicationLevelSpec,
    Channel,
    Implementation,
    ImplementationLibrary,
    KPNGraph,
    MapperConfig,
    PlatformBuilder,
    Process,
    ProcessKind,
    QoSConstraints,
    SpatialMapper,
)
from repro.csdf.phase import PhaseVector
from repro.reporting import render_mapping, render_platform


def build_platform():
    """A 2x2 mesh with two GPP tiles, one DSP tile and one I/O tile."""
    return (
        PlatformBuilder("quickstart_mpsoc")
        .mesh(2, 2, link_capacity_bits_per_s=1e9)
        .tile_type("GPP", frequency_mhz=200, description="general-purpose core")
        .tile_type("DSP", frequency_mhz=150, description="signal-processing core")
        .tile_type("IO", frequency_mhz=100, is_processing=False)
        .tile("gpp0", "GPP", (0, 0))
        .tile("gpp1", "GPP", (1, 0))
        .tile("dsp0", "DSP", (0, 1))
        .tile("io0", "IO", (1, 1))
        .build()
    )


def build_application():
    """A source -> filter -> fft -> detect -> sink pipeline with a 20 us period."""
    kpn = KPNGraph("sensor_pipeline")
    kpn.add_process(Process("source", ProcessKind.SOURCE, pinned_tile="io0"))
    kpn.add_process(Process("filter"))
    kpn.add_process(Process("fft"))
    kpn.add_process(Process("detect"))
    kpn.add_process(Process("sink", ProcessKind.SINK, pinned_tile="io0"))
    kpn.add_channel(Channel("c0", "source", "filter", tokens_per_iteration=64))
    kpn.add_channel(Channel("c1", "filter", "fft", tokens_per_iteration=64))
    kpn.add_channel(Channel("c2", "fft", "detect", tokens_per_iteration=32))
    kpn.add_channel(Channel("c3", "detect", "sink", tokens_per_iteration=4))
    return ApplicationLevelSpec(kpn=kpn, qos=QoSConstraints(period_ns=20_000.0))


def build_library():
    """Implementations: every kernel runs on the GPP; filter and fft also on the DSP."""

    def implementation(process, tile_type, tokens_in, tokens_out, wcet, energy):
        return Implementation(
            process=process,
            tile_type=tile_type,
            wcet_cycles=PhaseVector([1.0, wcet - 2.0, 1.0]),
            input_rates={"*": PhaseVector([tokens_in, 0.0, 0.0])},
            output_rates={"*": PhaseVector([0.0, 0.0, tokens_out])},
            energy_nj_per_iteration=energy,
            memory_bytes=4096,
        )

    return ImplementationLibrary(
        [
            implementation("filter", "GPP", 64, 64, wcet=900, energy=120.0),
            implementation("filter", "DSP", 64, 64, wcet=400, energy=55.0),
            implementation("fft", "GPP", 64, 32, wcet=1500, energy=210.0),
            implementation("fft", "DSP", 64, 32, wcet=600, energy=90.0),
            implementation("detect", "GPP", 32, 4, wcet=300, energy=40.0),
        ]
    )


def main():
    platform = build_platform()
    application = build_application()
    library = build_library()

    print(render_platform(platform))
    print()

    mapper = SpatialMapper(platform, library, MapperConfig())
    result = mapper.map(application)

    print(f"mapping status : {result.status.value}")
    print(f"energy         : {result.energy_nj_per_iteration:.1f} nJ per iteration")
    print(f"manhattan cost : {result.manhattan_cost:g}")
    if result.feasibility is not None:
        print(
            "throughput     : achieved period "
            f"{result.feasibility.achieved_period_ns:.0f} ns "
            f"(required {application.period_ns:.0f} ns)"
        )
    print(f"mapper runtime : {result.runtime_s * 1e3:.2f} ms")
    print()
    print(render_mapping(result.mapping, platform))


if __name__ == "__main__":
    main()
