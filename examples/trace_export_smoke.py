#!/usr/bin/env python3
"""Trace-export smoke: run a small traced workload, export it, validate it.

CI's observability gate: drives a generated two-region workload through the
process executor with tracing and metrics fully on (sample rate 1.0),
writes the JSONL export, and validates every line against the schema —
span ids resolve, children nest inside their parents' windows, and worker
spans only pass the nesting check if the engine re-anchored them into
their dispatch window.  Exits non-zero on any problem, so a regression in
trace propagation or re-anchoring fails the build; the export itself is
uploaded as a CI artifact for inspection with ``python -m repro.obs.report``.

Run with:  python examples/trace_export_smoke.py [OUT.jsonl]
"""

import sys

from repro import MapperConfig, ObsConfig, ProcessRegionExecutor, RuntimeResourceManager, WorkloadEngine
from repro.obs import validate_export, write_export
from repro.platform.regions import RegionPartition
from repro.workloads.arrivals import BurstyArrivals, PoissonArrivals, TrafficClass, generate_workload
from repro.workloads.synthetic import SyntheticConfig, generate_region_mesh

MILLISECOND = 1e6


def run_traced_workload():
    """One obs-on process-executor run over a 2x1-region mesh."""
    platform = generate_region_mesh(2, 3, name="trace_smoke")
    partition = RegionPartition.grid(platform, 2, 2)
    manager = RuntimeResourceManager(
        platform, config=MapperConfig(analysis_iterations=3), partition=partition
    )
    config = SyntheticConfig(stages=2, period_ns=100_000.0, tile_types=("GPP", "DSP"))
    classes = [
        TrafficClass(
            "steady",
            PoissonArrivals(rate_per_s=600.0),
            config=config,
            source_tile="io_r0_0",
            sink_tile="io_r0_0",
            hold_range_ns=(2 * MILLISECOND, 5 * MILLISECOND),
        ),
        TrafficClass(
            "bursty",
            BurstyArrivals(burst_rate_per_s=200.0, burst_size_range=(2, 4)),
            config=config,
            source_tile="io_r1_0",
            sink_tile="io_r1_0",
            hold_range_ns=(2 * MILLISECOND, 5 * MILLISECOND),
        ),
    ]
    workload = generate_workload(
        seed=2008, horizon_ns=10 * MILLISECOND, classes=classes, name="trace-smoke"
    )
    executor = ProcessRegionExecutor(partition, workers=2)
    engine = WorkloadEngine(
        manager, executor=executor, obs=ObsConfig(sample_rate=1.0)
    )
    try:
        return engine.run(workload)
    finally:
        executor.close()


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "trace_export_smoke.jsonl"
    outcome = run_traced_workload()
    lines = write_export(
        out_path, outcome.spans, metrics=outcome.metrics, workload=outcome.workload
    )
    worker_spans = [span for span in outcome.spans if span.process != "engine"]
    print(
        f"{outcome.workload}: {len(outcome.records)} settled, "
        f"{len(outcome.spans)} spans ({len(worker_spans)} from workers), "
        f"{lines} export lines -> {out_path}"
    )
    if not outcome.records:
        print("SMOKE FAILED: workload settled no requests", file=sys.stderr)
        return 1
    if not worker_spans:
        print("SMOKE FAILED: no worker spans crossed the process boundary", file=sys.stderr)
        return 1
    problems = validate_export(out_path)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(f"{out_path}: valid ({lines} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
