#!/usr/bin/env python3
"""Synthetic design-space exploration: heuristic versus baselines.

The paper's conclusions call for synthetic benchmarks "based on the class of
applications that can reasonably be expected for MPSoCs in the future".  This
example generates random streaming applications and random mesh platforms of
growing size, maps each application with the run-time heuristic and with three
baselines (first-fit only, random placement, simulated annealing), and prints
energy and mapping-time comparisons.

Run with:  python examples/synthetic_design_space.py
"""

import time

from repro import MapperConfig, SpatialMapper
from repro.baselines import FirstFitMapper, RandomMapper, SimulatedAnnealingMapper
from repro.mapping.result import MappingStatus
from repro.reporting import format_table
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_platform

CONFIG = MapperConfig(analysis_iterations=3)


def evaluate(name, mapper, als):
    begin = time.perf_counter()
    result = mapper.map(als)
    elapsed_ms = (time.perf_counter() - begin) * 1e3
    feasible = result.status is MappingStatus.FEASIBLE
    return {
        "mapper": name,
        "feasible": feasible,
        "energy": result.energy_nj_per_iteration if feasible else float("nan"),
        "time_ms": elapsed_ms,
    }


def main():
    rows = []
    for mesh in (3, 4, 5):
        for seed in (1, 2):
            app = generate_application(
                seed=seed,
                config=SyntheticConfig(stages=mesh + 2, period_ns=40_000.0),
            )
            platform = generate_platform(seed=seed + 100, width=mesh, height=mesh)
            mappers = [
                ("heuristic", SpatialMapper(platform, app.library, CONFIG)),
                ("first-fit", FirstFitMapper(platform, app.library, CONFIG)),
                ("random(10)", RandomMapper(platform, app.library, CONFIG, trials=10, seed=seed)),
                ("annealing", SimulatedAnnealingMapper(platform, app.library, CONFIG,
                                                       iterations=300, seed=seed)),
            ]
            for name, mapper in mappers:
                outcome = evaluate(name, mapper, app.als)
                rows.append(
                    (
                        f"{mesh}x{mesh}",
                        app.als.name,
                        name,
                        "yes" if outcome["feasible"] else "no",
                        f"{outcome['energy']:.0f}" if outcome["feasible"] else "-",
                        f"{outcome['time_ms']:.1f}",
                    )
                )
    print(
        format_table(
            ["Mesh", "Application", "Mapper", "Feasible", "Energy [nJ/iter]", "Time [ms]"],
            rows,
            title="Synthetic design-space exploration",
            align_right=(4, 5),
        )
    )


if __name__ == "__main__":
    main()
