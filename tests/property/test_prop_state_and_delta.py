"""Property tests of the incremental resource-accounting core.

Two invariants protect the O(1) fast paths introduced for run-time admission:

* the cached per-tile/per-link aggregates of :class:`PlatformState` must
  always equal the sums recomputed from the raw allocation lists, across
  arbitrary interleavings of allocate / release / transaction commit /
  transaction rollback;
* a rolled-back transaction must leave the state bit-identical to the
  snapshot taken before it opened;
* the delta cost used by the step-2 local search must equal the full
  Manhattan-cost recompute for random move/swap sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PlatformError
from repro.mapping.assignment import ProcessAssignment
from repro.mapping.cost import (
    incident_channels,
    manhattan_cost,
    manhattan_cost_delta,
)
from repro.mapping.mapping import Mapping
from repro.platform.state import LinkAllocation, PlatformState, ProcessAllocation
from repro.spatialmapper.step1_implementation import select_implementations
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_platform


def _recomputed_aggregates(state: PlatformState):
    """Ground-truth aggregates, re-summed from the raw allocation lists."""
    tiles = {}
    for name, allocations in state._tile_occupants.items():
        tiles[name] = (
            len(allocations),
            sum(a.memory_bytes for a in allocations),
            sum(a.compute_cycles_per_iteration for a in allocations),
        )
    links = {
        name: sum(a.bits_per_s for a in allocations)
        for name, allocations in state._link_allocations.items()
    }
    return tiles, links


def _assert_aggregates_consistent(state: PlatformState) -> None:
    tiles, links = _recomputed_aggregates(state)
    for name, (slots, memory, cycles) in tiles.items():
        assert state.used_process_slots(name) == slots
        assert state.used_memory_bytes(name) == memory
        assert state.used_compute_cycles_per_iteration(name) == cycles
    for name, load in links.items():
        assert state.link_load_bits_per_s(name) == load


def _snapshot(state: PlatformState):
    """Bit-exact snapshot of everything observable about the state."""
    return (
        {name: tuple(a) for name, a in state._tile_occupants.items()},
        {name: tuple(a) for name, a in state._link_allocations.items()},
        dict(state._used_slots),
        dict(state._used_memory),
        dict(state._used_cycles),
        dict(state._link_load),
    )


# One operation: (kind, seed material) drawn from small integer spaces so
# sequences revisit the same tiles/links/applications often.
operations = st.lists(
    st.tuples(
        st.sampled_from(["process", "link", "release", "txn_commit", "txn_rollback"]),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


class TestStateAggregates:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_aggregates_match_recomputed_sums(self, ops):
        platform = generate_platform(seed=7, width=3, height=3)
        state = PlatformState(platform)
        processing = [t.name for t in platform.processing_tiles()]
        links = [link.name for link in platform.noc.links]

        def apply_ops(remaining, depth=0):
            counter = 0
            while remaining:
                kind, a, b = remaining.pop(0)
                counter += 1
                application = f"app{b}"
                if kind == "process":
                    tile = processing[a % len(processing)]
                    try:
                        state.allocate_process(
                            ProcessAllocation(
                                application,
                                f"p{depth}_{counter}",
                                tile,
                                memory_bytes=(a + 1) * 512,
                                compute_cycles_per_iteration=float(a) * 10.5,
                            )
                        )
                    except PlatformError:
                        pass
                elif kind == "link":
                    link = links[a % len(links)]
                    try:
                        state.allocate_link(
                            LinkAllocation(application, f"c{depth}_{counter}", link, (a + 1) * 1e6)
                        )
                    except PlatformError:
                        pass
                elif kind == "release":
                    state.release_application(application)
                elif kind in ("txn_commit", "txn_rollback") and depth < 3:
                    inner = remaining[: a + 1]
                    del remaining[: a + 1]
                    before = _snapshot(state)
                    with state.transaction() as txn:
                        apply_ops(inner, depth + 1)
                        if kind == "txn_rollback":
                            txn.rollback()
                    if kind == "txn_rollback":
                        assert _snapshot(state) == before
                _assert_aggregates_consistent(state)

        apply_ops(list(ops))
        _assert_aggregates_consistent(state)

    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_rollback_restores_state_bit_identically(self, ops):
        platform = generate_platform(seed=11, width=3, height=3)
        state = PlatformState(platform)
        processing = [t.name for t in platform.processing_tiles()]
        links = [link.name for link in platform.noc.links]

        # Seed some committed load so rollbacks restore non-trivial entries.
        state.allocate_process(ProcessAllocation("base", "p0", processing[0], memory_bytes=256))
        state.allocate_link(LinkAllocation("base", "c0", links[0], 1e6))

        before = _snapshot(state)
        with state.transaction() as txn:
            for index, (kind, a, b) in enumerate(ops):
                try:
                    if kind in ("process", "release", "txn_commit"):
                        state.allocate_process(
                            ProcessAllocation(
                                f"app{b}",
                                f"q{index}",
                                processing[a % len(processing)],
                                memory_bytes=a * 128,
                            )
                        )
                    elif kind == "link":
                        state.allocate_link(
                            LinkAllocation(f"app{b}", f"d{index}", links[a % len(links)], 5e5)
                        )
                    else:
                        state.release_application("base")
                except PlatformError:
                    pass
            txn.rollback()
        assert _snapshot(state) == before

    def test_exception_rolls_back_automatically(self):
        platform = generate_platform(seed=13, width=3, height=3)
        state = PlatformState(platform)
        tile = platform.processing_tiles()[0].name
        before = _snapshot(state)
        try:
            with state.transaction():
                state.allocate_process(ProcessAllocation("app", "p", tile))
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert _snapshot(state) == before

    def test_committed_inner_transaction_undone_by_outer_rollback(self):
        platform = generate_platform(seed=17, width=3, height=3)
        state = PlatformState(platform)
        tile = platform.processing_tiles()[0].name
        before = _snapshot(state)
        with state.transaction() as outer:
            with state.transaction():
                state.allocate_process(ProcessAllocation("app", "p", tile))
            assert state.used_process_slots(tile) == 1
            outer.rollback()
        assert _snapshot(state) == before


class TestDeltaCost:
    @given(
        st.integers(min_value=0, max_value=30),
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
            min_size=1,
            max_size=12,
        ),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_delta_equals_full_recompute_for_moves_and_swaps(self, seed, steps, weighted):
        app = generate_application(seed, config=SyntheticConfig(stages=5, period_ns=50_000.0))
        platform = generate_platform(seed + 500, width=4, height=4)
        step1 = select_implementations(app.als, platform, app.library)
        mapping = step1.mapping
        processes = [
            p.name
            for p in app.als.kpn.mappable_processes()
            if mapping.is_assigned(p.name) and mapping.assignment(p.name).implementation
        ]
        if not processes:
            return
        incident = incident_channels(app.als)
        tiles_by_type = {
            type_.name: [t.name for t in platform.tiles_of_type(type_.name) if t.is_processing]
            for type_ in platform.tile_types()
        }

        for a, b in steps:
            process_a = processes[a % len(processes)]
            process_b = processes[b % len(processes)]
            assignment_a = mapping.assignment(process_a)
            tile_type = assignment_a.implementation.tile_type
            same_type_tiles = tiles_by_type.get(tile_type, [])
            if process_a != process_b and (
                mapping.assignment(process_b).implementation.tile_type == tile_type
            ):
                # Swap the two processes.
                moves = {
                    process_a: mapping.tile_of(process_b),
                    process_b: mapping.tile_of(process_a),
                }
            elif same_type_tiles:
                moves = {process_a: same_type_tiles[b % len(same_type_tiles)]}
            else:
                continue

            before = manhattan_cost(mapping, app.als, platform, weighted_by_tokens=weighted)
            delta = manhattan_cost_delta(
                mapping, app.als, platform, moves, incident, weighted_by_tokens=weighted
            )
            for process_name, tile_name in moves.items():
                mapping.assign(mapping.assignment(process_name).moved_to(tile_name))
            after = manhattan_cost(mapping, app.als, platform, weighted_by_tokens=weighted)
            assert before + delta == after

    def test_delta_on_partial_mapping_skips_unplaced_endpoints(self):
        app = generate_application(3, config=SyntheticConfig(stages=4, period_ns=50_000.0))
        platform = generate_platform(503, width=4, height=4)
        step1 = select_implementations(app.als, platform, app.library)
        mapping = step1.mapping
        processes = [
            p.name
            for p in app.als.kpn.mappable_processes()
            if mapping.is_assigned(p.name) and mapping.assignment(p.name).implementation
        ]
        victim = processes[-1]
        mover = processes[0]
        partial = Mapping(app.als.name)
        for assignment in mapping.assignments:
            if assignment.process != victim:
                partial.assign(assignment)
        incident = incident_channels(app.als)
        tile_type = mapping.assignment(mover).implementation.tile_type
        target = [
            t.name
            for t in platform.tiles_of_type(tile_type)
            if t.is_processing and t.name != partial.tile_of(mover)
        ]
        if not target:
            return
        moves = {mover: target[0]}
        before = manhattan_cost(partial, app.als, platform)
        delta = manhattan_cost_delta(partial, app.als, platform, moves, incident)
        partial.assign(partial.assignment(mover).moved_to(target[0]))
        assert before + delta == manhattan_cost(partial, app.als, platform)


class TestStep2DeltaAgainstFullSearch:
    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=15, deadline=None)
    def test_refinement_cost_matches_full_recompute(self, seed):
        """The cost step 2 reports after its delta-driven search must equal a
        from-scratch recompute on the refined mapping."""
        from repro.spatialmapper.step2_tile_assignment import refine_tile_assignment

        app = generate_application(seed, config=SyntheticConfig(stages=4, period_ns=50_000.0))
        platform = generate_platform(seed + 900, width=4, height=4)
        step1 = select_implementations(app.als, platform, app.library)
        result = refine_tile_assignment(step1.mapping, app.als, platform)
        assert result.final_cost == manhattan_cost(result.mapping, app.als, platform)

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_step3_leaves_live_state_untouched(self, seed):
        """Routing journals its tentative reservations into the caller's state
        and must roll every one of them back."""
        from repro.spatialmapper.step3_routing import route_channels

        app = generate_application(seed, config=SyntheticConfig(stages=4, period_ns=50_000.0))
        platform = generate_platform(seed + 700, width=4, height=4)
        state = PlatformState(platform)
        tile = platform.processing_tiles()[0].name
        link = platform.noc.links[0].name
        state.allocate_process(ProcessAllocation("other", "p", tile, memory_bytes=64))
        state.allocate_link(LinkAllocation("other", "c", link, 2e6))
        step1 = select_implementations(app.als, platform, app.library, state=state)
        before = _snapshot(state)
        route_channels(step1.mapping, app.als, platform, state=state)
        assert _snapshot(state) == before
