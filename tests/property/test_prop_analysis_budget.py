"""Property-based tests of the analysis-budget subsystem.

Random CSDF chains (with initial tokens, so head-start transients occur) pin
the three decision-identity claims of :mod:`repro.csdf.analysis.budget`:

* the cached, budgeted, gain-ordered engine minimisation is bit-identical to
  the functional ``minimize_buffer_capacities(order="gain")``;
* the structural fingerprint is stable under rename-preserving copies and
  capacity changes never leak into it;
* the early-exit sustainability check returns the same verdict as the full
  simulation for periods below, at and above the feasible rate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf.analysis.budget import AnalysisEngine
from repro.csdf.analysis.buffers import minimize_buffer_capacities
from repro.csdf.analysis.throughput import is_period_sustainable, minimal_period_ns
from repro.csdf.builder import CSDFBuilder


@st.composite
def random_chain(draw, with_tokens=True):
    """A random acyclic chain of 2-5 actors with random rates and tokens."""
    length = draw(st.integers(min_value=2, max_value=5))
    builder = CSDFBuilder("random_chain")
    for index in range(length):
        phases = draw(st.integers(min_value=1, max_value=3))
        times = [draw(st.integers(min_value=1, max_value=20)) for _ in range(phases)]
        builder.actor(f"a{index}", [float(t) for t in times])
    for index in range(length - 1):
        production = draw(st.integers(min_value=1, max_value=4))
        consumption = draw(st.integers(min_value=1, max_value=4))
        tokens = draw(st.integers(min_value=0, max_value=3)) if with_tokens else 0
        builder.edge(
            f"a{index}",
            f"a{index + 1}",
            production=[production],
            consumption=[consumption],
            initial_tokens=tokens,
        )
    return builder.build()


def renamed_copy(graph):
    """The same structure rebuilt under fresh actor/edge/graph names."""
    builder = CSDFBuilder("renamed_twin")
    names = {actor.name: f"n{i}" for i, actor in enumerate(graph.actors)}
    for actor in graph.actors:
        builder.actor(
            names[actor.name], list(actor.execution_times_ns.values), role=actor.role
        )
    for edge in graph.edges:
        builder.edge(
            names[edge.source],
            names[edge.target],
            production=list(edge.production_rates.values),
            consumption=list(edge.consumption_rates.values),
            initial_tokens=edge.initial_tokens,
        )
    return builder.build()


class TestEngineIdentity:
    @given(random_chain(), st.floats(min_value=1.02, max_value=1.5))
    @settings(max_examples=25, deadline=None)
    def test_engine_minimize_matches_functional(self, graph, factor):
        period = minimal_period_ns(graph, iterations=8) * factor
        engine = AnalysisEngine()
        assert engine.minimize_buffer_capacities(
            graph, period, iterations=6
        ) == minimize_buffer_capacities(graph, period, iterations=6, order="gain")

    @given(random_chain(), st.floats(min_value=1.02, max_value=1.5))
    @settings(max_examples=15, deadline=None)
    def test_warm_cache_changes_nothing_but_the_counters(self, graph, factor):
        period = minimal_period_ns(graph, iterations=8) * factor
        engine = AnalysisEngine()
        cold = engine.minimize_buffer_capacities(graph, period, iterations=6)
        after_cold = engine.snapshot()
        warm = engine.minimize_buffer_capacities(graph, period, iterations=6)
        after_warm = engine.snapshot()
        assert warm == cold
        assert after_warm["simulations_run"] == after_cold["simulations_run"]
        assert after_warm["cache_hits"] > after_cold["cache_hits"]


class TestFingerprintProperties:
    @given(random_chain())
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_ignores_all_names(self, graph):
        assert renamed_copy(graph).structural_fingerprint() == graph.structural_fingerprint()

    @given(random_chain(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_capacity_changes_never_touch_the_fingerprint(self, graph, capacity):
        before = graph.structural_fingerprint()
        bounded = graph.copy("bounded")
        for edge in graph.edges:
            floor = max(edge.production_rates.max(), edge.consumption_rates.max(),
                        edge.initial_tokens, capacity)
            bounded.replace_edge(edge.with_capacity(floor))
        assert bounded.structural_fingerprint() == before
        assert graph.capacity_vector() == tuple(None for _ in graph.edges)


class TestEarlyExitVerdictIdentity:
    @given(
        random_chain(),
        st.sampled_from([0.7, 0.95, 1.0, 1.05, 1.5]),
        st.integers(min_value=4, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_early_exit_matches_full_run(self, graph, factor, iterations):
        period = minimal_period_ns(graph, iterations=8) * factor
        full = is_period_sustainable(graph, period, iterations=iterations)
        early = is_period_sustainable(
            graph, period, iterations=iterations, early_exit=True
        )
        assert early == full
