"""Property tests of the staged admission pipeline's caching layer.

The load-bearing invariant of the mapper cache is *bit-identity*: a result
served from the cache must be indistinguishable from re-running the full
four-step search against the same platform state.  The fingerprint makes
"the same state" detectable from the O(1) aggregates alone, so the property
exercises arbitrary admission histories: admit a random prefix of a
synthetic workload, then compare a cache hit against a fresh, cache-less
mapping for the next application — globally and region-restricted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.result import MappingResult
from repro.platform.regions import RegionPartition
from repro.platform.state import PlatformState, ProcessAllocation
from repro.spatialmapper.cache import MapperCache
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_platform,
    generate_scenario,
)

CONFIG = MapperConfig(analysis_iterations=3)
APP_CONFIG = SyntheticConfig(stages=2, period_ns=100_000.0)


def result_digest(result: MappingResult) -> tuple:
    """Everything observable about a mapping result except wall-clock time."""
    return (
        result.status,
        round(result.energy_nj_per_iteration, 9),
        result.manhattan_cost,
        result.iterations,
        tuple(
            (
                a.process,
                a.tile,
                a.implementation.name if a.implementation else None,
            )
            for a in result.mapping.assignments
        ),
        tuple(
            (r.channel, r.source_tile, r.target_tile, r.path, r.required_bits_per_s)
            for r in result.mapping.routes
        ),
        tuple(sorted(result.mapping.buffer_capacities.items())),
        (
            result.feasibility.achieved_period_ns,
            result.feasibility.satisfied,
            result.feasibility.reason,
        )
        if result.feasibility
        else None,
        tuple(result.diagnostics),
    )


@settings(max_examples=12, deadline=None)
@given(
    platform_seed=st.integers(min_value=0, max_value=50),
    workload_seed=st.integers(min_value=0, max_value=50),
    prefix=st.integers(min_value=0, max_value=4),
)
def test_cache_hit_is_bit_identical_to_fresh_map(platform_seed, workload_seed, prefix):
    platform = generate_platform(seed=platform_seed, width=5, height=5)
    applications = generate_scenario(
        seed=workload_seed, application_count=prefix + 1, config=APP_CONFIG
    )
    state = PlatformState(platform)

    # Random admission history: commit a prefix of the workload.
    for app in applications[:prefix]:
        mapper = SpatialMapper(platform, app.library, CONFIG)
        result = mapper.map(app.als, state)
        if result.is_feasible:
            for assignment in result.mapping.assignments:
                if assignment.implementation is None:
                    continue
                state.allocate_process(
                    ProcessAllocation(
                        application=app.als.name,
                        process=assignment.process,
                        tile=assignment.tile,
                        memory_bytes=assignment.implementation.memory_bytes,
                        compute_cycles_per_iteration=assignment.implementation.total_wcet_cycles,
                    )
                )

    target = applications[prefix]
    fresh_mapper = SpatialMapper(platform, target.library, CONFIG)
    cached_mapper = SpatialMapper(
        platform, target.library, CONFIG, cache=MapperCache()
    )

    fresh = fresh_mapper.map(target.als, state)
    warmup = cached_mapper.map(target.als, state)  # populates the cache
    hit = cached_mapper.map(target.als, state)

    assert cached_mapper.cache.stats.hits == 1
    assert result_digest(warmup) == result_digest(fresh)
    assert result_digest(hit) == result_digest(fresh)


@settings(max_examples=10, deadline=None)
@given(
    platform_seed=st.integers(min_value=0, max_value=50),
    workload_seed=st.integers(min_value=0, max_value=50),
)
def test_region_restricted_cache_hit_is_bit_identical(platform_seed, workload_seed):
    platform = generate_platform(
        seed=platform_seed, width=6, height=6, io_positions=((0, 0), (1, 1))
    )
    partition = RegionPartition.grid(platform, 2, 1)
    region = partition.regions[0]  # contains both io tiles
    app = generate_scenario(seed=workload_seed, application_count=1, config=APP_CONFIG)[0]
    state = PlatformState(platform)

    fresh_mapper = SpatialMapper(platform, app.library, CONFIG)
    cached_mapper = SpatialMapper(platform, app.library, CONFIG, cache=MapperCache())

    fresh = fresh_mapper.map(app.als, state, region=region)
    warmup = cached_mapper.map(app.als, state, region=region)
    hit = cached_mapper.map(app.als, state, region=region)

    assert cached_mapper.cache.stats.hits == 1
    assert result_digest(warmup) == result_digest(fresh)
    assert result_digest(hit) == result_digest(fresh)
    # Region-restricted placement and routing must stay inside the region.
    for assignment in hit.mapping.assignments:
        process = app.als.kpn.process(assignment.process)
        if process.is_pinned:
            continue
        assert assignment.tile in region
    for route in hit.mapping.routes:
        for position in route.path:
            assert position in region.positions


@settings(max_examples=10, deadline=None)
@given(
    platform_seed=st.integers(min_value=0, max_value=50),
    workload_seed=st.integers(min_value=0, max_value=50),
)
def test_fingerprint_equals_iff_aggregates_equal(platform_seed, workload_seed):
    """Allocate-then-release returns the fingerprint to its previous value."""
    platform = generate_platform(seed=platform_seed, width=4, height=4)
    app = generate_scenario(seed=workload_seed, application_count=1, config=APP_CONFIG)[0]
    state = PlatformState(platform)
    empty = state.fingerprint()
    mapper = SpatialMapper(platform, app.library, CONFIG)
    result = mapper.map(app.als, state)
    if not result.is_feasible:
        return
    for assignment in result.mapping.assignments:
        if assignment.implementation is None:
            continue
        state.allocate_process(
            ProcessAllocation(
                application=app.als.name,
                process=assignment.process,
                tile=assignment.tile,
                memory_bytes=assignment.implementation.memory_bytes,
                compute_cycles_per_iteration=assignment.implementation.total_wcet_cycles,
            )
        )
    occupied = state.fingerprint()
    assert occupied != empty
    state.release_application(app.als.name)
    assert state.fingerprint() == empty
