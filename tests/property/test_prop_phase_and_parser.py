"""Property-based tests for phase vectors and the phase-notation parser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appmodel.parser import format_phase_notation, parse_phase_notation
from repro.csdf.phase import PhaseVector, expand_phase_spec

phase_values = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=40
)


class TestPhaseVectorProperties:
    @given(phase_values)
    def test_total_equals_sum(self, values):
        assert PhaseVector(values).total() == sum(values)

    @given(phase_values)
    def test_cyclic_access_wraps(self, values):
        vector = PhaseVector(values)
        for offset in range(3):
            for index in range(len(values)):
                assert vector.at(index + offset * len(values)) == values[index]

    @given(phase_values, st.integers(min_value=1, max_value=4))
    def test_repeated_scales_total(self, values, times):
        vector = PhaseVector(values)
        assert vector.repeated(times).total() == vector.total() * times
        assert len(vector.repeated(times)) == len(vector) * times

    @given(phase_values)
    def test_compact_str_roundtrips_through_parser(self, values):
        vector = PhaseVector(values)
        parsed = parse_phase_notation(vector.compact_str())
        assert list(parsed) == [float(v) for v in values]

    @given(phase_values, st.integers(min_value=0, max_value=5))
    def test_scaled_preserves_length(self, values, factor):
        vector = PhaseVector(values)
        scaled = vector.scaled(factor)
        assert len(scaled) == len(vector)
        assert scaled.total() == vector.total() * factor


class TestSpecExpansion:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=50),
                      st.integers(min_value=0, max_value=6)),
            min_size=1,
            max_size=6,
        )
    )
    def test_expansion_length_is_sum_of_counts(self, pairs):
        spec = [(value, count) for value, count in pairs]
        expanded = expand_phase_spec(spec)
        assert len(expanded) == sum(count for _, count in pairs)

    @given(st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=20))
    def test_formatter_parser_roundtrip(self, values):
        floats = tuple(float(v) for v in values)
        assert parse_phase_notation(format_phase_notation(floats)) == floats


class TestParserProperties:
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=60))
    @settings(max_examples=50)
    def test_run_length_notation(self, value, count):
        parsed = parse_phase_notation(f"<{value}^{count}>")
        assert len(parsed) == count
        assert all(v == value for v in parsed)

    @given(st.integers(min_value=1, max_value=96))
    def test_variable_binding(self, b):
        parsed = parse_phase_notation("<1^52, 73-b, 1^b>", {"b": min(b, 72)})
        bound = min(b, 72)
        assert len(parsed) == 52 + 1 + bound
        assert parsed[52] == 73 - bound
