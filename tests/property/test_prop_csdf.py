"""Property-based tests of CSDF repetition vectors and self-timed execution.

Random pipelines (chains of actors with random rates and execution times) are
generated and three invariants checked:

* the repetition vector balances every edge;
* self-timed execution completes exactly ``iterations x repetitions`` firings
  and never deadlocks on an acyclic chain;
* the measured steady-state period is never below the processor bound, and
  granting the observed buffer occupancies as capacities preserves the period.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf.analysis.buffers import apply_buffer_capacities, sufficient_buffer_capacities
from repro.csdf.analysis.simulation import simulate
from repro.csdf.analysis.throughput import (
    is_period_sustainable,
    minimal_period_ns,
    processor_bound_period_ns,
)
from repro.csdf.builder import CSDFBuilder
from repro.csdf.repetition import repetition_vector


@st.composite
def random_chain(draw):
    """A random acyclic chain of 2-5 actors with random rates."""
    length = draw(st.integers(min_value=2, max_value=5))
    builder = CSDFBuilder("random_chain")
    for index in range(length):
        phases = draw(st.integers(min_value=1, max_value=3))
        times = [draw(st.integers(min_value=1, max_value=20)) for _ in range(phases)]
        builder.actor(f"a{index}", [float(t) for t in times])
    for index in range(length - 1):
        production = draw(st.integers(min_value=1, max_value=4))
        consumption = draw(st.integers(min_value=1, max_value=4))
        builder.edge(f"a{index}", f"a{index + 1}",
                     production=[production], consumption=[consumption])
    return builder.build()


class TestRepetitionProperties:
    @given(random_chain())
    @settings(max_examples=40, deadline=None)
    def test_repetition_vector_balances_every_edge(self, graph):
        repetitions = repetition_vector(graph)
        for edge in graph.edges:
            source = graph.actor(edge.source)
            target = graph.actor(edge.target)
            produced = repetitions[edge.source] / source.phases * edge.total_production
            consumed = repetitions[edge.target] / target.phases * edge.total_consumption
            assert abs(produced - consumed) < 1e-9

    @given(random_chain())
    @settings(max_examples=40, deadline=None)
    def test_repetition_vector_is_minimal_positive(self, graph):
        repetitions = repetition_vector(graph)
        assert all(count >= 1 for count in repetitions.values())
        # Dividing all cycle counts by any integer > 1 must break integrality.
        cycle_counts = [repetitions[a.name] // graph.actor(a.name).phases for a in graph.actors]
        from math import gcd
        overall = cycle_counts[0]
        for value in cycle_counts[1:]:
            overall = gcd(overall, value)
        assert overall == 1


class TestSimulationProperties:
    @given(random_chain(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_chain_never_deadlocks_and_completes(self, graph, iterations):
        repetitions = repetition_vector(graph)
        result = simulate(graph, iterations=iterations)
        assert not result.deadlocked
        assert result.completed_iterations == iterations
        for actor in graph.actors:
            assert len(result.firings_of(actor.name)) == repetitions[actor.name] * iterations

    @given(random_chain())
    @settings(max_examples=30, deadline=None)
    def test_firings_of_one_actor_never_overlap(self, graph):
        result = simulate(graph, iterations=2)
        for records in result.firings.values():
            for previous, current in zip(records, records[1:]):
                assert current.start_ns >= previous.finish_ns - 1e-9

    @given(random_chain())
    @settings(max_examples=25, deadline=None)
    def test_period_not_below_processor_bound(self, graph):
        bound = processor_bound_period_ns(graph)
        period = minimal_period_ns(graph, iterations=6)
        assert period >= bound - 1e-6

    @given(random_chain())
    @settings(max_examples=20, deadline=None)
    def test_observed_occupancy_is_a_sufficient_capacity(self, graph):
        # Measure the steady-state period with a generous horizon, then ask for
        # a period 5% above it: the buffer capacities observed at that rate
        # must be enough for the bounded graph to keep up as well.
        period = minimal_period_ns(graph, iterations=12) * 1.05
        capacities = sufficient_buffer_capacities(graph, period_ns=period, iterations=8)
        bounded = apply_buffer_capacities(graph, capacities)
        assert is_period_sustainable(bounded, period, iterations=8)
