"""Property tests for the rejection-feedback memory and shape fingerprints.

Three invariants the adaptive region selection stands on:

* **decay monotonicity** — without new records, a shape's penalty can only
  fall as the decay clock advances (and never below zero);
* **fingerprint stability** — renaming every process and channel of an
  application (consistently) leaves its shape fingerprint unchanged, so
  the memory generalises across same-shaped arrivals;
* **rollback bit-identity** — any sequence of records/ticks/penalty reads
  performed inside an aborted transaction leaves the memory digest exactly
  as it was, including when an inner committed transaction folds into the
  aborted outer one.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appmodel.library import ImplementationLibrary
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.graph import KPNGraph
from repro.spatialmapper.region_score import RejectionMemory, shape_fingerprint
from repro.workloads.synthetic import SyntheticConfig, generate_application

REGIONS = ("r0", "r1", "r2")
SHAPES = (("a",), ("b",), ("c",))

records = st.lists(
    st.tuples(
        st.sampled_from(REGIONS),
        st.sampled_from(SHAPES),
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    ),
    max_size=12,
)

#: One memory operation: ("record", region, shape, weight) | ("tick",) |
#: ("penalty", region, shape).
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("record"),
            st.sampled_from(REGIONS),
            st.sampled_from(SHAPES),
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        ),
        st.tuples(st.just("tick")),
        st.tuples(st.just("penalty"), st.sampled_from(REGIONS), st.sampled_from(SHAPES)),
    ),
    max_size=20,
)


def apply_operations(memory, ops):
    for op in ops:
        if op[0] == "record":
            memory.record(op[1], op[2], weight=op[3])
        elif op[0] == "tick":
            memory.tick()
        else:
            memory.penalty(op[1], op[2])


class TestDecayMonotonicity:
    @given(
        entries=records,
        decay=st.floats(min_value=0.2, max_value=0.9),
        ticks=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_penalty_never_increases_without_new_records(self, entries, decay, ticks):
        memory = RejectionMemory(decay=decay, min_weight=1e-6)
        for region, shape, weight in entries:
            memory.record(region, shape, weight=weight)
        penalties = {
            (region, shape): memory.penalty(region, shape)
            for region in REGIONS
            for shape in SHAPES
        }
        for _ in range(ticks):
            memory.tick()
            for key in penalties:
                decayed = memory.penalty(*key)
                assert 0.0 <= decayed <= penalties[key] + 1e-12
                penalties[key] = decayed

    @given(entries=records, decay=st.floats(min_value=0.2, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_recording_only_raises_the_recorded_key(self, entries, decay):
        memory = RejectionMemory(decay=decay, min_weight=1e-6)
        for region, shape, weight in entries:
            before = memory.penalty(region, shape)
            others = {
                key: memory.penalty(*key)
                for key in ((r, s) for r in REGIONS for s in SHAPES)
                if key != (region, shape)
            }
            memory.record(region, shape, weight=weight)
            assert memory.penalty(region, shape) >= before + weight - 1e-9
            for key, value in others.items():
                assert memory.penalty(*key) == value


class TestShapeFingerprintStability:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        stages=st.integers(min_value=1, max_value=5),
        branches=st.integers(min_value=1, max_value=3),
        suffix=st.sampled_from(["_x", "_longer_suffix", "2"]),
        prefix=st.sampled_from(["", "zz_"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_invariant_under_consistent_renaming(
        self, seed, stages, branches, suffix, prefix
    ):
        config = SyntheticConfig(stages=stages, parallel_branches=branches)
        app = generate_application(seed, config, name=f"app{seed}")
        mapping = {
            p.name: f"{prefix}{p.name}{suffix}" for p in app.als.kpn.processes
        }
        kpn = KPNGraph(f"renamed{seed}")
        for process in app.als.kpn.processes:
            kpn.add_process(dataclasses.replace(process, name=mapping[process.name]))
        for channel in app.als.kpn.channels:
            kpn.add_channel(
                dataclasses.replace(
                    channel,
                    name=f"{prefix}{channel.name}{suffix}",
                    source=mapping[channel.source],
                    target=mapping[channel.target],
                )
            )
        library = ImplementationLibrary(
            dataclasses.replace(
                implementation, process=mapping[implementation.process], name=""
            )
            for implementation in app.library.implementations()
        )
        renamed = ApplicationLevelSpec(kpn=kpn, qos=app.als.qos, name=f"renamed{seed}")
        assert shape_fingerprint(app.als, app.library) == shape_fingerprint(
            renamed, library
        )


class TestRollbackBitIdentity:
    @given(prefix=operations, inside=operations, decay=st.floats(min_value=0.3, max_value=0.9))
    @settings(max_examples=60, deadline=None)
    def test_aborted_transaction_leaves_no_trace(self, prefix, inside, decay):
        memory = RejectionMemory(decay=decay)
        apply_operations(memory, prefix)
        before = memory.fingerprint()
        try:
            with memory.transaction():
                apply_operations(memory, inside)
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        assert memory.fingerprint() == before

    @given(
        prefix=operations,
        inner=operations,
        outer=operations,
        decay=st.floats(min_value=0.3, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_inner_commit_folds_into_aborted_outer(self, prefix, inner, outer, decay):
        memory = RejectionMemory(decay=decay)
        apply_operations(memory, prefix)
        before = memory.fingerprint()
        try:
            with memory.transaction():
                apply_operations(memory, outer)
                with memory.transaction():
                    apply_operations(memory, inner)
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        assert memory.fingerprint() == before

    @given(prefix=operations, inside=operations, decay=st.floats(min_value=0.3, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_committed_transaction_equals_unscoped_application(self, prefix, inside, decay):
        transactional = RejectionMemory(decay=decay)
        plain = RejectionMemory(decay=decay)
        for memory in (transactional, plain):
            apply_operations(memory, prefix)
        with transactional.transaction():
            apply_operations(transactional, inside)
        apply_operations(plain, inside)
        assert transactional.fingerprint() == plain.fingerprint()
