"""Property-based tests of NoC routing and the spatial mapper on synthetic workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.properties import is_adequate, is_adherent
from repro.mapping.result import MappingStatus
from repro.platform.routing import capacity_aware_shortest_path, manhattan_distance
from repro.platform.topology import build_mesh_noc
from repro.spatialmapper.config import MapperConfig
from repro.spatialmapper.mapper import SpatialMapper
from repro.workloads.synthetic import SyntheticConfig, generate_application, generate_platform

FAST = MapperConfig(analysis_iterations=2)

positions = st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))


class TestRoutingProperties:
    @given(positions, positions)
    @settings(max_examples=60, deadline=None)
    def test_path_length_equals_manhattan_on_empty_mesh(self, source, target):
        noc = build_mesh_noc(5, 5)
        path = capacity_aware_shortest_path(noc, source, target)
        assert len(path) - 1 == manhattan_distance(source, target)

    @given(positions, positions)
    @settings(max_examples=60, deadline=None)
    def test_path_is_connected_and_simple(self, source, target):
        noc = build_mesh_noc(5, 5)
        path = capacity_aware_shortest_path(noc, source, target)
        assert path[0] == tuple(source) and path[-1] == tuple(target)
        for a, b in zip(path, path[1:]):
            assert manhattan_distance(a, b) == 1
        assert len(set(path)) == len(path)


class TestMapperProperties:
    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=12, deadline=None)
    def test_mapper_output_is_always_structurally_valid(self, seed):
        """Whatever the synthetic instance, a FEASIBLE/ADHERENT result must
        actually satisfy the paper's adequacy and adherence definitions, and a
        feasible result must be complete."""
        app = generate_application(
            seed, config=SyntheticConfig(stages=4, period_ns=50_000.0)
        )
        platform = generate_platform(seed + 1000, width=4, height=4)
        result = SpatialMapper(platform, app.library, FAST).map(app.als)
        if result.status in (MappingStatus.FEASIBLE, MappingStatus.ADHERENT):
            assert is_adequate(result.mapping, platform, app.library)
            assert is_adherent(result.mapping, platform, app.library, als=app.als)
        if result.status is MappingStatus.FEASIBLE:
            assert result.mapping.is_complete(app.als)
            assert result.feasibility is not None
            assert result.feasibility.achieved_period_ns <= app.als.period_ns * (1 + 1e-9)

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=8, deadline=None)
    def test_mapper_is_deterministic(self, seed):
        app = generate_application(
            seed, config=SyntheticConfig(stages=3, period_ns=50_000.0)
        )
        platform = generate_platform(seed + 2000, width=3, height=3)
        first = SpatialMapper(platform, app.library, FAST).map(app.als)
        second = SpatialMapper(platform, app.library, FAST).map(app.als)
        assert first.status is second.status
        assert {a.process: a.tile for a in first.mapping.assignments} == {
            a.process: a.tile for a in second.mapping.assignments
        }
        assert first.energy_nj_per_iteration == second.energy_nj_per_iteration
