"""Property: corridor budget accounting is exactly reversible on rollback."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PlatformError
from repro.interregion.budgets import CorridorBudgets
from repro.platform.regions import RegionPartition
from repro.workloads.synthetic import generate_region_mesh

_PLATFORM = generate_region_mesh(2, 4)
_PARTITION = RegionPartition.grid(_PLATFORM, 2, 2)
_PAIRS = tuple(CorridorBudgets(_PARTITION).pairs())

_APPS = st.sampled_from(["a", "b", "c"])
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("reserve"), _APPS, st.sampled_from(_PAIRS),
                  st.floats(min_value=1.0, max_value=5e9)),
        st.tuples(st.just("release"), _APPS),
    ),
    max_size=24,
)


def _apply(budgets: CorridorBudgets, ops) -> None:
    for op in ops:
        if op[0] == "reserve":
            _, app, pair, bits = op
            try:
                budgets.reserve(app, pair[0], pair[1], bits)
            except PlatformError:
                pass  # over budget: the failed reserve must change nothing
        else:
            budgets.release_application(op[1])


@settings(max_examples=60, deadline=None)
@given(prefix=_OPS, tentative=_OPS)
def test_rollback_restores_fingerprint(prefix, tentative):
    """Any journaled op sequence rolls back to the pre-transaction state."""
    budgets = CorridorBudgets(_PARTITION, fraction=0.5)
    _apply(budgets, prefix)
    before = budgets.fingerprint()
    with budgets.transaction() as txn:
        _apply(budgets, tentative)
        txn.rollback()
    assert budgets.fingerprint() == before


@settings(max_examples=60, deadline=None)
@given(prefix=_OPS, inner=_OPS, outer=_OPS)
def test_nested_commit_folds_then_outer_rollback_restores(prefix, inner, outer):
    """An inner commit folds into the outer journal; outer rollback undoes both."""
    budgets = CorridorBudgets(_PARTITION, fraction=0.5)
    _apply(budgets, prefix)
    before = budgets.fingerprint()
    with budgets.transaction() as txn:
        with budgets.transaction():
            _apply(budgets, inner)
        _apply(budgets, outer)
        txn.rollback()
    assert budgets.fingerprint() == before


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_committed_state_equals_unjournaled_replay(ops):
    """Committing a transaction leaves exactly the state of a plain replay."""
    journaled = CorridorBudgets(_PARTITION, fraction=0.5)
    with journaled.transaction():
        _apply(journaled, ops)
    plain = CorridorBudgets(_PARTITION, fraction=0.5)
    _apply(plain, ops)
    assert journaled.fingerprint() == plain.fingerprint()
