"""Property tests of the snapshot-out / delta-in drain protocol.

The :class:`ProcessRegionExecutor` only stays decision-identical to the
serial executor if two serialization invariants hold *bit-exactly*:

* a :class:`RegionSnapshot` survives a pickle round-trip and rebuilds to a
  state whose region fingerprint equals both the fingerprint embedded in
  the snapshot and the live state's — across arbitrary allocate / release
  histories (releases re-sum aggregates, allocations extend them
  incrementally, and the fingerprint is a float-sum digest, so list order
  and summation order both matter);
* committing allocations on the worker's rebuilt state and folding the
  same records as an :class:`AllocationDelta` into the engine's state
  produce bit-identical region fingerprints — the fold is exactly as good
  as having decided in-process;
* the *stateful* drain protocol's chain invariant: a worker state rebuilt
  from a snapshot and carried forward by replaying the region's journaled
  :class:`RegionDeltaOp` chain (commits *and* releases, in commit order)
  stays fingerprint-bit-identical to the engine state at every watermark —
  and a chain with a gap, a reordering, or a wrong base is rejected before
  it can silently diverge.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PlatformError
from repro.platform.regions import RegionPartition
from repro.platform.state import (
    AllocationDelta,
    LinkAllocation,
    PlatformState,
    ProcessAllocation,
    fingerprint_digest,
)
from tests.harness import build_two_region_platform, two_region_partition

#: One history operation: (kind, tile/link pick, application pick).  Small
#: integer spaces so sequences revisit the same keys and applications often
#: (releases that actually remove something are what stress the re-summed
#: aggregates).
operations = st.lists(
    st.tuples(
        st.sampled_from(["process", "link", "release"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=40,
)


def _platform_and_partition():
    platform = build_two_region_platform()
    return platform, two_region_partition(platform)


def _apply_history(state: PlatformState, partition: RegionPartition, ops) -> None:
    """Drive the state through an arbitrary allocate/release history."""
    tiles = [
        name
        for region in partition
        for name in region.processing_tile_names()
    ]
    links = [name for region in partition for name in region.link_names]
    for index, (kind, a, b) in enumerate(ops):
        application = f"app{b}"
        try:
            if kind == "process":
                state.allocate_process(
                    ProcessAllocation(
                        application,
                        f"p{index}",
                        tiles[a % len(tiles)],
                        memory_bytes=(a + 1) * 512,
                        compute_cycles_per_iteration=float(a) * 7.25,
                    )
                )
            elif kind == "link":
                state.allocate_link(
                    LinkAllocation(
                        application, f"c{index}", links[a % len(links)], (a + 1) * 1e6
                    )
                )
            else:
                state.release_application(application)
        except PlatformError:
            pass  # full tiles/links are part of the history space


class TestSnapshotRoundTrip:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_pickle_round_trip_reproduces_fingerprint_bit_identically(self, ops):
        """snapshot -> pickle -> rebuild == live state, per region, bit-exact."""
        platform, partition = _platform_and_partition()
        state = PlatformState(platform)
        _apply_history(state, partition, ops)
        for region in partition:
            snapshot = region.snapshot(state)
            live = region.fingerprint(state)
            assert snapshot.fingerprint == live
            rebuilt = pickle.loads(pickle.dumps(snapshot)).build_state(platform)
            assert region.fingerprint(rebuilt) == live
            # The rebuilt state is observationally identical over the scope,
            # not just fingerprint-equal.
            for name in region.tile_names:
                assert rebuilt.occupants(name) == state.occupants(name)
            for name in region.link_names:
                assert rebuilt.link_load_bits_per_s(name) == state.link_load_bits_per_s(
                    name
                )

    @given(operations, operations)
    @settings(max_examples=60, deadline=None)
    def test_delta_fold_matches_in_process_commit(self, history, commits):
        """Worker-side commit + engine-side delta fold == in-process commit.

        Build one history, snapshot a region out, run fresh allocations on
        the rebuilt (worker) state, ship them back as an
        :class:`AllocationDelta`, and fold them into the engine state under
        a region transaction: both sides' region fingerprints must be
        bit-identical afterwards.
        """
        platform, partition = _platform_and_partition()
        engine_state = PlatformState(platform)
        _apply_history(engine_state, partition, history)
        region = next(iter(partition))
        worker_state = pickle.loads(
            pickle.dumps(region.snapshot(engine_state))
        ).build_state(platform)

        tiles = list(region.processing_tile_names())
        links = list(region.link_names)
        processes: list[ProcessAllocation] = []
        link_records: list[LinkAllocation] = []
        for index, (kind, a, b) in enumerate(commits):
            try:
                if kind == "link":
                    record = LinkAllocation(
                        f"new{b}", f"nc{index}", links[a % len(links)], (a + 1) * 5e5
                    )
                    worker_state.allocate_link(record)
                    link_records.append(record)
                else:  # treat "release" picks as process allocations too
                    record = ProcessAllocation(
                        f"new{b}",
                        f"np{index}",
                        tiles[a % len(tiles)],
                        memory_bytes=(a + 1) * 256,
                        compute_cycles_per_iteration=float(a) * 3.5,
                    )
                    worker_state.allocate_process(record)
                    processes.append(record)
            except PlatformError:
                pass  # the worker's pipeline would not have produced it

        delta = pickle.loads(
            pickle.dumps(
                AllocationDelta("new", tuple(processes), tuple(link_records))
            )
        )
        with engine_state.transaction(region):
            engine_state.apply_delta(delta)
        assert region.fingerprint(engine_state) == region.fingerprint(worker_state)

    @given(operations)
    @settings(max_examples=30, deadline=None)
    def test_conflicting_delta_rolls_back_cleanly(self, history):
        """A delta the live state rejects must leave no trace (the engine
        re-decides such jobs; a half-applied fold would corrupt the lane)."""
        platform, partition = _platform_and_partition()
        state = PlatformState(platform)
        _apply_history(state, partition, history)
        region = next(iter(partition))
        tile = region.processing_tile_names()[0]
        capacity = platform.tile(tile).resources.max_processes
        used = state.used_process_slots(tile)
        # One record too many: fill the tile, then one more.
        records = tuple(
            ProcessAllocation("overflow", f"op{i}", tile)
            for i in range(capacity - used + 1)
        )
        before = region.fingerprint(state)
        try:
            with state.transaction(region):
                state.apply_delta(AllocationDelta("overflow", records, ()))
        except PlatformError:
            pass
        else:  # pragma: no cover - the overflow record must always raise
            raise AssertionError("overflowing delta unexpectedly applied")
        assert region.fingerprint(state) == before


def _journal_tail(state: PlatformState, partition: RegionPartition, ops) -> None:
    """Drive the state through a history, journaling every effective op.

    The journal-aware twin of :func:`_apply_history`: each successful
    allocation is journaled as a single-record commit op and each
    effective release as a release op, exactly the hook discipline of
    ``AdmissionPipeline.commit`` / ``release``.
    """
    tiles = [
        name for region in partition for name in region.processing_tile_names()
    ]
    links = [name for region in partition for name in region.link_names]
    for index, (kind, a, b) in enumerate(ops):
        application = f"app{b}"
        try:
            if kind == "process":
                record = ProcessAllocation(
                    application,
                    f"t{index}",
                    tiles[a % len(tiles)],
                    memory_bytes=(a + 1) * 512,
                    compute_cycles_per_iteration=float(a) * 7.25,
                )
                state.allocate_process(record)
                state.journal_mapping_commit(application, (record,), ())
            elif kind == "link":
                record = LinkAllocation(
                    application, f"tc{index}", links[a % len(links)], (a + 1) * 1e6
                )
                state.allocate_link(record)
                state.journal_mapping_commit(application, (), (record,))
            else:
                if state.release_application(application):
                    state.journal_release(application, None)
        except PlatformError:
            pass  # full tiles/links are part of the history space


class TestDeltaChainReplay:
    @given(operations, operations)
    @settings(max_examples=60, deadline=None)
    def test_snapshot_then_delta_chain_is_fingerprint_bit_identical(
        self, history, tail
    ):
        """snapshot -> journaled op chain -> replay == live state, bit-exact.

        The stateful worker's steady state: bootstrap from a snapshot at
        some watermark, then carry the resident forward by replaying the
        journal ops (interleaved commits and releases) the engine
        committed since.  Fingerprints must match the engine's at the tip
        — releases re-sum aggregates, so replaying the logical op (not a
        net diff) is load-bearing here.
        """
        platform, partition = _platform_and_partition()
        engine_state = PlatformState(platform)
        _apply_history(engine_state, partition, history)
        regions = list(partition)
        journals = [engine_state.region_journal(region) for region in regions]
        workers = [
            pickle.loads(pickle.dumps(region.snapshot(engine_state))).build_state(
                platform
            )
            for region in regions
        ]
        watermarks = [
            (journal.tip_seq, journal.tip_fingerprint) for journal in journals
        ]
        _journal_tail(engine_state, partition, tail)
        for region, journal, worker_state, mark in zip(
            regions, journals, workers, watermarks
        ):
            ops = journal.ops_since(*mark)
            assert ops is not None, "un-evicted watermark must bridge to the tip"
            ops = pickle.loads(pickle.dumps(ops))  # ops cross the pipe
            worker_state.replay_region_ops(
                ops,
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=mark[0] + 1,
            )
            live = region.fingerprint(engine_state)
            assert region.fingerprint(worker_state) == live
            assert journal.tip_fingerprint == fingerprint_digest(live)

    @given(
        operations,
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(["drop_middle", "swap_adjacent", "drop_first"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_broken_chain_is_rejected_not_half_applied(self, tail, pick, corruption):
        """A gap, reordering, or missing head makes replay raise, and the
        divergence check stops a corrupted replay at the eviscerated op —
        the worker then demands a snapshot resync instead of deciding on
        silently wrong state."""
        platform, partition = _platform_and_partition()
        engine_state = PlatformState(platform)
        region = next(iter(partition))
        journal = engine_state.region_journal(region)
        worker_state = pickle.loads(
            pickle.dumps(region.snapshot(engine_state))
        ).build_state(platform)
        mark = (journal.tip_seq, journal.tip_fingerprint)
        _journal_tail(engine_state, partition, tail)
        ops = journal.ops_since(*mark)
        assert ops is not None
        if len(ops) < 3:
            return  # not enough chain to corrupt
        index = 1 + pick % (len(ops) - 2)
        if corruption == "drop_middle":
            corrupted = ops[:index] + ops[index + 1 :]
        elif corruption == "swap_adjacent":
            corrupted = (
                ops[:index] + (ops[index + 1], ops[index]) + ops[index + 2 :]
            )
        else:  # drop_first
            corrupted = ops[1:]
        try:
            worker_state.replay_region_ops(
                corrupted,
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=mark[0] + 1,
            )
        except PlatformError:
            pass
        else:  # pragma: no cover - a broken chain must always raise
            raise AssertionError(f"{corruption} chain unexpectedly replayed")

    @given(operations, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_evicted_watermark_is_unbridgeable_never_wrong(self, tail, capacity):
        """A watermark that fell off the bounded journal window yields
        ``ops_since == None`` (snapshot fallback), never a wrong chain."""
        platform, partition = _platform_and_partition()
        engine_state = PlatformState(platform)
        region = next(iter(partition))
        journal = engine_state.region_journal(region, capacity=capacity)
        mark = (journal.tip_seq, journal.tip_fingerprint)
        _journal_tail(engine_state, partition, tail)
        appended = journal.tip_seq - mark[0]
        ops = journal.ops_since(*mark)
        if appended > capacity:
            assert ops is None
            assert journal.evictions == appended - capacity
        elif ops is not None:
            # Bridgeable watermark: the chain must replay to the live tip.
            worker_state = PlatformState(platform)
            # Rebuild the watermark-era state: empty history means the
            # watermark state was the empty platform.
            worker_state.replay_region_ops(
                ops,
                tuple(region.tile_names),
                tuple(region.link_names),
                expected_seq=mark[0] + 1,
            )
            assert region.fingerprint(worker_state) == region.fingerprint(
                engine_state
            )
