"""Property tests of the snapshot-out / delta-in drain protocol.

The :class:`ProcessRegionExecutor` only stays decision-identical to the
serial executor if two serialization invariants hold *bit-exactly*:

* a :class:`RegionSnapshot` survives a pickle round-trip and rebuilds to a
  state whose region fingerprint equals both the fingerprint embedded in
  the snapshot and the live state's — across arbitrary allocate / release
  histories (releases re-sum aggregates, allocations extend them
  incrementally, and the fingerprint is a float-sum digest, so list order
  and summation order both matter);
* committing allocations on the worker's rebuilt state and folding the
  same records as an :class:`AllocationDelta` into the engine's state
  produce bit-identical region fingerprints — the fold is exactly as good
  as having decided in-process.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PlatformError
from repro.platform.regions import RegionPartition
from repro.platform.state import (
    AllocationDelta,
    LinkAllocation,
    PlatformState,
    ProcessAllocation,
)
from tests.harness import build_two_region_platform, two_region_partition

#: One history operation: (kind, tile/link pick, application pick).  Small
#: integer spaces so sequences revisit the same keys and applications often
#: (releases that actually remove something are what stress the re-summed
#: aggregates).
operations = st.lists(
    st.tuples(
        st.sampled_from(["process", "link", "release"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=40,
)


def _platform_and_partition():
    platform = build_two_region_platform()
    return platform, two_region_partition(platform)


def _apply_history(state: PlatformState, partition: RegionPartition, ops) -> None:
    """Drive the state through an arbitrary allocate/release history."""
    tiles = [
        name
        for region in partition
        for name in region.processing_tile_names()
    ]
    links = [name for region in partition for name in region.link_names]
    for index, (kind, a, b) in enumerate(ops):
        application = f"app{b}"
        try:
            if kind == "process":
                state.allocate_process(
                    ProcessAllocation(
                        application,
                        f"p{index}",
                        tiles[a % len(tiles)],
                        memory_bytes=(a + 1) * 512,
                        compute_cycles_per_iteration=float(a) * 7.25,
                    )
                )
            elif kind == "link":
                state.allocate_link(
                    LinkAllocation(
                        application, f"c{index}", links[a % len(links)], (a + 1) * 1e6
                    )
                )
            else:
                state.release_application(application)
        except PlatformError:
            pass  # full tiles/links are part of the history space


class TestSnapshotRoundTrip:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_pickle_round_trip_reproduces_fingerprint_bit_identically(self, ops):
        """snapshot -> pickle -> rebuild == live state, per region, bit-exact."""
        platform, partition = _platform_and_partition()
        state = PlatformState(platform)
        _apply_history(state, partition, ops)
        for region in partition:
            snapshot = region.snapshot(state)
            live = region.fingerprint(state)
            assert snapshot.fingerprint == live
            rebuilt = pickle.loads(pickle.dumps(snapshot)).build_state(platform)
            assert region.fingerprint(rebuilt) == live
            # The rebuilt state is observationally identical over the scope,
            # not just fingerprint-equal.
            for name in region.tile_names:
                assert rebuilt.occupants(name) == state.occupants(name)
            for name in region.link_names:
                assert rebuilt.link_load_bits_per_s(name) == state.link_load_bits_per_s(
                    name
                )

    @given(operations, operations)
    @settings(max_examples=60, deadline=None)
    def test_delta_fold_matches_in_process_commit(self, history, commits):
        """Worker-side commit + engine-side delta fold == in-process commit.

        Build one history, snapshot a region out, run fresh allocations on
        the rebuilt (worker) state, ship them back as an
        :class:`AllocationDelta`, and fold them into the engine state under
        a region transaction: both sides' region fingerprints must be
        bit-identical afterwards.
        """
        platform, partition = _platform_and_partition()
        engine_state = PlatformState(platform)
        _apply_history(engine_state, partition, history)
        region = next(iter(partition))
        worker_state = pickle.loads(
            pickle.dumps(region.snapshot(engine_state))
        ).build_state(platform)

        tiles = list(region.processing_tile_names())
        links = list(region.link_names)
        processes: list[ProcessAllocation] = []
        link_records: list[LinkAllocation] = []
        for index, (kind, a, b) in enumerate(commits):
            try:
                if kind == "link":
                    record = LinkAllocation(
                        f"new{b}", f"nc{index}", links[a % len(links)], (a + 1) * 5e5
                    )
                    worker_state.allocate_link(record)
                    link_records.append(record)
                else:  # treat "release" picks as process allocations too
                    record = ProcessAllocation(
                        f"new{b}",
                        f"np{index}",
                        tiles[a % len(tiles)],
                        memory_bytes=(a + 1) * 256,
                        compute_cycles_per_iteration=float(a) * 3.5,
                    )
                    worker_state.allocate_process(record)
                    processes.append(record)
            except PlatformError:
                pass  # the worker's pipeline would not have produced it

        delta = pickle.loads(
            pickle.dumps(
                AllocationDelta("new", tuple(processes), tuple(link_records))
            )
        )
        with engine_state.transaction(region):
            engine_state.apply_delta(delta)
        assert region.fingerprint(engine_state) == region.fingerprint(worker_state)

    @given(operations)
    @settings(max_examples=30, deadline=None)
    def test_conflicting_delta_rolls_back_cleanly(self, history):
        """A delta the live state rejects must leave no trace (the engine
        re-decides such jobs; a half-applied fold would corrupt the lane)."""
        platform, partition = _platform_and_partition()
        state = PlatformState(platform)
        _apply_history(state, partition, history)
        region = next(iter(partition))
        tile = region.processing_tile_names()[0]
        capacity = platform.tile(tile).resources.max_processes
        used = state.used_process_slots(tile)
        # One record too many: fill the tile, then one more.
        records = tuple(
            ProcessAllocation("overflow", f"op{i}", tile)
            for i in range(capacity - used + 1)
        )
        before = region.fingerprint(state)
        try:
            with state.transaction(region):
                state.apply_delta(AllocationDelta("overflow", records, ()))
        except PlatformError:
            pass
        else:  # pragma: no cover - the overflow record must always raise
            raise AssertionError("overflowing delta unexpectedly applied")
        assert region.fingerprint(state) == before
