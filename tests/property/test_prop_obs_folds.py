"""Property tests of the runtime's telemetry fold discipline.

Every merge path that crosses a process or lane boundary must be a true
commutative-monoid fold: worker snapshots arrive in whatever order the
poll loop sees responses, lanes settle in workload order, and retries
re-fold the same shapes — none of which may change the totals.  Pinned
here:

* :meth:`EngineTelemetry.merge_lock_stats` and
  :meth:`EngineTelemetry.merge_worker_stats` are associative and
  order-independent;
* :meth:`MetricsRegistry.fold` is associative and order-independent for
  counters, gauges and histograms alike;
* :meth:`LaneCounters.settled` always equals the sum of its terminal
  fields (parked requests are retries-in-waiting, not settlements).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, fold_snapshots
from repro.runtime.engine import EngineTelemetry, LaneCounters

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
_region_names = st.sampled_from(["r0_0", "r0_1", "r1_0", "__global__"])
_worker_names = st.sampled_from(["region-drain-0", "region-drain-1", "region-drain-2"])
_small_floats = st.floats(min_value=0.0, max_value=1e3, allow_nan=False, width=32)

_lock_stats = st.dictionaries(
    _region_names,
    st.fixed_dictionaries(
        {
            "wait_s": _small_floats,
            "hold_s": _small_floats,
            "acquisitions": st.integers(min_value=0, max_value=100).map(float),
        }
    ),
    max_size=4,
)

_worker_stats = st.dictionaries(
    _worker_names,
    st.dictionaries(
        st.sampled_from(["dispatches", "requests", "snapshot_bytes", "busy_s"]),
        _small_floats,
        max_size=4,
    ),
    max_size=3,
)

_metric_snapshots = st.builds(
    lambda counters, gauges: {"counters": counters, "gauges": gauges, "histograms": {}},
    st.dictionaries(st.sampled_from(["a", "b", "c[x=1]"]), _small_floats, max_size=3),
    st.dictionaries(st.sampled_from(["g", "h[y=2]"]), _small_floats, max_size=2),
)


def _lock_totals(telemetry: EngineTelemetry):
    return (
        {k: round(v, 6) for k, v in telemetry.lock_wait_s.items()},
        {k: round(v, 6) for k, v in telemetry.lock_hold_s.items()},
        dict(telemetry.lock_acquisitions),
    )


# ---------------------------------------------------------------------------
# merge_lock_stats / merge_worker_stats
# ---------------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(st.lists(_lock_stats, max_size=6), st.randoms())
def test_merge_lock_stats_order_independent(snapshots, rng):
    forward = EngineTelemetry()
    for snapshot in snapshots:
        forward.merge_lock_stats(snapshot)
    shuffled_order = list(snapshots)
    rng.shuffle(shuffled_order)
    shuffled = EngineTelemetry()
    for snapshot in shuffled_order:
        shuffled.merge_lock_stats(snapshot)
    assert _lock_totals(forward) == _lock_totals(shuffled)


@settings(max_examples=150, deadline=None)
@given(st.lists(_lock_stats, min_size=2, max_size=6))
def test_merge_lock_stats_associative(snapshots):
    # fold((a+b)+c...) == fold(a+(b+c...)): pre-merging any prefix into a
    # telemetry and then folding its totals onward equals one flat fold.
    flat = EngineTelemetry()
    for snapshot in snapshots:
        flat.merge_lock_stats(snapshot)
    prefix = EngineTelemetry()
    for snapshot in snapshots[:2]:
        prefix.merge_lock_stats(snapshot)
    grouped = EngineTelemetry()
    grouped.merge_lock_stats(
        {
            region: {
                "wait_s": prefix.lock_wait_s[region],
                "hold_s": prefix.lock_hold_s[region],
                "acquisitions": prefix.lock_acquisitions[region],
            }
            for region in prefix.lock_wait_s
        }
    )
    for snapshot in snapshots[2:]:
        grouped.merge_lock_stats(snapshot)
    assert _lock_totals(flat) == _lock_totals(grouped)


@settings(max_examples=150, deadline=None)
@given(st.lists(_worker_stats, max_size=6), st.randoms())
def test_merge_worker_stats_order_independent(snapshots, rng):
    forward = EngineTelemetry()
    for snapshot in snapshots:
        forward.merge_worker_stats(snapshot)
    shuffled_order = list(snapshots)
    rng.shuffle(shuffled_order)
    shuffled = EngineTelemetry()
    for snapshot in shuffled_order:
        shuffled.merge_worker_stats(snapshot)
    rounded = lambda workers: {  # noqa: E731
        worker: {key: round(value, 6) for key, value in stats.items()}
        for worker, stats in workers.items()
    }
    assert rounded(forward.workers) == rounded(shuffled.workers)


@settings(max_examples=150, deadline=None)
@given(st.lists(_worker_stats, min_size=2, max_size=6))
def test_merge_worker_stats_associative(snapshots):
    flat = EngineTelemetry()
    for snapshot in snapshots:
        flat.merge_worker_stats(snapshot)
    prefix = EngineTelemetry()
    for snapshot in snapshots[:2]:
        prefix.merge_worker_stats(snapshot)
    grouped = EngineTelemetry()
    grouped.merge_worker_stats(prefix.workers)
    for snapshot in snapshots[2:]:
        grouped.merge_worker_stats(snapshot)
    rounded = lambda workers: {  # noqa: E731
        worker: {key: round(value, 6) for key, value in stats.items()}
        for worker, stats in workers.items()
    }
    assert rounded(flat.workers) == rounded(grouped.workers)


# ---------------------------------------------------------------------------
# MetricsRegistry.fold
# ---------------------------------------------------------------------------
def _canonical(snapshot):
    return (
        {k: round(v, 6) for k, v in snapshot["counters"].items()},
        {k: round(v, 6) for k, v in snapshot["gauges"].items()},
        {
            name: (tuple(data["bounds"]), tuple(data["buckets"]), round(data["sum"], 6),
                   data["count"])
            for name, data in snapshot["histograms"].items()
        },
    )


@settings(max_examples=150, deadline=None)
@given(st.lists(_metric_snapshots, max_size=6), st.randoms())
def test_registry_fold_order_independent(snapshots, rng):
    forward = fold_snapshots(snapshots)
    shuffled_order = list(snapshots)
    rng.shuffle(shuffled_order)
    shuffled = fold_snapshots(shuffled_order)
    assert _canonical(forward) == _canonical(shuffled)


@settings(max_examples=150, deadline=None)
@given(st.lists(_metric_snapshots, min_size=2, max_size=6))
def test_registry_fold_associative(snapshots):
    flat = fold_snapshots(snapshots)
    grouped = fold_snapshots([fold_snapshots(snapshots[:2])] + snapshots[2:])
    assert _canonical(flat) == _canonical(grouped)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False), max_size=30),
    st.integers(min_value=1, max_value=5),
    st.randoms(),
)
def test_histogram_fold_matches_single_registry(values, parts, rng):
    # Splitting observations across N registries and folding them equals
    # observing everything in one registry, in any fold order.
    registries = [MetricsRegistry() for _ in range(parts)]
    single = MetricsRegistry()
    for value in values:
        rng.choice(registries).observe("lat", value)
        single.observe("lat", value)
    snapshots = [registry.snapshot() for registry in registries]
    rng.shuffle(snapshots)
    assert _canonical(fold_snapshots(snapshots)) == _canonical(single.snapshot())


# ---------------------------------------------------------------------------
# LaneCounters.settled()
# ---------------------------------------------------------------------------
_counter_ints = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=200, deadline=None)
@given(
    admitted=_counter_ints,
    rejected=_counter_ints,
    expired=_counter_ints,
    cancelled=_counter_ints,
    parked=_counter_ints,
    shed=_counter_ints,
)
def test_lane_counters_settled_is_field_sum(admitted, rejected, expired, cancelled, parked, shed):
    counters = LaneCounters(
        admitted=admitted,
        rejected=rejected,
        expired=expired,
        cancelled=cancelled,
        parked=parked,
        shed=shed,
    )
    # Every terminal field counts; parked is a retry-in-waiting and must not.
    assert counters.settled() == admitted + rejected + expired + cancelled + shed
    assert counters.settled() == (
        sum(
            getattr(counters, field)
            for field in ("admitted", "rejected", "expired", "cancelled", "shed")
        )
    )
