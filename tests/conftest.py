"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.csdf.builder import CSDFBuilder
from repro.kpn.als import ApplicationLevelSpec
from repro.kpn.channel import Channel
from repro.kpn.graph import KPNGraph
from repro.kpn.process import Process, ProcessKind
from repro.kpn.qos import QoSConstraints
from repro.platform.builder import PlatformBuilder
from repro.workloads import hiperlan2
from tests.harness import case_study, fast_config  # noqa: F401  (shared fixtures)


@pytest.fixture()
def hiperlan_als():
    """A fresh HiperLAN/2 application-level specification."""
    return hiperlan2.build_receiver_als()


@pytest.fixture()
def hiperlan_platform():
    """A fresh Figure-2 MPSoC."""
    return hiperlan2.build_mpsoc()


@pytest.fixture()
def hiperlan_library():
    """A fresh Table-1 implementation library."""
    return hiperlan2.build_implementation_library()


@pytest.fixture()
def small_platform():
    """A 2x2 platform with two GPP tiles, one DSP tile and one I/O tile."""
    return (
        PlatformBuilder("small")
        .mesh(2, 2, link_capacity_bits_per_s=1e9)
        .tile_type("GPP", frequency_mhz=200)
        .tile_type("DSP", frequency_mhz=100)
        .tile_type("IO", frequency_mhz=100, is_processing=False)
        .tile("gpp0", "GPP", (0, 0))
        .tile("gpp1", "GPP", (1, 0))
        .tile("dsp0", "DSP", (0, 1))
        .tile("io0", "IO", (1, 1))
        .build()
    )


@pytest.fixture()
def two_stage_kpn():
    """A source -> a -> b -> sink pipeline KPN."""
    kpn = KPNGraph("two_stage")
    kpn.add_process(Process("src", ProcessKind.SOURCE, pinned_tile="io0"))
    kpn.add_process(Process("a"))
    kpn.add_process(Process("b"))
    kpn.add_process(Process("snk", ProcessKind.SINK, pinned_tile="io0"))
    kpn.add_channel(Channel("c0", "src", "a", tokens_per_iteration=4))
    kpn.add_channel(Channel("c1", "a", "b", tokens_per_iteration=4))
    kpn.add_channel(Channel("c2", "b", "snk", tokens_per_iteration=2))
    return kpn


@pytest.fixture()
def two_stage_als(two_stage_kpn):
    """ALS wrapping the two-stage pipeline with a 10 us period."""
    return ApplicationLevelSpec(kpn=two_stage_kpn, qos=QoSConstraints(period_ns=10_000.0))


@pytest.fixture()
def simple_chain_csdf():
    """A three-actor CSDF chain a -> b -> c with unit rates."""
    return (
        CSDFBuilder("chain")
        .actor("a", [10.0])
        .actor("b", [20.0])
        .actor("c", [5.0])
        .edge("a", "b", production=[1], consumption=[1])
        .edge("b", "c", production=[1], consumption=[1])
        .build()
    )


@pytest.fixture()
def multirate_csdf():
    """A multi-rate CSDF graph: a produces 2, b consumes 1 and produces 3, c consumes 2."""
    return (
        CSDFBuilder("multirate")
        .actor("a", [4.0])
        .actor("b", [2.0])
        .actor("c", [6.0])
        .edge("a", "b", production=[2], consumption=[1])
        .edge("b", "c", production=[3], consumption=[2])
        .build()
    )
